#!/usr/bin/env python3
"""Archive workflow: collect once, analyse many times.

Real measurement pipelines download MRT dumps once and re-analyse the
archive.  This example renders simulated collector data into an on-disk
archive (jsonl.gz, laid out like an MRT mirror), then runs the
policy-atom pipeline through the BGPStream-style reader — exactly the
code path a port to real RouteViews/RIS data would exercise.

Run:  python examples/archive_workflow.py [--archive ./bgp-archive]
"""

import argparse
from pathlib import Path

from repro import (
    BGPStream,
    RecordArchive,
    SimulatedInternet,
    WorldParams,
    compute_policy_atoms,
)
from repro.core.statistics import general_stats
from repro.util.dates import parse_utc

WORLD = WorldParams(
    seed=59,
    as_scale=1 / 300.0,
    prefix_scale=1 / 300.0,
    peer_scale=0.04,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)

SNAPSHOT = "2016-07-15 08:00"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--archive", type=Path, default=Path("bgp-archive"))
    args = parser.parse_args()

    stamp = parse_utc(SNAPSHOT)
    archive = RecordArchive(args.archive)

    print(f"Collecting simulated RIB + update dumps for {SNAPSHOT} ...")
    internet = SimulatedInternet(WORLD, start=SNAPSHOT)
    rib_files = archive.write_dump(internet.rib_records(SNAPSHOT),
                                   dump_timestamp=stamp)
    update_files = archive.write_dump(
        internet.update_records(SNAPSHOT, hours=4.0), dump_timestamp=stamp
    )
    print(f"  wrote {len(rib_files)} RIB dumps and {len(update_files)} "
          f"update dumps under {args.archive}/")

    print("\nRe-reading through the BGPStream-style API ...")
    stream = BGPStream(archive, record_type="rib",
                       from_time=stamp, until_time=stamp)
    result = compute_policy_atoms(stream.records())
    stats = general_stats(result.atoms)
    print(f"  {stats.n_atoms:,} atoms over {stats.n_prefixes:,} prefixes "
          f"from {len(result.atoms.vantage_points)} vantage points")

    update_count = sum(
        1
        for _ in BGPStream(
            archive, record_type="update", from_time=stamp,
            until_time=stamp + 4 * 3600,
        )
    )
    print(f"  {update_count:,} update records available for correlation analysis")
    print("\nSwap the archive for real MRT-derived records and the same "
          "pipeline runs on RouteViews/RIS data.")


if __name__ == "__main__":
    main()
