#!/usr/bin/env python3
"""Replicating Afek et al. on the 2002 dataset (paper §3).

Reconstructs the original setup — the RRC00 collector with its 13
full-feed peers, the 2002-01-15 08:00 UTC snapshot, no prefix
filtering — and reruns the original analyses: general statistics,
update correlation, and the three-horizon stability comparison.

Run:  python examples/replication_2002.py
"""

from repro.analysis import Replication2002
from repro.core.update_correlation import GROUP_AS, GROUP_ATOM
from repro.reporting import render_table


def main() -> None:
    print("Rebuilding the 2002-01-15 08:00 UTC dataset "
          "(RRC00, 13 full-feed peers, scaled 1/100) ...")
    replication = Replication2002(scale=1 / 100.0)
    result = replication.run(with_updates=True)

    stats = result.stats
    print(f"\n  ASes: {stats.n_ases:,}   prefixes: {stats.n_prefixes:,}   "
          f"atoms: {stats.n_atoms:,}")
    print("  (full-scale anchors from the paper: 12.5K / 115K / 26K)")

    print()
    rows = [
        (
            {"8h": "8 Hours", "1d": "1 Day", "1w": "1 Week"}[span],
            f"{orig_cam:.1%}",
            f"{orig_mpm:.1%}",
            f"{cam:.1%}",
            f"{mpm:.1%}",
        )
        for span, orig_cam, orig_mpm, cam, mpm in result.stability_comparison()
    ]
    print(
        render_table(
            ["Time span", "Original CAM", "Original MPM", "Ours CAM", "Ours MPM"],
            rows,
            title="Stability vs Afek et al. (cf. paper Table 6)",
        )
    )

    print("\nUpdate correlation over the 4 hours after the snapshot "
          f"({result.update_record_count} records, cf. paper Figure 15):")
    rows = []
    for size in range(2, 8):
        atom_value = result.updates.pr_full(GROUP_ATOM, size)
        as_value = result.updates.pr_full(GROUP_AS, size)
        rows.append(
            (
                size,
                "-" if atom_value is None else f"{atom_value:.0%}",
                "-" if as_value is None else f"{as_value:.0%}",
            )
        )
    print(render_table(["k prefixes", "atom seen in full", "AS seen in full"], rows))


if __name__ == "__main__":
    main()
