#!/usr/bin/env python3
"""A miniature of the paper's longitudinal study (§4).

Walks one evolving simulated Internet through snapshot dates between
2004 and 2024, computing for each year the general statistics, the
formation-distance distribution, and the short/long-term stability —
the data behind the paper's Figures 4 and 5 — then writes the trend
series to CSV.

Run:  python examples/longitudinal_study.py [--years 2004 2010 2016 2024]
"""

import argparse
from pathlib import Path

from repro import SimulatedInternet, WorldParams
from repro.analysis import LongitudinalStudy
from repro.analysis.longitudinal import (
    formation_trend_series,
    stability_trend_series,
)
from repro.reporting import render_table, write_csv

WORLD = WorldParams(
    seed=11,
    as_scale=1 / 250.0,
    prefix_scale=1 / 250.0,
    peer_scale=0.04,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--years", type=int, nargs="+",
                        default=[2004, 2008, 2012, 2016, 2020, 2024])
    parser.add_argument("--out", type=Path, default=Path("longitudinal_trends.csv"))
    args = parser.parse_args()

    years = sorted(args.years)
    print(f"Simulating {years[0]}-{years[-1]} (scaled 1/250) ...")
    internet = SimulatedInternet(WORLD, start=f"{years[0]}-01-01")
    study = LongitudinalStudy(internet)
    results = study.run_years(years, with_stability=True)

    rows = []
    for result in results:
        stats = result.stats
        cam_8h = result.stability["8h"][0]
        cam_1w = result.stability["1w"][0]
        rows.append(
            (
                result.year,
                f"{stats.n_prefixes:,}",
                f"{stats.n_atoms:,}",
                f"{stats.mean_atom_size:.2f}",
                f"{result.formation_shares[1]:.0%}",
                f"{result.formation_shares[3]:.0%}",
                f"{cam_8h:.1%}",
                f"{cam_1w:.1%}",
            )
        )
    print()
    print(
        render_table(
            ["year", "prefixes", "atoms", "mean size",
             "formed@1", "formed@3", "CAM 8h", "CAM 1w"],
            rows,
            title="Longitudinal atom trends (cf. paper §4)",
        )
    )

    series = formation_trend_series(results) + stability_trend_series(results)
    write_csv(args.out, series)
    print(f"\nTrend series written to {args.out}")


if __name__ == "__main__":
    main()
