#!/usr/bin/env python3
"""Vantage-point reliability from atom-split observations (paper §4.4.1, §7.1).

Processes daily snapshots, detects atom splits, and ranks vantage
points by how many splits only *they* observe — the paper's recipe for
spotting VPs whose own policy changes masquerade as routing events.

Run:  python examples/vantage_point_selection.py [--days 20]
"""

import argparse
from collections import Counter

from repro import SimulatedInternet, WorldParams
from repro.analysis import VantageStudy
from repro.reporting import render_table

WORLD = WorldParams(
    seed=37,
    as_scale=1 / 300.0,
    prefix_scale=1 / 300.0,
    peer_scale=0.05,
    collector_scale=0.3,
    min_fullfeed_peers=10,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=20)
    args = parser.parse_args()

    print(f"Simulating {args.days} daily snapshots from 2018-01-01 ...")
    internet = SimulatedInternet(WORLD, start="2018-01-01 08:00")
    study = VantageStudy(internet)
    result = study.run(internet.current_time, days=args.days)

    events = result.all_events()
    print(f"\n{len(events)} atom-split events detected")
    if not events:
        print("No events in this window; try more days or another seed.")
        return
    print(f"  seen by exactly 1 VP:  {result.share_single_observer():.0%}")
    print(f"  seen by <= 3 VPs:      {result.share_at_most(3):.0%}")

    solo_counter = Counter()
    for event in events:
        if event.observer_count == 1:
            solo_counter[event.observers[0]] += 1
    rows = [
        (f"{collector} AS{asn}", count,
         f"{count / max(1, len(events)):.0%}")
        for (collector, asn, _), count in solo_counter.most_common(8)
    ]
    print()
    print(
        render_table(
            ["vantage point", "solo-observed splits", "share of all events"],
            rows,
            title="VPs most often the *only* observer of a split "
                  "(candidates for exclusion, cf. paper §7.1)",
        )
    )
    print(
        "\nInterpretation: splits visible to one VP usually reflect that VP's"
        "\nown policy environment (e.g. a provider change), not a routing"
        "\nevent near the origin — pick vantage points accordingly."
    )


if __name__ == "__main__":
    main()
