#!/usr/bin/env python3
"""IPv6 policy atoms and the IPv4 comparison (paper §5).

Computes atoms for both address families in the same simulated world,
prints the Table-4-style comparison, and checks the paper's qualitative
IPv6 findings: fewer atoms per AS, growing mean atom size, and update
correlation as strong as IPv4's.

Run:  python examples/ipv6_vs_ipv4.py
"""

from repro import SimulatedInternet, WorldParams
from repro.analysis import IPv6Study
from repro.core.update_correlation import GROUP_AS, GROUP_ATOM
from repro.reporting import render_table

WORLD = WorldParams(
    seed=23,
    as_scale=1 / 250.0,
    prefix_scale=1 / 250.0,
    peer_scale=0.04,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)


def main() -> None:
    print("Simulating 2011 -> 2024 (scaled 1/250) ...")
    internet = SimulatedInternet(WORLD, start="2011-01-01")
    study = IPv6Study(internet)

    comparison = study.comparison(early_year=2011, recent_year=2024, month=10)
    print()
    print(
        render_table(
            ["", "v4 (2024)", "v6 (2024)", "v6 (2011)"],
            comparison.rows(),
            title="IPv4 vs IPv6 atoms (cf. paper Table 4)",
        )
    )

    print("\nIPv6 update correlation (cf. paper Figure 10):")
    suite = study.v6_update_suite(year=2024, month=10)
    correlation = suite.updates
    rows = []
    for size in range(2, 8):
        atom_value = correlation.pr_full(GROUP_ATOM, size)
        as_value = correlation.pr_full(GROUP_AS, size)
        rows.append(
            (
                size,
                "-" if atom_value is None else f"{atom_value:.0%}",
                "-" if as_value is None else f"{as_value:.0%}",
            )
        )
    print(render_table(["k prefixes", "atom seen in full", "AS seen in full"], rows))

    v6 = comparison.v6_recent
    v6_early = comparison.v6_early
    print("\nPaper findings checked:")
    print(f"  single-atom-AS share fell: {v6_early.ases_one_atom_share:.0%} -> "
          f"{v6.ases_one_atom_share:.0%}")
    print(f"  mean atom size grew: {v6_early.mean_atom_size:.2f} -> "
          f"{v6.mean_atom_size:.2f}")


if __name__ == "__main__":
    main()
