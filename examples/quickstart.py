#!/usr/bin/env python3
"""Quickstart: compute policy atoms from one snapshot.

Builds a small simulated Internet frozen at the paper's canonical 2024
snapshot instant, collects the RIB dump every vantage point would send
to RouteViews/RIS, runs the full sanitization pipeline, and prints the
Table-1-style statistics plus a few example atoms.

Run:  python examples/quickstart.py
"""

from repro import SMALL_WORLD, SimulatedInternet, compute_policy_atoms
from repro.core.statistics import general_stats
from repro.reporting import render_table

SNAPSHOT = "2024-10-15 08:00"


def main() -> None:
    print(f"Building a simulated Internet at {SNAPSHOT} ...")
    internet = SimulatedInternet(SMALL_WORLD, start=SNAPSHOT)
    world = internet.world
    print(
        f"  {len(world.graph)} ASes, {world.total_prefixes(4):,} IPv4 prefixes, "
        f"{len(world.layout.peers)} collector peers "
        f"({len(world.layout.fullfeed_peers())} full-feed)"
    )

    print("Collecting RIB records and computing policy atoms ...")
    result = compute_policy_atoms(internet.rib_records(SNAPSHOT))

    report = result.report
    print(
        f"  sanitization: {report.fullfeed_peers} full-feed vantage points, "
        f"{len(report.removed_peers)} abnormal peers removed, "
        f"{report.prefixes_kept:,}/{report.prefixes_total:,} prefixes kept"
    )

    stats = general_stats(result.atoms)
    print()
    print(render_table(["metric", "value"], stats.rows(),
                       title="General statistics (cf. paper Table 1)"))

    print()
    print("A few multi-prefix atoms:")
    shown = 0
    for atom in sorted(result.atoms, key=lambda a: -a.size):
        if atom.size < 2:
            break
        prefixes = ", ".join(str(p) for p in sorted(atom.prefixes)[:4])
        suffix = ", ..." if atom.size > 4 else ""
        print(f"  atom {atom.atom_id}: {atom.size} prefixes from AS{atom.origin} "
              f"[{prefixes}{suffix}]")
        shown += 1
        if shown == 5:
            break


if __name__ == "__main__":
    main()
