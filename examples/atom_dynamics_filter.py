#!/usr/bin/env python3
"""Policy atoms as a lens on BGP dynamics (paper §7.2, plus §7.1/§7.3).

Exercises the three future-work applications the paper sketches:

1. classify an update stream against the atom structure and filter out
   single-prefix churn inside multi-prefix atoms (likely noise);
2. score vantage points by how often they alone observe atom splits
   (unreliable-VP detection);
3. match IPv4 atoms to IPv6 atoms of dual-stack origins by structure
   (sibling-prefix candidates).

Run:  python examples/atom_dynamics_filter.py
"""

from repro import SimulatedInternet, WorldParams, compute_policy_atoms
from repro.analysis import VantageStudy, match_sibling_atoms, score_vantage_points
from repro.core.dynamics import classify_updates, stable_atom_priority
from repro.net.prefix import AF_INET6
from repro.reporting import render_table

WORLD = WorldParams(
    seed=71,
    as_scale=1 / 300.0,
    prefix_scale=1 / 300.0,
    peer_scale=0.05,
    collector_scale=0.3,
    min_fullfeed_peers=10,
)

SNAPSHOT = "2022-04-15 08:00"


def main() -> None:
    internet = SimulatedInternet(WORLD, start=SNAPSHOT)
    atoms = compute_policy_atoms(internet.rib_records(SNAPSHOT)).atoms
    print(f"{len(atoms)} atoms at {SNAPSHOT}")

    # --- §7.2: flap filtering --------------------------------------------
    records = internet.update_records(SNAPSHOT, hours=4.0)
    summary = classify_updates(atoms, records)
    counts = summary.counts()
    print()
    print(render_table(
        ["event class", "records"],
        sorted(counts.items()),
        title="Update records classified against the atom structure",
    ))
    print(f"noise share: {summary.noise_share():.0%} "
          f"-> {len(summary.filtered())} records survive the flap filter")
    prioritized = stable_atom_priority(atoms, summary)
    if prioritized:
        top = prioritized[0]
        print(f"highest-priority event touches atoms "
              f"{sorted(top.atoms_touched)} at t={top.record.timestamp}")

    # --- §7.1: unreliable vantage points ---------------------------------
    print("\nScoring vantage points over 10 daily snapshots ...")
    study = VantageStudy(internet)
    result = study.run(internet.current_time, days=10)
    scored = score_vantage_points(
        result.all_events(), atoms.vantage_points
    )
    rows = [
        (f"{peer[0]} AS{peer[1]}", entry.solo_splits, f"{entry.score:.2f}",
         "suspicious" if entry.suspicious else "")
        for entry in scored[:6]
        for peer in [entry.peer]
    ]
    print(render_table(
        ["vantage point", "solo splits", "reliability", ""],
        rows,
        title="Least reliable vantage points first (§7.1)",
    ))

    # --- §7.3: v4/v6 sibling atoms ----------------------------------------
    v6_records = internet.rib_records(internet.current_time, family=AF_INET6)
    v6_atoms = compute_policy_atoms(v6_records).atoms
    candidates = match_sibling_atoms(atoms, v6_atoms)
    print(f"\n{len(candidates)} v4/v6 sibling-atom candidates "
          f"across dual-stack origins (§7.3); top matches:")
    for candidate in candidates[:5]:
        v4_example = sorted(candidate.v4_atom.prefixes)[0]
        v6_example = sorted(candidate.v6_atom.prefixes)[0]
        print(f"  AS{candidate.origin}: {v4_example} <-> {v6_example} "
              f"(similarity {candidate.similarity:.2f})")


if __name__ == "__main__":
    main()
