"""repro — a replication library for *"A Two Decade Review of Policy
Atoms: Tracing the Evolution of AS Path Sharing Prefixes"* (IMC 2025).

The package has three layers:

* **substrates** — network primitives (:mod:`repro.net`), a BGP data
  model (:mod:`repro.bgp`), a synthetic evolving Internet
  (:mod:`repro.topology`, :mod:`repro.simulation`), and a
  BGPStream-style access layer (:mod:`repro.stream`);
* **core** — the paper\'s contribution: policy-atom computation with the
  full sanitization methodology (:mod:`repro.core`);
* **analyses** — the paper\'s studies assembled from the core
  (:mod:`repro.analysis`) with text/CSV reporting
  (:mod:`repro.reporting`).

Quickstart::

    from repro import SimulatedInternet, compute_policy_atoms
    from repro.topology.evolution import SMALL_WORLD

    internet = SimulatedInternet(SMALL_WORLD, start="2024-10-15 08:00")
    result = compute_policy_atoms(internet.rib_records("2024-10-15 08:00"))
    print(len(result.atoms), "atoms")
"""

from repro.core import (
    AtomComputation,
    AtomSet,
    PolicyAtom,
    SanitizationConfig,
    complete_atom_match,
    compute_atoms,
    compute_policy_atoms,
    formation_distances,
    general_stats,
    maximized_prefix_match,
    sanitize,
    update_correlation,
)
from repro.net import ASPath, Prefix
from repro.simulation import SimulatedInternet
from repro.stream import BGPStream, RecordArchive
from repro.topology.evolution import (
    MEDIUM_WORLD,
    SMALL_WORLD,
    TINY_WORLD,
    WorldParams,
)

__version__ = "1.0.0"

__all__ = [
    "ASPath",
    "AtomComputation",
    "AtomSet",
    "BGPStream",
    "MEDIUM_WORLD",
    "PolicyAtom",
    "Prefix",
    "RecordArchive",
    "SMALL_WORLD",
    "SanitizationConfig",
    "SimulatedInternet",
    "TINY_WORLD",
    "WorldParams",
    "complete_atom_match",
    "compute_atoms",
    "compute_policy_atoms",
    "formation_distances",
    "general_stats",
    "maximized_prefix_match",
    "sanitize",
    "update_correlation",
]
