"""(x, y) series containers for the paper's figures."""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class Series:
    """One named line of a figure."""

    name: str
    points: List[Tuple[float, Optional[float]]] = field(default_factory=list)

    def add(self, x: float, y: Optional[float]) -> None:
        """Append one (x, y) point."""
        self.points.append((x, y))

    def xs(self) -> List[float]:
        """The x coordinates."""
        return [x for x, _ in self.points]

    def ys(self) -> List[Optional[float]]:
        """The y coordinates (None for gaps)."""
        return [y for _, y in self.points]

    def last(self) -> Optional[float]:
        """The final y value, or None when empty."""
        return self.points[-1][1] if self.points else None

    def render(self, x_label: str = "x", y_format: str = "{:.1f}") -> str:
        """One-line-per-point text rendering for bench output."""
        lines = [f"series: {self.name}"]
        for x, y in self.points:
            shown = "-" if y is None else y_format.format(y)
            lines.append(f"  {x_label}={x:g}: {shown}")
        return "\n".join(lines)


def write_csv(path: os.PathLike, series_list: Sequence[Series]) -> None:
    """Write aligned series to CSV: first column x, one column per series.

    Series may have different x grids; the union is used and gaps are
    left empty.
    """
    grid = sorted({x for series in series_list for x, _ in series.points})
    lookup = [
        {x: y for x, y in series.points}
        for series in series_list
    ]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x"] + [series.name for series in series_list])
        for x in grid:
            row: List[object] = [x]
            for table in lookup:
                value = table.get(x)
                row.append("" if value is None else value)
            writer.writerow(row)
