"""ASCII figure rendering for series.

The bench harness and examples are terminal-first; this renders one or
more :class:`~repro.reporting.series.Series` as a compact ASCII line
chart — enough to eyeball a trend without a plotting stack.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.reporting.series import Series

#: Markers assigned to series in order.
MARKERS = "ox+*#@%&"


def render_chart(
    series_list: Sequence[Series],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render series as an ASCII chart with a shared x/y scale.

    Points are plotted with per-series markers; collisions show the
    later series' marker.  None values are skipped.
    """
    points = [
        (series_index, x, y)
        for series_index, series in enumerate(series_list)
        for x, y in series.points
        if y is not None
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)

    xs = [x for _, x, _ in points]
    ys = [y for _, _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low = min(ys) if y_min is None else y_min
    y_high = max(ys) if y_max is None else y_max
    if x_high == x_low:
        x_high = x_low + 1
    if y_high == y_low:
        y_high = y_low + 1

    grid = [[" "] * width for _ in range(height)]
    for series_index, x, y in points:
        column = int((x - x_low) / (x_high - x_low) * (width - 1))
        row = int((y - y_low) / (y_high - y_low) * (height - 1))
        row = height - 1 - max(0, min(height - 1, row))
        column = max(0, min(width - 1, column))
        grid[row][column] = MARKERS[series_index % len(MARKERS)]

    y_label_width = max(len(f"{y_high:g}"), len(f"{y_low:g}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:g}".rjust(y_label_width)
        elif row_index == height - 1:
            label = f"{y_low:g}".rjust(y_label_width)
        else:
            label = " " * y_label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * y_label_width + " +" + "-" * width)
    x_axis = f"{x_low:g}".ljust(width - len(f"{x_high:g}")) + f"{x_high:g}"
    lines.append(" " * (y_label_width + 2) + x_axis)

    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {series.name}"
        for i, series in enumerate(series_list)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def render_histogram(
    counts: dict,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Render {bucket: count} as a horizontal-bar histogram."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not counts:
        lines.append("(no data)")
        return "\n".join(lines)
    biggest = max(counts.values())
    label_width = max(len(str(bucket)) for bucket in counts)
    for bucket in sorted(counts):
        value = counts[bucket]
        bar = "#" * max(1 if value else 0, int(value / biggest * width))
        lines.append(f"{str(bucket).rjust(label_width)} | {bar} {value}")
    return "\n".join(lines)
