"""Aligned text tables (the repo's stand-in for the paper's tables)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table.

    The first column is left-aligned (labels), the rest right-aligned
    (numbers), matching how the paper's tables read.
    """
    text_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            width = widths[index] if index < len(widths) else len(cell)
            parts.append(cell.ljust(width) if index == 0 else cell.rjust(width))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(list(headers)))
    lines.append(format_row(["-" * width for width in widths]))
    lines.extend(format_row(row) for row in text_rows)
    return "\n".join(lines)
