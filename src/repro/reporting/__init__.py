"""Rendering helpers: text tables and figure series.

The benchmark harness regenerates every table and figure of the paper;
these helpers keep the output format consistent (aligned text tables,
CSV-exportable series) without pulling in plotting dependencies.
"""

from repro.reporting.figures import render_chart, render_histogram
from repro.reporting.series import Series, write_csv
from repro.reporting.tables import render_table

__all__ = ["Series", "render_chart", "render_histogram", "render_table", "write_csv"]
