"""BGP substrate: path attributes, route records, and RIB tables.

This package models the data plane of a BGP collection infrastructure the
way MRT dumps and BGPStream expose it: *elements* (one prefix observation
from one peer) grouped into *records* (one on-the-wire message or one RIB
dump chunk).
"""

from repro.bgp.attributes import Community, PathAttributes
from repro.bgp.decision import CandidateRoute, best_route, rank_routes
from repro.bgp.errors import BGPError, CorruptRecordError
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import AdjRIBIn, RIBSnapshot

__all__ = [
    "AdjRIBIn",
    "BGPError",
    "CandidateRoute",
    "Community",
    "CorruptRecordError",
    "ElementType",
    "PathAttributes",
    "RIBSnapshot",
    "RouteElement",
    "RouteRecord",
    "best_route",
    "rank_routes",
]
