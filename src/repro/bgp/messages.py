"""Route records and elements — the unit of BGP data exchange.

Mirrors the BGPStream data model:

* a :class:`RouteRecord` corresponds to one MRT record — either a chunk
  of a RIB dump or a single BGP UPDATE message from one peer;
* a :class:`RouteElement` is one per-prefix observation inside a record.

The update-correlation analysis (paper §3.3) operates on records: the
prefix set of an UPDATE record is exactly the NLRI that one peer packed
into one message, which is why prefixes sharing a policy tend to appear
in the same record.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.bgp.attributes import PathAttributes
from repro.net.prefix import Prefix


class ElementType(str, Enum):
    """The kind of one route element."""

    RIB = "R"
    ANNOUNCEMENT = "A"
    WITHDRAWAL = "W"


class RouteElement:
    """One prefix observation from one peer.

    Withdrawals carry ``attributes=None``; RIB entries and announcements
    always carry a full attribute bundle.
    """

    __slots__ = ("element_type", "prefix", "attributes")

    def __init__(
        self,
        element_type: ElementType,
        prefix: Prefix,
        attributes: Optional[PathAttributes] = None,
    ):
        if not isinstance(element_type, ElementType):
            element_type = ElementType(element_type)
        if element_type is not ElementType.WITHDRAWAL and attributes is None:
            raise ValueError(f"{element_type.value} element requires attributes")
        object.__setattr__(self, "element_type", element_type)
        object.__setattr__(self, "prefix", prefix)
        object.__setattr__(self, "attributes", attributes)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RouteElement is immutable")

    def __reduce__(
        self,
    ) -> Tuple[type, Tuple[ElementType, Prefix, Optional[PathAttributes]]]:
        return (RouteElement, (self.element_type, self.prefix, self.attributes))

    @property
    def is_withdrawal(self) -> bool:
        return self.element_type == ElementType.WITHDRAWAL

    @property
    def as_path(self):
        return self.attributes.as_path if self.attributes else None

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RouteElement)
            and self.element_type == other.element_type
            and self.prefix == other.prefix
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.element_type, self.prefix, self.attributes))

    def __repr__(self) -> str:
        return (
            f"RouteElement({self.element_type.value}, {self.prefix}, "
            f"{self.attributes!r})"
        )


class RouteRecord:
    """One MRT-style record: a batch of elements from one peer at one time.

    Attributes
    ----------
    record_type:
        ``"rib"`` or ``"update"`` — matching BGPStream's record types.
    project / collector:
        e.g. ``"ris"`` / ``"rrc00"`` or ``"routeviews"`` / ``"route-views2"``.
    peer_asn / peer_address:
        The BGP peer that sent the data to the collector.
    timestamp:
        Seconds since the epoch (UTC) of the record.
    elements:
        The per-prefix observations packed into this record.
    corrupt_warning:
        Non-empty when the collector failed to fully parse the source MRT
        data (ADD-PATH incompatibilities etc.); the sanitizer keys off it.
    """

    __slots__ = (
        "record_type",
        "project",
        "collector",
        "peer_asn",
        "peer_address",
        "timestamp",
        "elements",
        "corrupt_warning",
    )

    def __init__(
        self,
        record_type: str,
        project: str,
        collector: str,
        peer_asn: int,
        peer_address: str,
        timestamp: int,
        elements: Iterable[RouteElement],
        corrupt_warning: str = "",
    ):
        if record_type not in ("rib", "update"):
            raise ValueError(f"unknown record type {record_type!r}")
        object.__setattr__(self, "record_type", record_type)
        object.__setattr__(self, "project", project)
        object.__setattr__(self, "collector", collector)
        object.__setattr__(self, "peer_asn", peer_asn)
        object.__setattr__(self, "peer_address", peer_address)
        object.__setattr__(self, "timestamp", int(timestamp))
        object.__setattr__(self, "elements", tuple(elements))
        object.__setattr__(self, "corrupt_warning", corrupt_warning)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RouteRecord is immutable")

    def __reduce__(self) -> Tuple[type, Tuple]:
        return (
            RouteRecord,
            (
                self.record_type,
                self.project,
                self.collector,
                self.peer_asn,
                self.peer_address,
                self.timestamp,
                self.elements,
                self.corrupt_warning,
            ),
        )

    @property
    def peer_id(self) -> Tuple[str, int, str]:
        """Identity of the feed: (collector, peer ASN, peer address)."""
        return (self.collector, self.peer_asn, self.peer_address)

    @property
    def is_corrupt(self) -> bool:
        return bool(self.corrupt_warning)

    def prefixes(self) -> Set[Prefix]:
        """The set of prefixes inside this record (``Prefix(r)`` in §3.3)."""
        return {element.prefix for element in self.elements}

    def announced_prefixes(self) -> Set[Prefix]:
        """Prefixes announced (non-withdrawal) in this record."""
        return {
            element.prefix
            for element in self.elements
            if element.element_type != ElementType.WITHDRAWAL
        }

    def __iter__(self) -> Iterator[RouteElement]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:
        return (
            f"RouteRecord({self.record_type}, {self.collector}, "
            f"peer=AS{self.peer_asn}, t={self.timestamp}, "
            f"{len(self.elements)} elements)"
        )


def merge_records_by_peer(
    records: Iterable[RouteRecord],
) -> List[RouteRecord]:
    """Merge consecutive same-peer, same-timestamp update records.

    Some collectors split one logical UPDATE into several MRT records;
    analyses that care about "prefixes updated together" want them joined
    back.  Records are merged only when peer identity, type and timestamp
    all match.
    """
    merged: List[RouteRecord] = []
    for record in records:
        if (
            merged
            and merged[-1].record_type == record.record_type
            and merged[-1].peer_id == record.peer_id
            and merged[-1].timestamp == record.timestamp
        ):
            previous = merged.pop()
            merged.append(
                RouteRecord(
                    record.record_type,
                    record.project,
                    record.collector,
                    record.peer_asn,
                    record.peer_address,
                    record.timestamp,
                    previous.elements + record.elements,
                    previous.corrupt_warning or record.corrupt_warning,
                )
            )
        else:
            merged.append(record)
    return merged
