"""Exception hierarchy for the BGP substrate."""


class BGPError(Exception):
    """Base class for all BGP-substrate errors."""


class CorruptRecordError(BGPError):
    """A record could not be interpreted.

    Mirrors BGPStream warnings such as "unknown BGP4MP record subtype 9",
    "Duplicate Path Attribute", and "Invalid MP(UN)REACH NLRI" that the
    paper uses to fingerprint ADD-PATH-incompatible peers (A8.3.1).
    The ``warning`` attribute carries the fingerprint string.
    """

    def __init__(self, message: str, warning: str = ""):
        super().__init__(message)
        self.warning = warning or message
