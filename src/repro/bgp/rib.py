"""Routing Information Base structures.

:class:`AdjRIBIn` is the per-peer table a collector maintains from one BGP
session.  :class:`RIBSnapshot` is the instantaneous cross-peer view the
policy-atom computation consumes: for each (peer, prefix), the selected
path attributes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteRecord
from repro.net.prefix import Prefix

PeerId = Tuple[str, int, str]  # (collector, peer ASN, peer address)

#: Mutation-listener signature: called with the touched (peer, prefix).
MutationListener = Callable[[PeerId, Prefix], None]


class AdjRIBIn:
    """The routes one peer currently advertises to a collector."""

    __slots__ = ("peer_id", "_routes")

    def __init__(self, peer_id: PeerId):
        self.peer_id = peer_id
        self._routes: Dict[Prefix, PathAttributes] = {}

    def announce(self, prefix: Prefix, attributes: PathAttributes) -> None:
        """Install or replace the route for ``prefix``."""
        self._routes[prefix] = attributes

    def withdraw(self, prefix: Prefix) -> None:
        """Remove the route for ``prefix`` (no-op when absent)."""
        self._routes.pop(prefix, None)

    def get(self, prefix: Prefix) -> Optional[PathAttributes]:
        """Attributes for ``prefix``, or None."""
        return self._routes.get(prefix)

    def prefixes(self) -> Set[Prefix]:
        """The prefixes this peer currently advertises."""
        return set(self._routes)

    def items(self) -> Iterator[Tuple[Prefix, PathAttributes]]:
        """Iterate (prefix, attributes) pairs."""
        return iter(self._routes.items())

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def copy(self) -> "AdjRIBIn":
        """An independent copy of this table."""
        clone = AdjRIBIn(self.peer_id)
        clone._routes = dict(self._routes)
        return clone


class RIBSnapshot:
    """Cross-peer routing state at one instant.

    This is the input to atom computation: ``snapshot.path(peer, prefix)``
    answers "what AS path did this vantage point have for this prefix".
    """

    def __init__(self, timestamp: int = 0):
        self.timestamp = timestamp
        self._tables: Dict[PeerId, AdjRIBIn] = {}
        #: mutation listeners; the incremental atom index registers one
        #: to collect its dirty prefix set (see repro.core.incremental)
        self._listeners: List[MutationListener] = []

    # ------------------------------------------------------------------
    # Mutation hooks
    # ------------------------------------------------------------------

    def add_mutation_listener(self, listener: MutationListener) -> None:
        """Register ``listener(peer_id, prefix)`` for every announce or
        withdraw routed through this snapshot.

        Listeners fire only for mutations applied through this object
        (``apply_record``/``announce``/``withdraw``) — direct writes to
        an :class:`AdjRIBIn` obtained via :meth:`table`, or through a
        table-sharing view from :meth:`restrict_peers`, bypass them.
        """
        self._listeners.append(listener)

    def remove_mutation_listener(self, listener: MutationListener) -> None:
        """Unregister a listener (no-op when absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _table_for(self, peer_id: PeerId) -> AdjRIBIn:
        table = self._tables.get(peer_id)
        if table is None:
            table = AdjRIBIn(peer_id)
            self._tables[peer_id] = table
        return table

    def announce(self, peer_id: PeerId, prefix: Prefix,
                 attributes: PathAttributes) -> None:
        """Install one route and notify mutation listeners."""
        self._table_for(peer_id).announce(prefix, attributes)
        for listener in self._listeners:
            listener(peer_id, prefix)

    def withdraw(self, peer_id: PeerId, prefix: Prefix) -> None:
        """Remove one route (no-op when absent) and notify listeners."""
        table = self._tables.get(peer_id)
        if table is not None:
            table.withdraw(prefix)
        for listener in self._listeners:
            listener(peer_id, prefix)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[RouteRecord]) -> "RIBSnapshot":
        """Build a snapshot from RIB-dump records (corrupt ones included;
        filtering is the sanitizer's job, not the RIB's)."""
        snapshot = cls()
        for record in records:
            snapshot.apply_record(record)
        return snapshot

    def apply_record(self, record: RouteRecord) -> None:
        """Fold one record (RIB chunk or update) into the snapshot."""
        table = self._table_for(record.peer_id)
        listeners = self._listeners
        for element in record.elements:
            if element.element_type == ElementType.WITHDRAWAL:
                table.withdraw(element.prefix)
            else:
                table.announce(element.prefix, element.attributes)
            for listener in listeners:
                listener(record.peer_id, element.prefix)
        if record.timestamp > self.timestamp:
            self.timestamp = record.timestamp

    def copy(self) -> "RIBSnapshot":
        """A deep copy (tables cloned; listeners do not carry over)."""
        clone = RIBSnapshot(self.timestamp)
        clone._tables = {pid: t.copy() for pid, t in self._tables.items()}
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def peers(self) -> List[PeerId]:
        """All peer identities in the snapshot."""
        return list(self._tables)

    def collectors(self) -> Set[str]:
        """All collector names in the snapshot."""
        return {collector for collector, _, _ in self._tables}

    def table(self, peer_id: PeerId) -> Optional[AdjRIBIn]:
        """The per-peer table, or None for an unknown peer."""
        return self._tables.get(peer_id)

    def path(self, peer_id: PeerId, prefix: Prefix):
        """AS path for ``prefix`` at ``peer_id``, or None when unseen."""
        table = self._tables.get(peer_id)
        if table is None:
            return None
        attributes = table.get(prefix)
        return attributes.as_path if attributes else None

    def attributes(self, peer_id: PeerId, prefix: Prefix) -> Optional[PathAttributes]:
        """Attributes for (peer, prefix), or None when unseen."""
        table = self._tables.get(peer_id)
        return table.get(prefix) if table else None

    def prefix_count_by_peer(self) -> Dict[PeerId, int]:
        """Unique prefix count per peer (full-feed inference input)."""
        return {peer_id: len(table) for peer_id, table in self._tables.items()}

    def all_prefixes(self) -> Set[Prefix]:
        """Union of every peer's prefixes."""
        prefixes: Set[Prefix] = set()
        for table in self._tables.values():
            prefixes |= table.prefixes()
        return prefixes

    def prefix_visibility(self) -> Dict[Prefix, Tuple[Set[str], Set[int]]]:
        """For each prefix: the collectors and the peer ASNs that carry it.

        Drives the paper's §2.4.3 visibility filter (>= 2 collectors and
        >= 4 peer ASes).
        """
        visibility: Dict[Prefix, Tuple[Set[str], Set[int]]] = {}
        for (collector, peer_asn, _), table in self._tables.items():
            for prefix in table.prefixes():
                entry = visibility.get(prefix)
                if entry is None:
                    entry = (set(), set())
                    visibility[prefix] = entry
                entry[0].add(collector)
                entry[1].add(peer_asn)
        return visibility

    def restrict_peers(self, keep: Iterable[PeerId]) -> "RIBSnapshot":
        """Snapshot containing only the given peers (shares tables)."""
        keep_set = set(keep)
        restricted = RIBSnapshot(self.timestamp)
        restricted._tables = {
            peer_id: table
            for peer_id, table in self._tables.items()
            if peer_id in keep_set
        }
        return restricted

    def restrict_family(self, family: int) -> "RIBSnapshot":
        """Snapshot containing only prefixes of one address family."""
        restricted = RIBSnapshot(self.timestamp)
        for peer_id, table in self._tables.items():
            new_table = AdjRIBIn(peer_id)
            for prefix, attributes in table.items():
                if prefix.family == family:
                    new_table.announce(prefix, attributes)
            if len(new_table):
                restricted._tables[peer_id] = new_table
        return restricted

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        total = sum(len(t) for t in self._tables.values())
        return (
            f"RIBSnapshot(t={self.timestamp}, peers={len(self._tables)}, "
            f"routes={total})"
        )
