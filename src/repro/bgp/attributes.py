"""BGP path attributes.

Only the attributes the replication pipeline actually consumes are
modelled: AS_PATH, communities, MED, LOCAL_PREF and ORIGIN.  They travel
together in a :class:`PathAttributes` value object attached to each route
element.
"""

from __future__ import annotations

from enum import IntEnum
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.net.aspath import ASPath


class Origin(IntEnum):
    """BGP ORIGIN attribute (RFC 4271 §5.1.1)."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class Community:
    """An RFC 1997 community value ``asn:value``.

    The paper discusses action communities (e.g. GTT 3257:2990 "do not
    announce in North America"); the simulator uses communities to drive
    selective export at transit ASes.
    """

    __slots__ = ("asn", "value")

    def __init__(self, asn: int, value: int):
        if not 0 <= asn <= 0xFFFFFFFF:
            raise ValueError(f"community ASN {asn} out of range")
        if not 0 <= value <= 0xFFFF:
            raise ValueError(f"community value {value} out of range")
        object.__setattr__(self, "asn", asn)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Community is immutable")

    def __reduce__(self) -> Tuple[type, Tuple[int, int]]:
        return (Community, (self.asn, self.value))

    @classmethod
    def parse(cls, text: str) -> "Community":
        asn_text, _, value_text = text.partition(":")
        return cls(int(asn_text), int(value_text))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Community)
            and self.asn == other.asn
            and self.value == other.value
        )

    def __lt__(self, other: "Community") -> bool:
        return (self.asn, self.value) < (other.asn, other.value)

    def __hash__(self) -> int:
        return hash((self.asn, self.value))

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"

    def __repr__(self) -> str:
        return f"Community({self.asn}, {self.value})"


class PathAttributes:
    """The attribute bundle carried by one route announcement."""

    __slots__ = ("as_path", "communities", "med", "local_pref", "origin", "_hash")

    def __init__(
        self,
        as_path: ASPath,
        communities: Iterable[Community] = (),
        med: int = 0,
        local_pref: int = 100,
        origin: Origin = Origin.IGP,
    ):
        if not isinstance(origin, Origin):
            origin = Origin(origin)
        object.__setattr__(self, "as_path", as_path)
        object.__setattr__(self, "communities", frozenset(communities))
        object.__setattr__(self, "med", med)
        object.__setattr__(self, "local_pref", local_pref)
        object.__setattr__(self, "origin", origin)
        object.__setattr__(
            self,
            "_hash",
            hash((as_path, self.communities, med, local_pref, self.origin)),
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PathAttributes is immutable")

    def __reduce__(
        self,
    ) -> Tuple[type, Tuple[ASPath, FrozenSet[Community], int, int, Origin]]:
        return (
            PathAttributes,
            (self.as_path, self.communities, self.med, self.local_pref, self.origin),
        )

    def with_path(self, as_path: ASPath) -> "PathAttributes":
        """A copy with a different AS path."""
        return PathAttributes(
            as_path, self.communities, self.med, self.local_pref, self.origin
        )

    def with_communities(self, communities: Iterable[Community]) -> "PathAttributes":
        """A copy with a different community set."""
        return PathAttributes(
            self.as_path, communities, self.med, self.local_pref, self.origin
        )

    def community_values(self) -> Tuple[str, ...]:
        """Sorted textual community values."""
        return tuple(sorted(str(c) for c in self.communities))

    @property
    def origin_asn(self) -> Optional[int]:
        return self.as_path.origin

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PathAttributes)
            and self.as_path == other.as_path
            and self.communities == other.communities
            and self.med == other.med
            and self.local_pref == other.local_pref
            and self.origin == other.origin
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"PathAttributes(path={self.as_path!s}, "
            f"communities={sorted(map(str, self.communities))}, med={self.med})"
        )


EMPTY_COMMUNITIES: FrozenSet[Community] = frozenset()
