"""The BGP best-path decision process (RFC 4271 §9.1, abridged).

A reusable route comparator for consumers that hold several candidate
routes for one prefix (e.g. replaying collector data where multiple
peers offer paths, or extending the simulator with per-router RIBs).

Steps implemented, in order:

1. highest LOCAL_PREF;
2. shortest AS path (AS_SETs count as one hop);
3. lowest ORIGIN (IGP < EGP < INCOMPLETE);
4. lowest MED (compared only between routes from the same neighbor AS,
   per the RFC's default; ``always_compare_med`` relaxes that);
5. lowest neighbor ASN (deterministic stand-in for the router-ID
   tie-break).

Routes whose AS path contains the deciding AS are rejected up front
(loop prevention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.bgp.attributes import PathAttributes


@dataclass(frozen=True)
class CandidateRoute:
    """One candidate: who offered it and with what attributes."""

    neighbor_asn: int
    attributes: PathAttributes

    @property
    def local_pref(self) -> int:
        return self.attributes.local_pref

    @property
    def path_length(self) -> int:
        return self.attributes.as_path.hop_count()


def _comparison_key(route: CandidateRoute) -> Tuple:
    return (
        -route.local_pref,
        route.path_length,
        int(route.attributes.origin),
        route.neighbor_asn,
    )


def best_route(
    candidates: Iterable[CandidateRoute],
    local_asn: Optional[int] = None,
    always_compare_med: bool = False,
) -> Optional[CandidateRoute]:
    """Select the best route, or None when no candidate is usable.

    ``local_asn`` enables loop rejection: candidates whose AS path
    already contains the deciding AS are discarded.
    """
    usable: List[CandidateRoute] = []
    for candidate in candidates:
        if local_asn is not None and candidate.attributes.as_path.contains_asn(
            local_asn
        ):
            continue
        usable.append(candidate)
    if not usable:
        return None

    usable.sort(key=_comparison_key)
    # MED applies after local-pref/length/origin, among the leading
    # group, and by default only between same-neighbor-AS routes.
    leader = usable[0]
    leading = [
        route
        for route in usable
        if _comparison_key(route)[:3] == _comparison_key(leader)[:3]
    ]
    if len(leading) == 1:
        return leading[0]

    def med_key(route: CandidateRoute) -> Tuple:
        first_as = route.attributes.as_path.peer
        med = route.attributes.med
        if not always_compare_med:
            # Group by first AS in the path; MED only orders within a
            # group, so make it secondary to the group identity being
            # equal.  Implemented by comparing (first_as, med) pairs only
            # when first_as matches the leader's.
            return (med if first_as == leading[0].attributes.as_path.peer else 0,)
        return (med,)

    if always_compare_med:
        leading.sort(key=lambda route: (route.attributes.med, route.neighbor_asn))
        return leading[0]

    # Default MED semantics: compare within same-first-AS groups, then
    # fall back to the neighbor-ASN tie-break across groups.
    by_first_as = {}
    for route in leading:
        by_first_as.setdefault(route.attributes.as_path.peer, []).append(route)
    finalists = []
    for group in by_first_as.values():
        group.sort(key=lambda route: (route.attributes.med, route.neighbor_asn))
        finalists.append(group[0])
    finalists.sort(key=lambda route: route.neighbor_asn)
    return finalists[0]


def rank_routes(
    candidates: Sequence[CandidateRoute],
    local_asn: Optional[int] = None,
) -> List[CandidateRoute]:
    """All usable candidates, best first (repeated best_route removal)."""
    remaining = list(candidates)
    ranked: List[CandidateRoute] = []
    while remaining:
        best = best_route(remaining, local_asn=local_asn)
        if best is None:
            break
        ranked.append(best)
        remaining.remove(best)
    return ranked
