"""Memory-mapped reading of columnar atom stores.

:class:`AtomStore` opens a store built by
:class:`~repro.store.writer.StoreWriter`: the JSON manifest is parsed
eagerly (format/version/byte-order checks happen up front), segment
files lazily — each is ``mmap``-ed on first touch and served as
zero-copy :class:`memoryview` slices, with the u32 columns read
through ``memoryview.cast``.  Nothing is decompressed and no rows are
materialised until :meth:`atoms` reconstructs a snapshot, so opening a
two-decade store costs milliseconds regardless of size.

Integrity is checked before trust: every mapped segment's size and
SHA-256 must match the manifest (disable per-open with
``verify=False`` once a store has been checked), headers are validated
by :func:`~repro.store.format.check_segment`, and shard payload
geometry must agree with the manifest row counts.  Every failure mode
raises :class:`~repro.store.format.StoreError` — a corrupt store never
yields silently wrong atoms.

Reconstruction is exact, not approximate: the atom-id column stores
``atom_id + 1`` in sorted-prefix row order, and the kernel assigns
atom ids in first-prefix order of that same universe, so replaying
rows in order rebuilds atoms with identical ids, identical member
sets, and path vectors resolved through the persisted path table
(property-tested against ``compute_atoms`` in ``tests/store/``).
"""

from __future__ import annotations

import hashlib
import json
import mmap
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.bgp.rib import PeerId
from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.intern import ID_TYPECODE, KEY_WIDTH, PathInternPool
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs import get_tracer
from repro.store.format import (
    BYTE_ORDER,
    COLUMN_COUNTS,
    FORMAT_NAME,
    FORMAT_VERSION,
    KIND_COLUMNS,
    KIND_PATHS,
    PREFIX_RECORD,
    StoreError,
    check_segment,
    decode_path_table,
    decode_prefix,
    digest,
    peer_id_from_json,
)
from repro.store.writer import MANIFEST_NAME


@dataclass(frozen=True)
class ShardInfo:
    """One column shard: its file and covered prefix range."""

    file: str
    rows: int
    first: Prefix
    last: Prefix

    def covers(self, prefix: Prefix) -> bool:
        """True when ``prefix`` falls inside this shard's sorted range."""
        return self.first <= prefix <= self.last


@dataclass(frozen=True)
class StoreSnapshot:
    """Manifest entry for one persisted snapshot."""

    key: str
    label: str
    role: str
    year: float
    month: int
    family: int
    timestamp: int
    vantage_points: Tuple[PeerId, ...]
    prefixes: int
    atom_count: int
    feed: Optional[Dict[str, Any]]
    report: Optional[Dict[str, Any]]
    shards: Tuple[ShardInfo, ...]


@dataclass(frozen=True)
class QueryResult:
    """A point query's answer: which atom holds the prefix, and how."""

    key: str
    prefix: Prefix
    atom_id: int
    paths: Tuple[Optional[ASPath], ...]
    shard: str
    row: int


def _parse_entry(raw: Dict[str, Any]) -> StoreSnapshot:
    """Parse one manifest snapshot entry; StoreError on malformation."""
    try:
        shards = tuple(
            ShardInfo(
                file=shard["file"],
                rows=int(shard["rows"]),
                first=Prefix.parse(shard["first"]),
                last=Prefix.parse(shard["last"]),
            )
            for shard in raw["shards"]
        )
        return StoreSnapshot(
            key=str(raw["key"]),
            label=str(raw.get("label", "")),
            role=str(raw.get("role", "base")),
            year=float(raw.get("year", 0.0)),
            month=int(raw.get("month", 0)),
            family=int(raw.get("family", 0)),
            timestamp=int(raw.get("timestamp", 0)),
            vantage_points=tuple(
                peer_id_from_json(peer) for peer in raw["vantage_points"]
            ),
            prefixes=int(raw["prefixes"]),
            atom_count=int(raw["atoms"]),
            feed=raw.get("feed"),
            report=raw.get("report"),
            shards=shards,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise StoreError(f"malformed manifest snapshot entry: {error}") from None


class AtomStore:
    """A read-only, memory-mapped view of one on-disk atom store.

    Opening parses and validates the manifest only; segments map on
    first use.  ``verify=True`` (the default) additionally checks each
    segment's SHA-256 against the manifest the first time it is mapped.
    Use as a context manager — or call :meth:`close` — to release the
    mappings.
    """

    def __init__(self, root: Union[str, Path], verify: bool = True):
        self.root = Path(root)
        self.verify = verify
        tracer = get_tracer()
        with tracer.span("store-open", root=str(self.root)) as span:
            manifest_path = self.root / MANIFEST_NAME
            try:
                raw = json.loads(manifest_path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                raise StoreError(
                    f"no atom store at {self.root} ({MANIFEST_NAME} missing)"
                ) from None
            except (OSError, json.JSONDecodeError) as error:
                raise StoreError(f"unreadable manifest: {error}") from None
            if raw.get("format") != FORMAT_NAME:
                raise StoreError(
                    f"not an atom store manifest (format={raw.get('format')!r})"
                )
            if raw.get("version") != FORMAT_VERSION:
                raise StoreError(
                    f"store format version {raw.get('version')!r} unsupported "
                    f"(expected {FORMAT_VERSION})"
                )
            if raw.get("byte_order") != BYTE_ORDER:
                raise StoreError(
                    f"store written on a {raw.get('byte_order')!r}-endian "
                    f"machine cannot be mapped on {BYTE_ORDER!r}-endian"
                )
            if raw.get("key_width") != KEY_WIDTH:
                raise StoreError(
                    f"store id width {raw.get('key_width')!r} != {KEY_WIDTH}"
                )
            self.pool_options: Dict[str, Any] = dict(raw.get("pool", {}))
            self._segments: Dict[str, Dict[str, Any]] = raw.get("segments", {})
            entries = [_parse_entry(item) for item in raw.get("snapshots", [])]
            self._entries = entries
            self._by_key = {entry.key: entry for entry in entries}
            if len(self._by_key) != len(entries):
                raise StoreError("duplicate snapshot keys in manifest")
            #: relpath -> payload memoryview of the mapped segment
            self._views: Dict[str, memoryview] = {}
            #: relpath -> whole-file memoryview (header included)
            self._images: Dict[str, memoryview] = {}
            self._maps: List[Tuple[mmap.mmap, Any]] = []
            self._paths: Optional[List[Optional[ASPath]]] = None
            self._atoms_cache: Dict[str, AtomSet] = {}
            self._manifest_digest: Optional[str] = None
            self._closed = False
            if tracer.enabled:
                span.set(snapshots=len(entries))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release every mapping and file handle (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        self._images.clear()
        self._paths = None
        self._atoms_cache.clear()
        for mapped, handle in self._maps:
            try:
                mapped.close()
            except BufferError:  # pragma: no cover - exported views alive
                pass
            handle.close()
        self._maps.clear()

    def __enter__(self) -> "AtomStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Segment access
    # ------------------------------------------------------------------

    def _map_segment(self, relpath: str, kind: int) -> memoryview:
        """Map (once) and validate a segment; returns its payload view."""
        view = self._views.get(relpath)
        if view is not None:
            return view
        if self._closed:
            raise StoreError("store is closed")
        meta = self._segments.get(relpath)
        if meta is None:
            raise StoreError(f"segment {relpath} not listed in manifest")
        path = self.root / relpath
        try:
            handle = open(path, "rb")
        except OSError as error:
            raise StoreError(f"cannot open segment {relpath}: {error}") from None
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as error:
            handle.close()
            raise StoreError(f"cannot map segment {relpath}: {error}") from None
        self._maps.append((mapped, handle))
        data = memoryview(mapped)
        if len(data) != meta.get("bytes"):
            raise StoreError(
                f"segment {relpath} is {len(data)} bytes, manifest says "
                f"{meta.get('bytes')}"
            )
        if self.verify and digest(data) != meta.get("sha256"):
            raise StoreError(f"segment {relpath} fails its sha256 digest")
        view = check_segment(data, kind, relpath)
        self._views[relpath] = view
        self._images[relpath] = data
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("store.segments_opened")
            tracer.count("store.bytes_mapped", len(data))
        return view

    def path_table(self) -> List[Optional[ASPath]]:
        """The id-indexed path table (slot 0 = the absent sentinel)."""
        if self._paths is None:
            payload = self._map_segment("paths.seg", KIND_PATHS)
            decoded = decode_path_table(payload)
            expected = self.pool_options.get("path_count")
            if expected is not None and expected != len(decoded):
                raise StoreError(
                    f"path table has {len(decoded)} entries, manifest says "
                    f"{expected}"
                )
            self._paths = [None] + decoded
        return self._paths

    def intern_pool(self) -> PathInternPool:
        """A :class:`PathInternPool` reloaded from the persisted table.

        Dense ids match the store's columns exactly, so packed keys
        built against this pool are directly comparable with stored
        id vectors — no path is re-normalised or re-hashed.
        """
        return PathInternPool.from_table(
            [path for path in self.path_table()[1:] if path is not None],
            expand_singleton_sets=bool(
                self.pool_options.get("expand_singleton_sets", True)
            ),
            strip_prepending=bool(
                self.pool_options.get("strip_prepending", False)
            ),
        )

    def manifest_digest(self) -> str:
        """Hex digest identifying this store's exact content version.

        Derived from the manifest's per-segment SHA-256 digests plus
        the snapshot key order, so any rebuilt, extended or corrupted
        store gets a new identity.  ``repro serve`` uses it as the
        snapshot-version component of its ETags; it is memoised for
        the store's lifetime (the mapping is read-only).
        """
        if self._manifest_digest is None:
            body = {
                "segments": {
                    relpath: meta.get("sha256")
                    for relpath, meta in self._segments.items()
                },
                "snapshots": [entry.key for entry in self._entries],
            }
            encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
            self._manifest_digest = hashlib.sha256(
                encoded.encode("utf-8")
            ).hexdigest()
        return self._manifest_digest

    # ------------------------------------------------------------------
    # Snapshot index
    # ------------------------------------------------------------------

    def snapshots(self) -> List[StoreSnapshot]:
        """All snapshot entries in sweep (insertion) order."""
        return list(self._entries)

    def snapshot(self, key: str) -> StoreSnapshot:
        """The entry for ``key``; StoreError when absent."""
        entry = self._by_key.get(key)
        if entry is None:
            raise StoreError(f"snapshot {key!r} not in store {self.root}")
        return entry

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def _shard_columns(self, entry: StoreSnapshot, shard: ShardInfo):
        """Map one shard; returns ``(prefix bytes, u32 columns, rows)``.

        ``columns`` is the flat native-endian u32 view covering the
        atom column followed by the per-VP id columns, each ``rows``
        wide.
        """
        payload = self._map_segment(shard.file, KIND_COLUMNS)
        if len(payload) < COLUMN_COUNTS.size:
            raise StoreError(f"{shard.file}: payload shorter than its counts")
        rows, vps = COLUMN_COUNTS.unpack_from(payload, 0)
        if rows != shard.rows:
            raise StoreError(
                f"{shard.file}: {rows} rows on disk, manifest says {shard.rows}"
            )
        if vps != len(entry.vantage_points):
            raise StoreError(
                f"{shard.file}: {vps} id columns, manifest lists "
                f"{len(entry.vantage_points)} vantage points"
            )
        prefix_end = COLUMN_COUNTS.size + rows * PREFIX_RECORD.size
        columns_start = prefix_end + (-prefix_end % 4)
        expected = columns_start + KEY_WIDTH * rows * (1 + vps)
        if len(payload) != expected:
            raise StoreError(
                f"{shard.file}: payload is {len(payload)} bytes, geometry "
                f"requires {expected}"
            )
        prefix_block = payload[COLUMN_COUNTS.size:prefix_end]
        columns = payload[columns_start:].cast(ID_TYPECODE)
        return prefix_block, columns, rows

    def atoms(self, key: str) -> AtomSet:
        """Reconstruct the :class:`AtomSet` for snapshot ``key``.

        Value-identical to the ``compute_atoms`` output the store was
        built from — atom ids, member sets, path vectors, vantage-point
        order and timestamp included.  Results are memoised per store
        instance; repeat hits count as ``store.query_cache_hits``.
        """
        cached = self._atoms_cache.get(key)
        tracer = get_tracer()
        if cached is not None:
            if tracer.enabled:
                tracer.count("store.query_cache_hits")
            return cached
        entry = self.snapshot(key)
        with tracer.span("store-load", key=key) as span:
            table = self.path_table()
            members: List[List[Prefix]] = []
            vectors: List[Tuple[Optional[ASPath], ...]] = []
            vps = len(entry.vantage_points)
            for shard in entry.shards:
                prefix_block, columns, rows = self._shard_columns(entry, shard)
                for row in range(rows):
                    stamped = columns[row]
                    if stamped == 0:
                        continue
                    atom_id = stamped - 1
                    prefix = decode_prefix(
                        prefix_block[
                            row * PREFIX_RECORD.size:
                            (row + 1) * PREFIX_RECORD.size
                        ]
                    )
                    if atom_id == len(members):
                        members.append([prefix])
                        try:
                            vectors.append(tuple(
                                table[columns[(1 + vp) * rows + row]]
                                for vp in range(vps)
                            ))
                        except IndexError:
                            raise StoreError(
                                f"{shard.file}: path id beyond the path table"
                            ) from None
                    elif atom_id < len(members):
                        members[atom_id].append(prefix)
                    else:
                        raise StoreError(
                            f"{shard.file}: atom id {atom_id} appears before "
                            f"{len(members) - 1} was introduced"
                        )
            if len(members) != entry.atom_count:
                raise StoreError(
                    f"snapshot {key!r} rebuilt {len(members)} atoms, manifest "
                    f"says {entry.atom_count}"
                )
            atom_set = AtomSet(
                [
                    PolicyAtom(index, frozenset(group), vectors[index])
                    for index, group in enumerate(members)
                ],
                list(entry.vantage_points),
                entry.timestamp,
            )
            if len(atom_set.by_prefix) != entry.prefixes:
                raise StoreError(
                    f"snapshot {key!r} rebuilt {len(atom_set.by_prefix)} "
                    f"prefixes, manifest says {entry.prefixes}"
                )
            self._atoms_cache[key] = atom_set
            if tracer.enabled:
                span.set(atoms=len(atom_set), prefixes=entry.prefixes)
                tracer.count("store.snapshots_loaded")
        return atom_set

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------

    def query(
        self,
        prefix: Union[str, Prefix],
        key: Optional[str] = None,
        shards: Optional[Sequence[ShardInfo]] = None,
    ) -> Optional[QueryResult]:
        """Locate ``prefix`` in one snapshot without loading the snapshot.

        Routes through the manifest's shard ranges, then binary-searches
        the one covering shard's prefix column bytewise (encoded records
        order exactly like :meth:`Prefix.key`).  ``key`` defaults to the
        store's first snapshot.  Returns None when the prefix is not in
        the snapshot's universe.

        ``shards`` restricts the search to a pre-routed candidate list
        (``repro.serve``'s prefix-trie router); the default considers
        every shard of the snapshot, and both paths return identical
        answers because candidates are still filtered by
        :meth:`ShardInfo.covers`.
        """
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        if key is None:
            if not self._entries:
                raise StoreError("store holds no snapshots")
            key = self._entries[0].key
        entry = self.snapshot(key)
        tracer = get_tracer()
        with tracer.span("store-query", key=key, prefix=str(prefix)):
            target = PREFIX_RECORD.pack(
                prefix.family, prefix.network.to_bytes(16, "big"), prefix.length
            )
            for shard in entry.shards if shards is None else shards:
                if not shard.covers(prefix):
                    continue
                prefix_block, columns, rows = self._shard_columns(entry, shard)
                width = PREFIX_RECORD.size
                low, high = 0, rows
                while low < high:
                    mid = (low + high) // 2
                    record = bytes(prefix_block[mid * width:(mid + 1) * width])
                    if record < target:
                        low = mid + 1
                    elif record > target:
                        high = mid
                    else:
                        stamped = columns[mid]
                        if stamped == 0:
                            return None
                        table = self.path_table()
                        vps = len(entry.vantage_points)
                        try:
                            paths = tuple(
                                table[columns[(1 + vp) * rows + mid]]
                                for vp in range(vps)
                            )
                        except IndexError:
                            raise StoreError(
                                f"{shard.file}: path id beyond the path table"
                            ) from None
                        return QueryResult(
                            key=key,
                            prefix=prefix,
                            atom_id=stamped - 1,
                            paths=paths,
                            shard=shard.file,
                            row=mid,
                        )
                return None
        return None

    def verify_segments(self) -> int:
        """Map and digest-check every manifest segment; returns the count.

        Forces a full integrity pass regardless of the instance's
        ``verify`` flag (segments already mapped unverified are
        re-hashed here).
        """
        checked = 0
        for relpath, meta in sorted(self._segments.items()):
            kind = KIND_PATHS if relpath == "paths.seg" else KIND_COLUMNS
            self._map_segment(relpath, kind)
            if not self.verify:
                image = self._images[relpath]
                if digest(image) != meta.get("sha256"):
                    raise StoreError(
                        f"segment {relpath} fails its sha256 digest"
                    )
            checked += 1
        return checked

    def total_bytes(self) -> int:
        """Sum of all segment sizes listed in the manifest."""
        return sum(int(meta.get("bytes", 0)) for meta in self._segments.values())
