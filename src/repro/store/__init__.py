"""Binary, memory-mapped, columnar on-disk atom store.

The storage substrate the longitudinal pipeline persists to and reads
back from (ROADMAP item 1).  A store holds one sweep's worth of
snapshots: a shared varint-framed path table (the persisted
:class:`~repro.core.intern.PathInternPool`), per-snapshot column
segments (sorted prefix universe, atom-id column, per-VP dense path-id
columns) split into prefix-range shards, and a JSON manifest carrying
the format header, snapshot index, shard boundaries and per-segment
SHA-256 digests.

* :class:`StoreWriter` / :func:`merge_parts` build stores
  (:mod:`repro.store.writer`);
* :class:`AtomStore` reopens them via ``mmap`` with zero-copy column
  views and reconstructs :class:`~repro.core.atoms.AtomSet` values
  bit-identical to recompute (:mod:`repro.store.reader`);
* :mod:`repro.store.format` specifies the bytes (see
  ``docs/data-format.md``);
* all failure modes raise :class:`StoreError`.

CLI surface: ``repro store build / info / query`` and
``repro trend --store-dir``.
"""

from repro.store.format import FORMAT_VERSION, StoreError
from repro.store.reader import AtomStore, QueryResult, StoreSnapshot
from repro.store.writer import (
    StoreWriter,
    merge_parts,
    part_complete,
    part_dir,
    write_part,
)

__all__ = [
    "FORMAT_VERSION",
    "StoreError",
    "AtomStore",
    "QueryResult",
    "StoreSnapshot",
    "StoreWriter",
    "merge_parts",
    "part_complete",
    "part_dir",
    "write_part",
]
