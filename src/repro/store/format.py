"""Binary primitives of the on-disk atom store.

Everything :mod:`repro.store` writes is built from three codecs, all
specified in ``docs/data-format.md``:

* **uvarint** — LEB128 unsigned varints frame the variable-length
  structures (the path table) so small values cost one byte;
* **path records** — a normalised :class:`~repro.net.aspath.ASPath`
  as ``uvarint nsegments`` followed by per-segment
  ``uvarint kind, uvarint nasns, nasns × uvarint asn``;
* **prefix records** — a :class:`~repro.net.prefix.Prefix` as a fixed
  18-byte ``family(u8) network(16B big-endian) length(u8)`` triple.
  The layout is ordered so *bytewise* comparison of encoded records
  equals :meth:`Prefix.key` ordering — shard range checks and row
  binary searches run on raw bytes, no decoding.

Segment files share one 16-byte header (``magic, version, kind,
payload length``); integer columns inside payloads are native-endian
``array('I')`` images so an :func:`mmap`-ed segment serves zero-copy
``memoryview.cast("I")`` slices.  The manifest records the writer's
byte order and every segment's SHA-256; readers verify both before
trusting a byte.  Any malformation — bad magic, version skew, length
or digest mismatch — raises :class:`StoreError`, never returns garbage.
"""

from __future__ import annotations

import hashlib
import struct
import sys
from typing import List, Optional, Sequence, Tuple

from repro.net.aspath import ASPath, PathSegment, SegmentType
from repro.net.prefix import Prefix

#: Magic bytes opening every segment file.
MAGIC = b"RPST"

#: On-disk format version; bump on any incompatible layout change.
FORMAT_VERSION = 1

#: Manifest ``format`` discriminator.
FORMAT_NAME = "repro-atom-store"

#: Segment kinds (the header's ``kind`` field).
KIND_PATHS = 1
KIND_COLUMNS = 2
#: A framed :class:`~repro.engine.jobs.QuarterResult` (the exchange
#: plane's wire image and the result cache's binary sidecar).
KIND_RESULT = 3

#: Byte width of the SHA-256 stamp opening a digested segment payload.
DIGEST_SIZE = 32

#: Segment header: magic, version, kind, payload byte length.
HEADER = struct.Struct(">4sHHQ")

#: Fixed-width prefix record: family, network (big-endian), length.
#: Field order makes encoded-bytes ordering equal ``Prefix.key`` order.
PREFIX_RECORD = struct.Struct(">B16sB")

#: The two native-endian u32 counts opening a columns payload.
COLUMN_COUNTS = struct.Struct("=II")

#: Native byte order stamped into the manifest; readers refuse a
#: mismatch instead of silently mis-casting integer columns.
BYTE_ORDER = sys.byteorder


class StoreError(RuntimeError):
    """The store is malformed: corrupt, truncated, or version-skewed."""


# ----------------------------------------------------------------------
# Unsigned varints (LEB128)
# ----------------------------------------------------------------------

def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` to ``out`` as a LEB128 unsigned varint."""
    if value < 0:
        raise ValueError("uvarint cannot encode negative values")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(view, offset: int) -> Tuple[int, int]:
    """Decode one uvarint at ``offset``; returns ``(value, next offset)``."""
    value = 0
    shift = 0
    length = len(view)
    while True:
        if offset >= length:
            raise StoreError("truncated uvarint")
        byte = view[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise StoreError("uvarint overlong")


# ----------------------------------------------------------------------
# Path records
# ----------------------------------------------------------------------

def encode_path(out: bytearray, path: ASPath) -> None:
    """Append one normalised path as a varint-framed record."""
    write_uvarint(out, len(path.segments))
    for segment in path.segments:
        write_uvarint(out, int(segment.kind))
        write_uvarint(out, len(segment.asns))
        for asn in segment.asns:
            write_uvarint(out, asn)


def decode_path(view, offset: int) -> Tuple[ASPath, int]:
    """Decode one path record; returns ``(path, next offset)``."""
    nsegments, offset = read_uvarint(view, offset)
    segments: List[PathSegment] = []
    for _ in range(nsegments):
        kind, offset = read_uvarint(view, offset)
        nasns, offset = read_uvarint(view, offset)
        if nasns == 0:
            raise StoreError("path record with empty segment")
        asns: List[int] = []
        for _ in range(nasns):
            asn, offset = read_uvarint(view, offset)
            asns.append(asn)
        try:
            segments.append(PathSegment(SegmentType(kind), asns))
        except ValueError as error:
            raise StoreError(f"invalid path segment: {error}") from None
    return ASPath(segments), offset


def encode_path_table(paths: Sequence[ASPath]) -> bytes:
    """The paths segment payload: count + records in dense-id order."""
    out = bytearray()
    write_uvarint(out, len(paths))
    for path in paths:
        encode_path(out, path)
    return bytes(out)


def decode_path_table(payload) -> List[ASPath]:
    """Decode a paths segment payload back into id order (id = index+1)."""
    count, offset = read_uvarint(payload, 0)
    paths: List[ASPath] = []
    for _ in range(count):
        path, offset = decode_path(payload, offset)
        paths.append(path)
    if offset != len(payload):
        raise StoreError("trailing bytes after path table")
    return paths


# ----------------------------------------------------------------------
# Prefix records
# ----------------------------------------------------------------------

def encode_prefix(prefix: Prefix) -> bytes:
    """One fixed-width, order-preserving 18-byte prefix record."""
    return PREFIX_RECORD.pack(
        prefix.family, prefix.network.to_bytes(16, "big"), prefix.length
    )


def decode_prefix(record: bytes) -> Prefix:
    """Decode one 18-byte prefix record."""
    try:
        family, network, length = PREFIX_RECORD.unpack(record)
        return Prefix(family, int.from_bytes(network, "big"), length)
    except (struct.error, ValueError) as error:
        raise StoreError(f"invalid prefix record: {error}") from None


# ----------------------------------------------------------------------
# Segment framing
# ----------------------------------------------------------------------

def frame_segment(kind: int, payload: bytes) -> bytes:
    """A complete segment file image: header + payload."""
    return HEADER.pack(MAGIC, FORMAT_VERSION, kind, len(payload)) + payload


def check_segment(data, kind: int, name: str):
    """Validate a segment image's header; returns the payload view.

    ``data`` is any buffer (bytes or an mmap-backed memoryview); the
    returned payload is a zero-copy slice of it.
    """
    if len(data) < HEADER.size:
        raise StoreError(f"{name}: segment shorter than its header")
    magic, version, found_kind, length = HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise StoreError(f"{name}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"{name}: format version {version} unsupported "
            f"(expected {FORMAT_VERSION})"
        )
    if found_kind != kind:
        raise StoreError(f"{name}: segment kind {found_kind}, expected {kind}")
    if HEADER.size + length != len(data):
        raise StoreError(
            f"{name}: payload length {length} does not match file size"
        )
    view = memoryview(data) if not isinstance(data, memoryview) else data
    return view[HEADER.size:]


def digest(data) -> str:
    """SHA-256 hex digest of a segment image (manifest integrity field)."""
    return hashlib.sha256(data).hexdigest()


def frame_digested_segment(kind: int, body: bytes) -> bytes:
    """A self-verifying segment image: the payload opens with a SHA-256.

    Store segments carry their digest in the manifest; segments that
    travel *alone* — exchange-plane results, cache sidecars — stamp the
    digest into the payload itself so any reader can verify the image
    without a manifest.
    """
    return frame_segment(kind, hashlib.sha256(body).digest() + body)


def check_digested_segment(data, kind: int, name: str):
    """Validate header and embedded digest; returns the body view.

    Zero-copy like :func:`check_segment`: the returned body is a slice
    of ``data``.  Raises :class:`StoreError` on any malformation,
    including a digest mismatch.
    """
    payload = check_segment(data, kind, name)
    if len(payload) < DIGEST_SIZE:
        raise StoreError(f"{name}: digested segment shorter than its digest")
    body = payload[DIGEST_SIZE:]
    if hashlib.sha256(body).digest() != bytes(payload[:DIGEST_SIZE]):
        raise StoreError(f"{name}: segment digest mismatch")
    return body


def column_padding(rows: int) -> int:
    """Zero bytes inserted after the prefix column.

    Keeps the u32 columns that follow 4-byte aligned regardless of the
    18-byte prefix record count (alignment is not required by
    ``memoryview.cast`` but keeps the layout tool-friendly).
    """
    return (-(COLUMN_COUNTS.size + rows * PREFIX_RECORD.size)) % 4


def peer_id_to_json(peer_id) -> list:
    """A ``PeerId`` tuple as its JSON-manifest list form."""
    collector, asn, address = peer_id
    return [collector, asn, address]


def peer_id_from_json(item) -> tuple:
    """Restore a ``PeerId`` tuple from its JSON-manifest list form."""
    try:
        collector, asn, address = item
        return (str(collector), int(asn), str(address))
    except (TypeError, ValueError) as error:
        raise StoreError(f"invalid vantage point in manifest: {error}") from None


def optional_path_key(path: Optional[ASPath]) -> Optional[str]:
    """Render a path vector slot for manifests/CLI (None stays None)."""
    return None if path is None else str(path)
