"""Writing sharded columnar atom stores.

:class:`StoreWriter` turns in-memory :class:`~repro.core.atoms.AtomSet`
values into the on-disk layout ``docs/data-format.md`` specifies::

    <root>/manifest.json                 # format header, index, digests
    <root>/paths.seg                     # interned path table, id order
    <root>/snapshots/<key>/shard-NNNN.seg

Snapshots stream through one writer back to back; every normalised
path is interned once into a writer-lifetime
:class:`~repro.core.intern.PathInternPool`, so the persisted path
table is shared by all snapshots and column cells are 4-byte dense
ids.  Each snapshot's sorted prefix universe is cut into contiguous
ranges of at most ``shard_rows`` rows — the manifest records every
shard's ``[first, last]`` prefix so point queries and future shard
routing (``repro serve``) touch one segment.

Segment files are written via temp file + atomic rename and the
manifest last, so a killed build never leaves a store that *opens*:
:class:`~repro.store.reader.AtomStore` requires the manifest, and the
manifest references only fully written, digest-stamped segments.

The module also hosts the engine integration helpers: sweep workers
persist self-contained per-job **parts** (mini-stores under
``<root>/parts/<job digest>/``) and :func:`merge_parts` folds them —
in sweep order — into the final store, re-interning paths into one
global table.  Parts stay on disk afterwards: their presence is what
lets a cached re-run skip recomputation while keeping the store
completable.
"""

from __future__ import annotations

import json
import os
from array import array
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.core.atoms import AtomSet
from repro.core.intern import ID_TYPECODE, KEY_WIDTH, PathInternPool
from repro.net.prefix import Prefix
from repro.obs import get_tracer
from repro.store.format import (
    BYTE_ORDER,
    COLUMN_COUNTS,
    FORMAT_NAME,
    FORMAT_VERSION,
    KIND_COLUMNS,
    KIND_PATHS,
    StoreError,
    column_padding,
    digest,
    encode_path_table,
    encode_prefix,
    frame_segment,
    peer_id_to_json,
)

#: Default maximum prefix rows per column shard.
DEFAULT_SHARD_ROWS = 65536

#: Name of the store (and part) manifest file.
MANIFEST_NAME = "manifest.json"

#: Directory (under the store root) holding per-job sweep parts.
PARTS_DIR = "parts"


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + atomic rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp{os.getpid()}"
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - best effort
                pass


def _pid_alive(pid: int) -> bool:
    """True when ``pid`` names a live process (or we cannot tell)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - other owner
        return True
    return True


def sweep_stale_tmp(directory: os.PathLike) -> int:
    """Remove ``*.tmp<pid>`` leftovers whose writer died; count removed.

    A sweep worker killed mid-``_atomic_write`` leaves its temp file
    behind — never a corrupt store (the rename is atomic and the
    manifest lands last), but the orphans accumulate under ``parts/``
    across re-runs.  The owning pid is embedded in the temp name, so a
    liveness probe distinguishes a dead writer's litter from a
    concurrent writer still mid-write; only the former is removed.
    """
    base = Path(directory)
    if not base.is_dir():
        return 0
    removed = 0
    for tmp in base.rglob("*.tmp*"):
        if not tmp.is_file():
            continue
        suffix = tmp.name.rpartition(".tmp")[2]
        digits = suffix.split("-", 1)[0]
        if not digits.isdigit():
            continue
        if _pid_alive(int(digits)):
            continue
        try:
            tmp.unlink()
        except OSError:  # pragma: no cover - raced with another sweeper
            continue
        removed += 1
    if removed:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("store.tmp_swept", removed)
    return removed


class StoreWriter:
    """Builds one columnar atom store under ``root``.

    Call :meth:`add_snapshot` once per computed snapshot (in sweep
    order — the manifest preserves insertion order) and :meth:`close`
    exactly once to seal the store.  The normalisation options describe
    how the stored atoms were produced; they are recorded in the
    manifest so a reloaded pool carries the same semantics.
    """

    def __init__(
        self,
        root: os.PathLike,
        expand_singleton_sets: bool = True,
        strip_prepending: bool = False,
        shard_rows: int = DEFAULT_SHARD_ROWS,
    ):
        if shard_rows < 1:
            raise ValueError("shard_rows must be >= 1")
        self.root = Path(root)
        self.shard_rows = shard_rows
        #: writer-lifetime pool; atoms carry already-normalised paths,
        #: so only ``id_for_path`` (no re-normalisation) is ever used
        self.pool = PathInternPool(expand_singleton_sets, strip_prepending)
        self._snapshots: List[Dict[str, Any]] = []
        self._segments: Dict[str, Dict[str, Any]] = {}
        self._keys: set = set()
        self._closed = False

    # ------------------------------------------------------------------

    def _write_segment(self, relpath: str, kind: int, payload: bytes) -> None:
        image = frame_segment(kind, payload)
        _atomic_write(self.root / relpath, image)
        self._segments[relpath] = {"bytes": len(image), "sha256": digest(image)}
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("store.segments_written")
            tracer.count("store.bytes_written", len(image))

    def _shard_payload(
        self,
        prefixes: Sequence[Prefix],
        atom_column: Sequence[int],
        id_columns: Sequence[Sequence[int]],
        start: int,
        end: int,
    ) -> bytes:
        rows = end - start
        parts = [COLUMN_COUNTS.pack(rows, len(id_columns))]
        parts.extend(encode_prefix(prefix) for prefix in prefixes[start:end])
        parts.append(bytes(column_padding(rows)))
        parts.append(array(ID_TYPECODE, atom_column[start:end]).tobytes())
        for column in id_columns:
            parts.append(array(ID_TYPECODE, column[start:end]).tobytes())
        return b"".join(parts)

    # ------------------------------------------------------------------

    def add_snapshot(
        self,
        key: str,
        atoms: AtomSet,
        label: str = "",
        role: str = "base",
        year: float = 0.0,
        month: int = 0,
        family: int = 0,
        feed: Optional[Dict[str, Any]] = None,
        report: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Persist one snapshot's columns; returns its manifest entry.

        ``key`` must be unique within the store (the sweep convention is
        ``"<label>:<role>"``, e.g. ``"2004-01:8h"``).  ``feed`` and
        ``report`` carry the snapshot-level summaries the trend series
        need but the columns cannot reproduce (full-feed counts, the
        sanitization headline); pass them for base snapshots.
        """
        if self._closed:
            raise StoreError("writer already closed")
        if key in self._keys:
            raise StoreError(f"duplicate snapshot key {key!r}")
        if "/" in key or "\\" in key or key in ("", ".", ".."):
            raise StoreError(f"invalid snapshot key {key!r}")
        self._keys.add(key)

        tracer = get_tracer()
        with tracer.span("store-write", key=key) as span:
            prefixes = sorted(atoms.by_prefix, key=Prefix.key)
            rows = len(prefixes)
            position = {prefix: row for row, prefix in enumerate(prefixes)}
            vantage_points = list(atoms.vantage_points)
            vp_count = len(vantage_points)

            atom_column = [0] * rows
            id_columns = [[0] * rows for _ in range(vp_count)]
            intern_id = self.pool.id_for_path
            for atom in atoms:
                ids = [intern_id(path) for path in atom.paths]
                if len(ids) != vp_count:
                    raise StoreError(
                        f"atom {atom.atom_id} path vector width {len(ids)} "
                        f"!= {vp_count} vantage points"
                    )
                stamped = atom.atom_id + 1
                for prefix in atom.prefixes:
                    row = position[prefix]
                    atom_column[row] = stamped
                    for vp_index in range(vp_count):
                        id_columns[vp_index][row] = ids[vp_index]

            shards: List[Dict[str, Any]] = []
            for start in range(0, rows, self.shard_rows):
                end = min(start + self.shard_rows, rows)
                relpath = f"snapshots/{key}/shard-{len(shards):04d}.seg"
                self._write_segment(
                    relpath,
                    KIND_COLUMNS,
                    self._shard_payload(
                        prefixes, atom_column, id_columns, start, end
                    ),
                )
                shards.append(
                    {
                        "file": relpath,
                        "rows": end - start,
                        "first": str(prefixes[start]),
                        "last": str(prefixes[end - 1]),
                    }
                )

            entry: Dict[str, Any] = {
                "key": key,
                "label": label,
                "role": role,
                "year": year,
                "month": month,
                "family": family,
                "timestamp": atoms.timestamp,
                "vantage_points": [
                    peer_id_to_json(peer) for peer in vantage_points
                ],
                "prefixes": rows,
                "atoms": len(atoms),
                "feed": feed,
                "report": report,
                "shards": shards,
            }
            self._snapshots.append(entry)
            if tracer.enabled:
                span.set(prefixes=rows, atoms=len(atoms), shards=len(shards))
                tracer.count("store.snapshots_written")
        return entry

    def close(self) -> Path:
        """Write the path table and manifest; returns the manifest path.

        The manifest lands last (atomically), so its presence marks a
        complete store.
        """
        if self._closed:
            raise StoreError("writer already closed")
        self._closed = True
        table = [path for path in self.pool.path_table[1:] if path is not None]
        self._write_segment("paths.seg", KIND_PATHS, encode_path_table(table))
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "byte_order": BYTE_ORDER,
            "key_width": KEY_WIDTH,
            "pool": {
                "expand_singleton_sets": self.pool.expand_singleton_sets,
                "strip_prepending": self.pool.strip_prepending,
                "path_count": len(table),
            },
            "segments": self._segments,
            "snapshots": self._snapshots,
        }
        path = self.root / MANIFEST_NAME
        _atomic_write(
            path,
            (json.dumps(manifest, indent=1, sort_keys=False) + "\n").encode(
                "utf-8"
            ),
        )
        return path


# ----------------------------------------------------------------------
# Sweep parts (engine integration)
# ----------------------------------------------------------------------

def part_dir(root: os.PathLike, job_key: str) -> Path:
    """The per-job part directory under a sweep's store root."""
    return Path(root) / PARTS_DIR / job_key


def part_complete(root: os.PathLike, job_key: str) -> bool:
    """True when the job's part was fully written (manifest present)."""
    return (part_dir(root, job_key) / MANIFEST_NAME).is_file()


def write_part(
    root: os.PathLike,
    job_key: str,
    snapshots: Sequence[Dict[str, Any]],
) -> Path:
    """Persist one job's snapshots as a self-contained part store.

    ``snapshots`` items are ``add_snapshot`` keyword dicts plus the
    ``atoms`` value; parts use local path tables (workers cannot share
    an intern pool across processes) — :func:`merge_parts` re-interns
    them into the final store's global table.  An existing complete
    part for the same job is left untouched (its content is a pure
    function of the job digest).
    """
    if part_complete(root, job_key):
        return part_dir(root, job_key) / MANIFEST_NAME
    sweep_stale_tmp(part_dir(root, job_key))
    writer = StoreWriter(part_dir(root, job_key))
    for item in snapshots:
        item = dict(item)
        atoms = item.pop("atoms")
        writer.add_snapshot(item.pop("key"), atoms, **item)
    return writer.close()


def merge_parts(
    root: os.PathLike,
    job_keys: Sequence[str],
    shard_rows: int = DEFAULT_SHARD_ROWS,
) -> Path:
    """Fold per-job parts into the final store at ``root``.

    ``job_keys`` give the sweep order; every part must be complete
    (:func:`part_complete`) or :class:`StoreError` names the missing
    jobs.  Returns the final manifest path.
    """
    from repro.store.reader import AtomStore

    sweep_stale_tmp(Path(root) / PARTS_DIR)
    missing = [key for key in job_keys if not part_complete(root, key)]
    if missing:
        raise StoreError(
            f"cannot finalize store: {len(missing)} sweep part(s) missing "
            f"under {part_dir(root, missing[0]).parent} — "
            "re-run the sweep with --store-dir to produce them"
        )
    tracer = get_tracer()
    with tracer.span("store-merge", parts=len(job_keys)):
        writer = StoreWriter(root, shard_rows=shard_rows)
        for job_key in job_keys:
            with AtomStore(part_dir(root, job_key)) as part:
                for entry in part.snapshots():
                    writer.add_snapshot(
                        entry.key,
                        part.atoms(entry.key),
                        label=entry.label,
                        role=entry.role,
                        year=entry.year,
                        month=entry.month,
                        family=entry.family,
                        feed=entry.feed,
                        report=entry.report,
                    )
            if tracer.enabled:
                tracer.count("store.parts_merged")
        return writer.close()
