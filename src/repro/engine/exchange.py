"""The zero-copy result plane: binary worker→parent result exchange.

On the parallel path, workers historically returned every
:class:`~repro.engine.jobs.QuarterResult` as a ``result_to_payload``
JSON dict pickled across the pool boundary.  This module gives the
engine a second, columnar transport: a worker encodes its result as a
framed RPST segment (:mod:`repro.store.format` — same header, LEB128
varints, native-endian columns, embedded SHA-256) and publishes the
image into a ``multiprocessing.shared_memory`` block or an mmap-able
spool file; the parent attaches, verifies the digest and reconstructs
the result with ``memoryview.cast`` column reads — no JSON decode, no
pickled object graph.

The wire image (``KIND_RESULT``) is::

    header (16B)  | sha256 (32B) | body
    body:
      fixed struct  version, month, family, year, record counts,
                    the eight GeneralStats fields
      columns       formation_shares, formation_shares_no_single and
                    update_pr_full as u32 key + f64 value columns
                    (update_pr_full adds a u8 presence mask for None)
      tail          label, stability, feed, report, incremental via a
                    type-tagged binary value codec (uvarint framed,
                    dict insertion order preserved)

The tagged codec is *type-preserving* — int dict keys stay ints, tuples
round-trip as lists exactly like the JSON codec — so a decoded result
is value-identical to one that crossed the JSON path, which is what the
parity gate in ``benchmarks/run_benchmarks.py`` asserts byte-for-byte.

Transports:

* ``shm`` — the worker creates a named ``SharedMemory`` block (and
  unregisters it from its own ``resource_tracker``: the *parent* owns
  the lifetime and unlinks after claiming); block names embed the
  parent pid so :class:`ResultPlane` can sweep orphans of dead runs.
* ``file`` — the worker atomically writes ``<spool>/<uuid>.seg``; the
  parent mmaps it read-only and deletes it after the claim.

``ResultPlane`` picks ``shm`` when the platform supports it and falls
back to the file spool otherwise; both sides of a run always agree
because the worker only ever sees the parent's :meth:`ResultPlane.spec`.
"""

from __future__ import annotations

import mmap
import os
import struct
import tempfile
import uuid
from array import array
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.intern import ID_TYPECODE
from repro.core.statistics import GeneralStats
from repro.engine.jobs import RESULT_VERSION, QuarterResult
from repro.store.format import (
    KIND_RESULT,
    StoreError,
    check_digested_segment,
    frame_digested_segment,
    read_uvarint,
    write_uvarint,
)

__all__ = [
    "ExchangeError",
    "ResultPlane",
    "decode_cache_entry",
    "decode_result_segment",
    "encode_cache_entry",
    "encode_result_segment",
    "publish_result",
]


class ExchangeError(RuntimeError):
    """A result failed to cross the exchange plane intact."""


# ----------------------------------------------------------------------
# Binary result codec
# ----------------------------------------------------------------------

#: Fixed-width head of the body: version, month, family, pad, year,
#: update_record_count, record_count, then the eight GeneralStats
#: fields in declaration order (five u64 counts, the f64 mean, two
#: u64 tail stats).  Native endianness, like the store's columns.
_FIXED = struct.Struct("=HBB4xdQQ5QdQQ")

_U32 = struct.Struct("=I")
_F64 = struct.Struct("=d")

_KEY_WIDTH = array(ID_TYPECODE).itemsize

#: Value-codec tags (the tail's type-tagged tree encoding).
_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_NEGINT = 4
_T_FLOAT = 5
_T_STR = 6
_T_LIST = 7
_T_MAP = 8


def _encode_value(out: bytearray, value: Any) -> None:
    """Append one tagged value; dicts keep their insertion order."""
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if value >= 0:
            out.append(_T_INT)
            write_uvarint(out, value)
        else:
            out.append(_T_NEGINT)
            write_uvarint(out, -1 - value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_T_STR)
        write_uvarint(out, len(encoded))
        out += encoded
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_T_MAP)
        write_uvarint(out, len(value))
        for key, item in value.items():
            _encode_value(out, key)
            _encode_value(out, item)
    else:
        raise ExchangeError(
            f"result value of type {type(value).__name__} is not encodable"
        )


def _decode_value(view: memoryview, offset: int) -> Tuple[Any, int]:
    """Decode one tagged value; returns ``(value, next offset)``."""
    if offset >= len(view):
        raise StoreError("truncated result value")
    tag = view[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        return read_uvarint(view, offset)
    if tag == _T_NEGINT:
        magnitude, offset = read_uvarint(view, offset)
        return -1 - magnitude, offset
    if tag == _T_FLOAT:
        if offset + _F64.size > len(view):
            raise StoreError("truncated result float")
        return _F64.unpack_from(view, offset)[0], offset + _F64.size
    if tag == _T_STR:
        length, offset = read_uvarint(view, offset)
        if offset + length > len(view):
            raise StoreError("truncated result string")
        return bytes(view[offset:offset + length]).decode("utf-8"), offset + length
    if tag == _T_LIST:
        count, offset = read_uvarint(view, offset)
        items: List[Any] = []
        for _ in range(count):
            item, offset = _decode_value(view, offset)
            items.append(item)
        return items, offset
    if tag == _T_MAP:
        count, offset = read_uvarint(view, offset)
        mapping: Dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _decode_value(view, offset)
            item, offset = _decode_value(view, offset)
            mapping[key] = item
        return mapping, offset
    raise StoreError(f"unknown result value tag {tag}")


def _encode_key_float_columns(
    out: bytearray,
    items: List[Tuple[int, Optional[float]]],
    with_mask: bool,
) -> None:
    """Append one keyed float group: count, u32 keys, [mask], f64 values."""
    out += _U32.pack(len(items))
    try:
        out += array(ID_TYPECODE, [key for key, _ in items]).tobytes()
    except OverflowError as error:
        raise ExchangeError(f"column key out of u32 range: {error}") from None
    if with_mask:
        out += bytes(
            1 if value is not None else 0 for _, value in items
        )
    out += bytes(-len(out) % 8)
    out += array(
        "d", [0.0 if value is None else float(value) for _, value in items]
    ).tobytes()


def _decode_key_float_columns(
    view: memoryview, offset: int, with_mask: bool
) -> Tuple[List[Tuple[int, Optional[float]]], int]:
    """Read one keyed float group via zero-copy ``memoryview.cast``."""
    if offset + _U32.size > len(view):
        raise StoreError("truncated column count")
    count = _U32.unpack_from(view, offset)[0]
    offset += _U32.size
    end = offset + count * _KEY_WIDTH
    if end > len(view):
        raise StoreError("truncated column keys")
    keys = view[offset:end].cast(ID_TYPECODE).tolist() if count else []
    offset = end
    mask: Optional[bytes] = None
    if with_mask:
        if offset + count > len(view):
            raise StoreError("truncated column mask")
        mask = bytes(view[offset:offset + count])
        offset += count
    offset += -offset % 8
    end = offset + count * 8
    if end > len(view):
        raise StoreError("truncated column values")
    values = view[offset:end].cast("d").tolist() if count else []
    items: List[Tuple[int, Optional[float]]] = []
    for position, key in enumerate(keys):
        if mask is not None and not mask[position]:
            items.append((key, None))
        else:
            items.append((key, values[position]))
    return items, end


def encode_result(result: QuarterResult) -> bytes:
    """``QuarterResult`` -> raw body bytes (no framing, no digest)."""
    stats = result.stats
    out = bytearray(
        _FIXED.pack(
            RESULT_VERSION,
            result.month,
            result.family,
            result.year,
            result.update_record_count,
            result.record_count,
            stats.n_prefixes,
            stats.n_ases,
            stats.n_ases_one_atom,
            stats.n_atoms,
            stats.n_single_prefix_atoms,
            stats.mean_atom_size,
            stats.p99_atom_size,
            stats.max_atom_size,
        )
    )
    _encode_key_float_columns(
        out, sorted(result.formation_shares.items()), with_mask=False
    )
    _encode_key_float_columns(
        out, sorted(result.formation_shares_no_single.items()), with_mask=False
    )
    _encode_key_float_columns(
        out, sorted(result.update_pr_full.items()), with_mask=True
    )
    _encode_value(out, result.label)
    _encode_value(out, {k: list(v) for k, v in result.stability.items()})
    _encode_value(out, dict(result.feed))
    _encode_value(out, dict(result.report))
    _encode_value(out, dict(result.incremental))
    return bytes(out)


def decode_result(body) -> QuarterResult:
    """Raw body bytes (or view) -> ``QuarterResult``; raises on damage."""
    view = body if isinstance(body, memoryview) else memoryview(body)
    if len(view) < _FIXED.size:
        raise StoreError("result body shorter than its fixed head")
    (
        version,
        month,
        family,
        year,
        update_record_count,
        record_count,
        n_prefixes,
        n_ases,
        n_ases_one_atom,
        n_atoms,
        n_single_prefix_atoms,
        mean_atom_size,
        p99_atom_size,
        max_atom_size,
    ) = _FIXED.unpack_from(view, 0)
    if version != RESULT_VERSION:
        raise StoreError(f"unsupported result version {version}")
    offset = _FIXED.size
    formation, offset = _decode_key_float_columns(view, offset, with_mask=False)
    formation_ns, offset = _decode_key_float_columns(view, offset, with_mask=False)
    pr_full, offset = _decode_key_float_columns(view, offset, with_mask=True)
    label, offset = _decode_value(view, offset)
    stability, offset = _decode_value(view, offset)
    feed, offset = _decode_value(view, offset)
    report, offset = _decode_value(view, offset)
    incremental, offset = _decode_value(view, offset)
    if offset != len(view):
        raise StoreError("trailing bytes after result body")
    if not isinstance(label, str) or not all(
        isinstance(tree, dict) for tree in (stability, feed, report, incremental)
    ):
        raise StoreError("result tail has the wrong shape")
    return QuarterResult(
        label=label,
        year=year,
        month=month,
        family=family,
        stats=GeneralStats(
            n_prefixes=n_prefixes,
            n_ases=n_ases,
            n_ases_one_atom=n_ases_one_atom,
            n_atoms=n_atoms,
            n_single_prefix_atoms=n_single_prefix_atoms,
            mean_atom_size=mean_atom_size,
            p99_atom_size=p99_atom_size,
            max_atom_size=max_atom_size,
        ),
        formation_shares={key: value for key, value in formation},
        formation_shares_no_single={key: value for key, value in formation_ns},
        stability={key: tuple(value) for key, value in stability.items()},
        feed=feed,
        report=report,
        update_record_count=update_record_count,
        update_pr_full={key: value for key, value in pr_full},
        record_count=record_count,
        incremental=incremental,
    )


def encode_result_segment(result: QuarterResult) -> bytes:
    """A complete, self-verifying result segment image."""
    return frame_digested_segment(KIND_RESULT, encode_result(result))


def decode_result_segment(data) -> QuarterResult:
    """Verify and decode one result segment image (bytes or view)."""
    return decode_result(
        check_digested_segment(data, KIND_RESULT, "result segment")
    )


# ----------------------------------------------------------------------
# Cache sidecar entries
# ----------------------------------------------------------------------

def encode_cache_entry(
    key: str, result: QuarterResult, segment: Optional[bytes] = None
) -> bytes:
    """The binary sidecar image: varint-framed key + result segment.

    The key prefix lets :meth:`ResultCache.get` reject a renamed or
    misplaced sidecar the same way the JSON entry's ``"key"`` field
    does; ``segment`` reuses an already-encoded image when the result
    just crossed the exchange plane.
    """
    encoded_key = key.encode("utf-8")
    out = bytearray()
    write_uvarint(out, len(encoded_key))
    out += encoded_key
    out += segment if segment is not None else encode_result_segment(result)
    return bytes(out)


def decode_cache_entry(data: bytes, key: str) -> QuarterResult:
    """Verify a sidecar image against ``key`` and decode its result."""
    view = memoryview(data)
    length, offset = read_uvarint(view, offset=0)
    if offset + length > len(view):
        raise ExchangeError("cache sidecar truncated inside its key")
    stored = bytes(view[offset:offset + length]).decode("utf-8")
    if stored != key:
        raise ExchangeError(
            f"cache sidecar key mismatch: entry says {stored[:16]}..."
        )
    return decode_result_segment(view[offset + length:])


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------

#: Shared-memory block name prefix; the embedded pid is the *parent*
#: (plane owner), so stale blocks of dead runs are identifiable.
SHM_PREFIX = "repro-xch"

#: Where POSIX shared memory appears as files (Linux); orphan sweeps
#: are skipped entirely on platforms without it.
_SHM_MOUNT = Path("/dev/shm")


def _pid_alive(pid: int) -> bool:
    """Liveness probe mirroring the stream archive's tmp sweep."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def _shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` actually works here."""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=1)
        probe.close()
        probe.unlink()
        return True
    except Exception:
        return False


def _untrack_shm(block) -> None:
    """Detach a block from this process's resource tracker.

    The worker creates the block but the parent owns its lifetime; if
    the tracker kept it registered, worker exit would unlink blocks the
    parent has not claimed yet (and then warn about the double unlink).
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(block, "_name", block.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def publish_result(spec: Dict[str, Any], image: bytes) -> Dict[str, Any]:
    """Worker side: place one segment image on the plane; returns a ref.

    ``spec`` is the parent's :meth:`ResultPlane.spec`; the returned ref
    dict crosses the pool boundary in the batch payload and is redeemed
    exactly once by :meth:`ResultPlane.claim`.
    """
    mode = spec.get("mode")
    if mode == "shm":
        from multiprocessing import shared_memory

        name = f"{SHM_PREFIX}-{spec['owner']}-{uuid.uuid4().hex[:16]}"
        block = shared_memory.SharedMemory(name=name, create=True, size=len(image))
        try:
            block.buf[: len(image)] = image
        finally:
            _untrack_shm(block)
            block.close()
        return {"mode": "shm", "name": name, "bytes": len(image)}
    if mode == "file":
        directory = Path(spec["dir"])
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{uuid.uuid4().hex}.seg"
        tmp = directory / f"{path.name}.tmp{os.getpid()}"
        try:
            tmp.write_bytes(image)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass
        return {"mode": "file", "path": str(path), "bytes": len(image)}
    raise ExchangeError(f"unknown exchange mode {mode!r}")


class ResultPlane:
    """Parent-side manager of the exchange transport.

    Create one per parallel sweep, hand :meth:`spec` to the workers,
    :meth:`claim` each returned ref exactly once, and :meth:`close`
    when the sweep ends (releases the spool directory or sweeps any
    unclaimed shared-memory blocks a failed sweep left behind).
    """

    def __init__(
        self, mode: str = "auto", directory: Optional[os.PathLike] = None
    ):
        if mode not in ("auto", "shm", "file"):
            raise ValueError("exchange mode must be 'auto', 'shm' or 'file'")
        if mode == "auto":
            mode = "shm" if _shm_available() else "file"
        self.mode = mode
        self._owner = os.getpid()
        self._owns_dir = False
        self.directory: Optional[Path] = None
        if mode == "file":
            if directory is None:
                self.directory = Path(
                    tempfile.mkdtemp(prefix="repro-exchange-")
                )
                self._owns_dir = True
            else:
                self.directory = Path(directory)
                self.directory.mkdir(parents=True, exist_ok=True)
        else:
            self._sweep_orphans()

    def spec(self) -> Dict[str, Any]:
        """The picklable transport config workers publish against."""
        return {
            "mode": self.mode,
            "dir": str(self.directory) if self.directory else None,
            "owner": self._owner,
        }

    @contextmanager
    def claim(self, ref: Dict[str, Any]) -> Iterator[memoryview]:
        """Attach one published ref as a zero-copy view, then retire it.

        The view is only valid inside the ``with`` block: on exit the
        backing block is unlinked (shm) or the spool file deleted, so
        callers must finish decoding — or copy — before leaving.
        """
        mode = ref.get("mode")
        size = int(ref.get("bytes", 0))
        if mode == "shm":
            from multiprocessing import shared_memory

            try:
                block = shared_memory.SharedMemory(name=ref["name"])
            except (FileNotFoundError, OSError) as error:
                raise ExchangeError(
                    f"shared result block vanished before claim: {error}"
                ) from error
            view = block.buf[:size]
            try:
                yield view
            finally:
                view.release()
                block.close()
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        elif mode == "file":
            path = Path(ref["path"])
            try:
                with open(path, "rb") as handle:
                    mapped = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
            except (OSError, ValueError) as error:
                raise ExchangeError(
                    f"spooled result vanished before claim: {error}"
                ) from error
            view = memoryview(mapped)[:size]
            try:
                yield view
            finally:
                view.release()
                mapped.close()
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass
        else:
            raise ExchangeError(f"unknown exchange ref mode {mode!r}")

    def close(self) -> None:
        """Release plane resources; safe to call more than once."""
        if self.mode == "file":
            if self._owns_dir and self.directory is not None:
                import shutil

                shutil.rmtree(self.directory, ignore_errors=True)
        else:
            self._sweep_orphans(owned_only=True)

    def __enter__(self) -> "ResultPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _sweep_orphans(self, owned_only: bool = False) -> int:
        """Unlink leftover shared blocks: ours always, dead owners' too.

        A parent killed between publish and claim leaks named blocks in
        ``/dev/shm``; the embedded owner pid makes them attributable, so
        the next plane (or :meth:`close` after a failed sweep) reclaims
        them with the same liveness probe the tmp-file sweeps use.
        """
        removed = 0
        if not _SHM_MOUNT.is_dir():
            return 0
        for path in _SHM_MOUNT.glob(f"{SHM_PREFIX}-*"):
            parts = path.name.split("-")
            if len(parts) < 3 or not parts[2].isdigit():
                continue
            owner = int(parts[2])
            if owned_only:
                if owner != self._owner:
                    continue
            elif owner == self._owner or _pid_alive(owner):
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - best effort
                pass
        return removed
