"""Checkpoint/resume for long sweeps.

A :class:`CheckpointLog` is an append-only JSONL file: one line per
completed job, ``{"key": <digest>, "label": ..., "result": {...}}``.
The scheduler appends (and flushes) a line the moment a job finishes,
so a killed multi-year sweep loses at most the jobs in flight.  On the
next run the engine loads the log, restores every completed quarter
without recomputation, and continues from the first missing one.

A truncated final line — the signature of a hard kill mid-write — is
silently dropped on load; everything before it is preserved.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

from repro.engine.jobs import (
    QuarterResult,
    result_from_payload,
    result_to_payload,
)


class CheckpointLog:
    """Append-only completion log keyed by job digest."""

    def __init__(self, path: os.PathLike):
        self.path = Path(path)

    def load(self) -> Dict[str, QuarterResult]:
        """{job digest: result} for every intact line of the log."""
        restored: Dict[str, QuarterResult] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        restored[entry["key"]] = result_from_payload(
                            entry["result"]
                        )
                    except (ValueError, KeyError, TypeError):
                        # Torn write at the kill instant; keep the rest.
                        continue
        except FileNotFoundError:
            pass
        return restored

    def record(self, key: str, result: QuarterResult) -> None:
        """Append one completed job, durably."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "label": result.label,
            "result": result_to_payload(result),
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> None:
        """Forget all completed jobs (e.g. after a finished sweep)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
