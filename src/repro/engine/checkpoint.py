"""Checkpoint/resume for long sweeps and live streams.

A :class:`CheckpointLog` is an append-only JSONL file: one line per
completed job, ``{"key": <digest>, "label": ..., "result": {...}}``.
The scheduler appends (and flushes) a line the moment a job finishes,
so a killed multi-year sweep loses at most the jobs in flight.  On the
next run the engine loads the log, restores every completed quarter
without recomputation, and continues from the first missing one.

A truncated final line — the signature of a hard kill mid-write — is
silently dropped on load; everything before it is preserved.

:class:`StreamCheckpoint` is the live pipeline's counterpart
(:mod:`repro.stream.live`): instead of appending completed jobs it
replaces one *state* — the window cursor plus the full routing table
at the last window boundary — atomically on every save.  A pipeline
killed at any instant resumes from the last saved boundary: the RIB
file is written (temp + rename) before ``state.json`` is swapped in,
so the state file never references a partial table, and a kill between
the two writes merely leaves the previous state in force.
"""

from __future__ import annotations

import gzip
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.bgp.messages import RouteRecord
from repro.engine.jobs import (
    QuarterResult,
    result_from_payload,
    result_to_payload,
)


class CheckpointLog:
    """Append-only completion log keyed by job digest."""

    def __init__(self, path: os.PathLike):
        self.path = Path(path)

    def load(self) -> Dict[str, QuarterResult]:
        """{job digest: result} for every intact line of the log."""
        restored: Dict[str, QuarterResult] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        restored[entry["key"]] = result_from_payload(
                            entry["result"]
                        )
                    except (ValueError, KeyError, TypeError):
                        # Torn write at the kill instant; keep the rest.
                        continue
        except FileNotFoundError:
            pass
        return restored

    def record(self, key: str, result: QuarterResult) -> None:
        """Append one completed job, durably."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "label": result.label,
            "result": result_to_payload(result),
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> None:
        """Forget all completed jobs (e.g. after a finished sweep)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# Streaming checkpoints
# ----------------------------------------------------------------------

#: Schema version of the stream-checkpoint state file.
STREAM_CHECKPOINT_VERSION = 1

#: Name of the state file inside a stream-checkpoint directory.
STATE_NAME = "state.json"


class StreamCheckpointError(RuntimeError):
    """A checkpoint directory holds state this code cannot resume."""


class StreamCheckpoint:
    """Atomically replaced window-boundary state for a live pipeline.

    Layout under ``directory``::

        state.json          # cursor: window index/end, counters, config
        rib-<index>.jsonl.gz  # full RIB at that boundary, one record/peer

    :meth:`save` writes the RIB file first, then swaps ``state.json``
    in via temp file + ``os.replace`` and finally deletes the previous
    boundary's RIB file — so at every instant the on-disk state file
    references a complete table, and a kill anywhere loses at most the
    window in flight.  :meth:`load` returns None when no checkpoint
    exists and raises :class:`StreamCheckpointError` when the saved
    ``config`` digest disagrees with the resuming pipeline's (resuming
    under a different window size or shard count would silently change
    results).
    """

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)

    # -- paths ----------------------------------------------------------

    def _state_path(self) -> Path:
        return self.directory / STATE_NAME

    def _rib_path(self, window_index: int) -> Path:
        return self.directory / f"rib-{window_index:08d}.jsonl.gz"

    # -- save -----------------------------------------------------------

    def save(
        self,
        window_index: int,
        window_end: int,
        records: List[RouteRecord],
        config: Dict[str, Any],
        counters: Optional[Dict[str, int]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist one window boundary; returns the state-file path.

        ``records`` must reconstruct the boundary RIB when replayed in
        order (one synthetic ``rib`` record per peer is the convention).
        ``config`` is stored verbatim and checked on resume; ``meta``
        carries resume bookkeeping the pipeline owns (replay position,
        vantage points) and is returned untouched.
        """
        # Local import: repro.stream's package init pulls in the live
        # pipeline, which imports this module back — a top-level import
        # here would close that cycle during interpreter start-up.
        from repro.stream.serialize import record_to_json

        self.directory.mkdir(parents=True, exist_ok=True)
        rib_path = self._rib_path(window_index)
        tmp = rib_path.parent / f"{rib_path.name}.tmp{os.getpid()}"
        try:
            with gzip.open(tmp, "wt", encoding="utf-8") as handle:
                for record in records:
                    handle.write(record_to_json(record))
                    handle.write("\n")
            os.replace(tmp, rib_path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass
        state = {
            "version": STREAM_CHECKPOINT_VERSION,
            "window_index": window_index,
            "window_end": window_end,
            "rib_file": rib_path.name,
            "config": config,
            "counters": dict(counters or {}),
            "meta": dict(meta or {}),
        }
        state_path = self._state_path()
        state_tmp = state_path.parent / f"{state_path.name}.tmp{os.getpid()}"
        try:
            state_tmp.write_text(
                json.dumps(state, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(state_tmp, state_path)
        finally:
            if state_tmp.exists():
                try:
                    state_tmp.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass
        self._sweep_stale_ribs(keep=rib_path.name)
        return state_path

    def _sweep_stale_ribs(self, keep: str) -> None:
        """Delete boundary RIB files other than the referenced one."""
        for path in self.directory.glob("rib-*.jsonl.gz"):
            if path.name != keep:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass

    # -- load -----------------------------------------------------------

    def load(
        self, config: Optional[Dict[str, Any]] = None
    ) -> Optional[Tuple[Dict[str, Any], List[RouteRecord]]]:
        """The saved ``(state, boundary records)``, or None when absent.

        When ``config`` is given it must equal the saved one — a
        resumed pipeline must window and shard exactly like the run
        that wrote the checkpoint.
        """
        state_path = self._state_path()
        try:
            raw = state_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            state: Dict[str, Any] = json.loads(raw)
        except ValueError as error:
            raise StreamCheckpointError(
                f"corrupt checkpoint state {state_path}: {error}"
            ) from error
        version = state.get("version")
        if version != STREAM_CHECKPOINT_VERSION:
            raise StreamCheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads v{STREAM_CHECKPOINT_VERSION})"
            )
        if config is not None and state.get("config") != config:
            raise StreamCheckpointError(
                "checkpoint was written under a different live "
                "configuration; resume with the original settings or "
                "start from a fresh --checkpoint-dir"
            )
        rib_path = self.directory / str(state.get("rib_file", ""))
        try:
            records = list(self._read_records(rib_path))
        except (OSError, EOFError, ValueError) as error:
            raise StreamCheckpointError(
                f"cannot read checkpoint RIB {rib_path}: {error}"
            ) from error
        return state, records

    @staticmethod
    def _read_records(path: Path) -> Iterator[RouteRecord]:
        from repro.stream.serialize import record_from_json

        with gzip.open(path, "rt", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield record_from_json(line)

    def clear(self) -> None:
        """Forget the saved state (state file and boundary RIBs)."""
        try:
            self._state_path().unlink()
        except FileNotFoundError:
            pass
        self._sweep_stale_ribs(keep="")
