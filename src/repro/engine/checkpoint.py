"""Checkpoint/resume for long sweeps and live streams.

A :class:`CheckpointLog` is an append-only JSONL file: one line per
completed job, ``{"key": <digest>, "label": ..., "result": {...}}``.
The scheduler appends (and flushes) a line the moment a job finishes,
so a killed multi-year sweep loses at most the jobs in flight.  On the
next run the engine loads the log, restores every completed quarter
without recomputation, and continues from the first missing one.

A truncated final line — the signature of a hard kill mid-write — is
silently dropped on load; everything before it is preserved.

:class:`StreamCheckpoint` is the live pipeline's counterpart
(:mod:`repro.stream.live`): instead of appending completed jobs it
replaces one *state* — the window cursor plus the full routing table
at the last window boundary — atomically on every save.  A pipeline
killed at any instant resumes from the last saved boundary: the RIB
file is written (temp + rename) before ``state.json`` is swapped in,
so the state file never references a partial table, and a kill between
the two writes merely leaves the previous state in force.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import pickle
import struct
import uuid
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.messages import RouteRecord
from repro.engine.jobs import (
    QuarterResult,
    result_from_payload,
    result_to_payload,
)


class CheckpointLog:
    """Append-only completion log keyed by job digest."""

    def __init__(self, path: os.PathLike):
        self.path = Path(path)

    def load(self) -> Dict[str, QuarterResult]:
        """{job digest: result} for every intact line of the log."""
        restored: Dict[str, QuarterResult] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        restored[entry["key"]] = result_from_payload(
                            entry["result"]
                        )
                    except (ValueError, KeyError, TypeError):
                        # Torn write at the kill instant; keep the rest.
                        continue
        except FileNotFoundError:
            pass
        return restored

    def record(self, key: str, result: QuarterResult) -> None:
        """Append one completed job, durably."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "label": result.label,
            "result": result_to_payload(result),
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> None:
        """Forget all completed jobs (e.g. after a finished sweep)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# Streaming checkpoints
# ----------------------------------------------------------------------

#: Schema version of the stream-checkpoint state file.
STREAM_CHECKPOINT_VERSION = 1

#: Name of the state file inside a stream-checkpoint directory.
STATE_NAME = "state.json"


class StreamCheckpointError(RuntimeError):
    """A checkpoint directory holds state this code cannot resume."""


class StreamCheckpoint:
    """Atomically replaced window-boundary state for a live pipeline.

    Layout under ``directory``::

        state.json          # cursor: window index/end, counters, config
        rib-<index>.jsonl.gz  # full RIB at that boundary, one record/peer

    :meth:`save` writes the RIB file first, then swaps ``state.json``
    in via temp file + ``os.replace`` and finally deletes the previous
    boundary's RIB file — so at every instant the on-disk state file
    references a complete table, and a kill anywhere loses at most the
    window in flight.  :meth:`load` returns None when no checkpoint
    exists and raises :class:`StreamCheckpointError` when the saved
    ``config`` digest disagrees with the resuming pipeline's (resuming
    under a different window size or shard count would silently change
    results).
    """

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)

    # -- paths ----------------------------------------------------------

    def _state_path(self) -> Path:
        return self.directory / STATE_NAME

    def _rib_path(self, window_index: int) -> Path:
        return self.directory / f"rib-{window_index:08d}.jsonl.gz"

    # -- save -----------------------------------------------------------

    def save(
        self,
        window_index: int,
        window_end: int,
        records: List[RouteRecord],
        config: Dict[str, Any],
        counters: Optional[Dict[str, int]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist one window boundary; returns the state-file path.

        ``records`` must reconstruct the boundary RIB when replayed in
        order (one synthetic ``rib`` record per peer is the convention).
        ``config`` is stored verbatim and checked on resume; ``meta``
        carries resume bookkeeping the pipeline owns (replay position,
        vantage points) and is returned untouched.
        """
        # Local import: repro.stream's package init pulls in the live
        # pipeline, which imports this module back — a top-level import
        # here would close that cycle during interpreter start-up.
        from repro.stream.serialize import record_to_json

        self.directory.mkdir(parents=True, exist_ok=True)
        rib_path = self._rib_path(window_index)
        tmp = rib_path.parent / f"{rib_path.name}.tmp{os.getpid()}"
        try:
            with gzip.open(tmp, "wt", encoding="utf-8") as handle:
                for record in records:
                    handle.write(record_to_json(record))
                    handle.write("\n")
            os.replace(tmp, rib_path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass
        state = {
            "version": STREAM_CHECKPOINT_VERSION,
            "window_index": window_index,
            "window_end": window_end,
            "rib_file": rib_path.name,
            "config": config,
            "counters": dict(counters or {}),
            "meta": dict(meta or {}),
        }
        state_path = self._state_path()
        state_tmp = state_path.parent / f"{state_path.name}.tmp{os.getpid()}"
        try:
            state_tmp.write_text(
                json.dumps(state, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(state_tmp, state_path)
        finally:
            if state_tmp.exists():
                try:
                    state_tmp.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass
        self._sweep_stale_ribs(keep=rib_path.name)
        return state_path

    def _sweep_stale_ribs(self, keep: str) -> None:
        """Delete boundary RIB files other than the referenced one."""
        for path in self.directory.glob("rib-*.jsonl.gz"):
            if path.name != keep:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass

    # -- load -----------------------------------------------------------

    def load(
        self, config: Optional[Dict[str, Any]] = None
    ) -> Optional[Tuple[Dict[str, Any], List[RouteRecord]]]:
        """The saved ``(state, boundary records)``, or None when absent.

        When ``config`` is given it must equal the saved one — a
        resumed pipeline must window and shard exactly like the run
        that wrote the checkpoint.
        """
        state_path = self._state_path()
        try:
            raw = state_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            state: Dict[str, Any] = json.loads(raw)
        except ValueError as error:
            raise StreamCheckpointError(
                f"corrupt checkpoint state {state_path}: {error}"
            ) from error
        version = state.get("version")
        if version != STREAM_CHECKPOINT_VERSION:
            raise StreamCheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads v{STREAM_CHECKPOINT_VERSION})"
            )
        if config is not None and state.get("config") != config:
            raise StreamCheckpointError(
                "checkpoint was written under a different live "
                "configuration; resume with the original settings or "
                "start from a fresh --checkpoint-dir"
            )
        rib_path = self.directory / str(state.get("rib_file", ""))
        try:
            records = list(self._read_records(rib_path))
        except (OSError, EOFError, ValueError) as error:
            raise StreamCheckpointError(
                f"cannot read checkpoint RIB {rib_path}: {error}"
            ) from error
        return state, records

    @staticmethod
    def _read_records(path: Path) -> Iterator[RouteRecord]:
        from repro.stream.serialize import record_from_json

        with gzip.open(path, "rt", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield record_from_json(line)

    def clear(self) -> None:
        """Forget the saved state (state file and boundary RIBs)."""
        try:
            self._state_path().unlink()
        except FileNotFoundError:
            pass
        self._sweep_stale_ribs(keep="")


# ----------------------------------------------------------------------
# World-lineage checkpoints
# ----------------------------------------------------------------------

#: Magic bytes opening every world-checkpoint file.
WORLD_MAGIC = b"RPWC"

#: World-checkpoint format version; bump on layout or pickle changes.
WORLD_CHECKPOINT_VERSION = 1

#: File header: magic + version, followed by a raw 32-byte SHA-256 of
#: the gzip blob and the blob itself.
WORLD_HEADER = struct.Struct(">4sH")

#: Default save cadence: every N applied ``advance_to`` instants (one
#: quarter's stability suite is four instants).
DEFAULT_WORLD_STRIDE = 4


class WorldCheckpoint:
    """Persisted world states, keyed by (params, birth, cadence) lineage.

    A simulated world's state is a pure function of its
    :class:`~repro.topology.evolution.WorldParams`, its birth instant
    and the exact ``advance_to`` cadence applied since — the invariant
    the engine's per-process world cache already relies on.  This class
    makes that lineage durable: :meth:`save` snapshots a world at its
    applied cadence (atomic tmp+replace, digest-stamped like
    :class:`StreamCheckpoint`), and :meth:`restore` hands a freshly
    forked worker the *nearest* saved prefix of a job's warmup so the
    cold start replays only the gap instead of the whole history.

    File names are fully content-addressed —
    ``world-<lineage16>-<length>-<cadence digest12>.ckpt`` — so lookup
    is an existence probe per candidate prefix length, longest first,
    and concurrent writers of the same lineage are idempotent.  Any
    damage (bad magic, version skew, digest or cadence mismatch,
    unpicklable blob) is treated as a miss: the file is dropped and the
    worker falls back to the next shorter prefix or a from-birth replay.
    """

    def __init__(
        self, directory: os.PathLike, stride: int = DEFAULT_WORLD_STRIDE
    ):
        self.directory = Path(directory)
        self.stride = max(1, int(stride))

    # -- naming ---------------------------------------------------------

    @staticmethod
    def _lineage(params: Any, start: int) -> str:
        from repro.engine.cache import content_digest

        return content_digest(
            {"world": asdict(params), "start": int(start)},
            salt="repro-world-v1",
        )[:16]

    @staticmethod
    def _cadence_digest(cadence: Sequence[int]) -> str:
        packed = b"".join(int(when).to_bytes(8, "big") for when in cadence)
        return hashlib.sha256(packed).hexdigest()[:12]

    def path_for(
        self, params: Any, start: int, cadence: Sequence[int]
    ) -> Path:
        """The content-addressed file for one exact world state."""
        return self.directory / (
            f"world-{self._lineage(params, start)}-{len(cadence):06d}-"
            f"{self._cadence_digest(cadence)}.ckpt"
        )

    # -- save -----------------------------------------------------------

    def save(self, internet: Any, applied: Sequence[int]) -> Optional[Path]:
        """Snapshot a world at its applied cadence; None if it exists.

        The state is deterministic in the lineage, so an existing file
        is necessarily identical — skipping the write makes concurrent
        workers racing on the same boundary cheap and idempotent.
        """
        cadence = tuple(int(when) for when in applied)
        path = self.path_for(internet.params, internet.start, cadence)
        if path.exists():
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = gzip.compress(
            pickle.dumps(
                (cadence, internet), protocol=pickle.HIGHEST_PROTOCOL
            ),
            compresslevel=1,
            mtime=0,
        )
        image = (
            WORLD_HEADER.pack(WORLD_MAGIC, WORLD_CHECKPOINT_VERSION)
            + hashlib.sha256(blob).digest()
            + blob
        )
        # Unique per call: parallel workers may save the same boundary.
        tmp = path.parent / f"{path.name}.tmp{os.getpid()}-{uuid.uuid4().hex}"
        try:
            tmp.write_bytes(image)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass
        return path

    # -- restore --------------------------------------------------------

    def restore(
        self, params: Any, start: int, cadence: Sequence[int]
    ) -> Optional[Tuple[Any, List[int]]]:
        """The saved world at the longest prefix of ``cadence``, or None.

        Returns ``(internet, applied)`` where ``applied`` is the list
        of instants the restored world has already walked — the same
        shape the engine's per-process world cache tracks.
        """
        instants = [int(when) for when in cadence]
        for length in range(len(instants), 0, -1):
            prefix = instants[:length]
            path = self.path_for(params, start, prefix)
            if not path.is_file():
                continue
            internet = self._load(path, tuple(prefix))
            if internet is not None:
                return internet, list(prefix)
        return None

    def _load(self, path: Path, expected_cadence: Tuple[int, ...]) -> Any:
        """Verify + unpickle one file; any damage is a silent miss."""
        try:
            data = path.read_bytes()
            magic, version = WORLD_HEADER.unpack_from(data, 0)
            if magic != WORLD_MAGIC:
                raise ValueError(f"bad world magic {magic!r}")
            if version != WORLD_CHECKPOINT_VERSION:
                raise ValueError(f"unsupported world version {version}")
            offset = WORLD_HEADER.size
            stamp = data[offset:offset + 32]
            blob = data[offset + 32:]
            if hashlib.sha256(blob).digest() != stamp:
                raise ValueError("world checkpoint digest mismatch")
            stored_cadence, internet = pickle.loads(gzip.decompress(blob))
            if tuple(stored_cadence) != expected_cadence:
                raise ValueError("world checkpoint cadence mismatch")
            return internet
        except Exception:
            # A corrupt checkpoint must never fail a sweep — the world
            # is always recomputable.  Drop the file so the next run
            # rewrites it cleanly.
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best effort
                pass
            return None
