"""Engine instrumentation.

The scheduler emits structured events to a list of hooks — plain
callables ``hook(event: str, payload: dict)``.  Events:

* ``sweep_start``  — ``{"jobs": n, "workers": k}``
* ``job_start``    — ``{"index", "label", "key"}`` (computed jobs only)
* ``job_done``     — ``{"index", "label", "key", "source", "seconds",
  "records", "worker", "incremental", "codec", "exchange_bytes"}``
  where ``source`` is one of ``computed``, ``cache``, ``checkpoint``,
  ``incremental`` carries the job's atom-index maintenance counters
  (empty for from-scratch jobs), and ``codec`` says how the result
  crossed the worker boundary (``json`` or ``columnar``, with
  ``exchange_bytes`` the claimed segment size for the latter)
* ``sweep_done``   — ``{"seconds": wall}``

:class:`EngineMetrics` is the standard hook: it aggregates per-job wall
time, cache hit/miss counts, record counts and worker utilization into
a structured dict (:meth:`summary`) consumable by the CLI and the
benchmarks.  :func:`progress_hook` builds a second hook that narrates
the same events as human-readable lines.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TextIO

Hook = Callable[[str, Dict[str, Any]], None]

SOURCE_COMPUTED = "computed"
SOURCE_CACHE = "cache"
SOURCE_CHECKPOINT = "checkpoint"


@dataclass
class JobMetric:
    """Per-job instrumentation record."""

    index: int
    label: str
    key: str
    source: str
    seconds: float = 0.0
    records: int = 0
    worker: Optional[int] = None
    #: atom-index maintenance counters ({} when the job ran from scratch)
    incremental: Dict[str, Any] = field(default_factory=dict)
    #: how the result crossed the worker boundary ("json" or "columnar")
    codec: str = "json"
    #: claimed segment size in bytes (0 for the JSON codec)
    exchange_bytes: int = 0


@dataclass
class EngineMetrics:
    """Aggregating hook: collects every event of one or more sweeps."""

    jobs: List[JobMetric] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0
    _sweep_started: Optional[float] = None

    # -- hook protocol --------------------------------------------------

    def __call__(self, event: str, payload: Dict[str, Any]) -> None:
        if event == "sweep_start":
            self.workers = int(payload.get("workers", 1))
            self._sweep_started = time.perf_counter()
        elif event == "job_done":
            self.jobs.append(
                JobMetric(
                    index=int(payload["index"]),
                    label=str(payload["label"]),
                    key=str(payload["key"]),
                    source=str(payload["source"]),
                    seconds=float(payload.get("seconds", 0.0)),
                    records=int(payload.get("records", 0)),
                    worker=payload.get("worker"),
                    incremental=dict(payload.get("incremental") or {}),
                    codec=str(payload.get("codec", "json")),
                    exchange_bytes=int(payload.get("exchange_bytes", 0)),
                )
            )
        elif event == "sweep_done":
            if self._sweep_started is not None:
                self.wall_seconds += time.perf_counter() - self._sweep_started
                self._sweep_started = None

    # -- aggregates -----------------------------------------------------

    def count(self, source: str) -> int:
        """Number of recorded jobs answered from ``source``."""
        return sum(1 for job in self.jobs if job.source == source)

    @property
    def cache_hits(self) -> int:
        return self.count(SOURCE_CACHE)

    @property
    def cache_misses(self) -> int:
        return self.count(SOURCE_COMPUTED)

    @property
    def hit_rate(self) -> float:
        """Share of jobs answered without recomputation."""
        if not self.jobs:
            return 0.0
        return 1.0 - self.count(SOURCE_COMPUTED) / len(self.jobs)

    def incremental_summary(self) -> Dict[str, Any]:
        """Rollup of atom-index maintenance across jobs that used it.

        Empty dict when no recorded job ran in incremental mode.
        """
        tracked = [job for job in self.jobs if job.incremental]
        if not tracked:
            return {}
        dirty_sizes: List[int] = []
        for job in tracked:
            dirty_sizes.extend(int(n) for n in job.incremental.get("dirty_sizes", []))

        def total(key: str) -> float:
            return sum(float(job.incremental.get(key, 0) or 0) for job in tracked)

        return {
            "jobs": len(tracked),
            "steps": int(total("steps")),
            "incremental_steps": int(total("incremental_steps")),
            "rebuilds": int(total("rebuilds")),
            "key_recomputations": int(total("key_recomputations")),
            "dirty_total": sum(dirty_sizes),
            "dirty_mean": (
                sum(dirty_sizes) / len(dirty_sizes) if dirty_sizes else 0.0
            ),
            "seconds_rebuild": total("seconds_rebuild"),
            "seconds_incremental": total("seconds_incremental"),
        }

    def exchange_summary(self) -> Dict[str, Any]:
        """Rollup of the columnar exchange plane across recorded jobs.

        Empty dict when every result crossed the worker boundary as
        JSON (serial runs, ``--exchange json``, pure cache sweeps).
        """
        columnar = [job for job in self.jobs if job.codec == "columnar"]
        if not columnar:
            return {}
        total = sum(job.exchange_bytes for job in columnar)
        return {
            "columnar_jobs": len(columnar),
            "bytes_claimed": total,
            "mean_segment_bytes": total / len(columnar),
        }

    def worker_summary(self) -> Dict[int, Dict[str, float]]:
        """Per-worker job counts and busy seconds, computed jobs only.

        Cache and checkpoint hits never occupy a worker — they are
        answered at submission — so counting their zero-second entries
        would deflate every per-worker average.
        """
        workers: Dict[int, Dict[str, float]] = {}
        for job in self.jobs:
            if job.source != SOURCE_COMPUTED or job.worker is None:
                continue
            entry = workers.setdefault(
                int(job.worker), {"jobs": 0, "seconds": 0.0}
            )
            entry["jobs"] += 1
            entry["seconds"] += job.seconds
        for entry in workers.values():
            entry["mean_seconds"] = (
                entry["seconds"] / entry["jobs"] if entry["jobs"] else 0.0
            )
        return workers

    def summary(self) -> Dict[str, Any]:
        """The structured rollup (CLI ``--progress`` epilogue, benches).

        Utilization and per-job averages cover *computed* jobs only:
        cache/checkpoint hits carry ``seconds == 0`` and would otherwise
        drag the averages toward zero without representing any worker
        time (the sweep never scheduled them).
        """
        computed_jobs = [
            job for job in self.jobs if job.source == SOURCE_COMPUTED
        ]
        busy = sum(job.seconds for job in computed_jobs)
        utilization = (
            busy / (self.wall_seconds * self.workers)
            if self.wall_seconds > 0 and self.workers > 0
            else 0.0
        )
        return {
            "jobs": len(self.jobs),
            "computed": self.count(SOURCE_COMPUTED),
            "cache_hits": self.cache_hits,
            "checkpoint_hits": self.count(SOURCE_CHECKPOINT),
            "hit_rate": self.hit_rate,
            "records": sum(job.records for job in self.jobs),
            "busy_seconds": busy,
            "mean_job_seconds": (
                busy / len(computed_jobs) if computed_jobs else 0.0
            ),
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "worker_utilization": min(1.0, utilization),
            "per_worker": self.worker_summary(),
            "incremental": self.incremental_summary(),
            "exchange": self.exchange_summary(),
        }

    def render(self) -> str:
        """One-line human rendering of :meth:`summary`."""
        s = self.summary()
        line = (
            f"{s['jobs']} jobs: {s['computed']} computed, "
            f"{s['cache_hits']} cache hits, "
            f"{s['checkpoint_hits']} resumed "
            f"({s['hit_rate']:.0%} reuse) | "
            f"{s['records']:,} records | "
            f"wall {s['wall_seconds']:.2f}s, busy {s['busy_seconds']:.2f}s, "
            f"{s['workers']} worker(s) at {s['worker_utilization']:.0%}"
        )
        inc = s["incremental"]
        if inc:
            line += (
                f" | incremental: {inc['incremental_steps']}/{inc['steps']} "
                f"steps, {inc['rebuilds']} rebuild(s), "
                f"{inc['key_recomputations']:,} key recomputes, "
                f"mean dirty set {inc['dirty_mean']:.1f}"
            )
        xch = s["exchange"]
        if xch:
            line += (
                f" | exchange: {xch['columnar_jobs']} columnar job(s), "
                f"{xch['bytes_claimed']:,} bytes "
                f"(mean {xch['mean_segment_bytes']:,.0f})"
            )
        return line


def progress_hook(stream: Optional[TextIO] = None) -> Hook:
    """A hook that narrates engine events as lines on ``stream``."""
    out = stream if stream is not None else sys.stderr

    def hook(event: str, payload: Dict[str, Any]) -> None:
        if event == "sweep_start":
            print(
                f"[engine] {payload['jobs']} job(s) on "
                f"{payload['workers']} worker(s)",
                file=out,
            )
        elif event == "job_done":
            seconds = payload.get("seconds") or 0.0
            print(
                f"[engine] {payload['label']}: {payload['source']} "
                f"({seconds:.2f}s, {payload.get('records', 0):,} records)",
                file=out,
            )
        elif event == "sweep_done":
            print(f"[engine] sweep done in {payload['seconds']:.2f}s", file=out)

    return hook
