"""Content-addressed result cache.

Every :class:`~repro.engine.jobs.SnapshotJob` has a stable digest over
its full content — world params, birth instant, warmup cadence,
snapshot instants, family, sanitization config and the analysis flags —
salted with a code-version string.  Two jobs with the same digest are
guaranteed to compute the same :class:`QuarterResult` (the simulator is
deterministic in exactly those inputs), so repeated sweeps can skip
recomputation entirely.

Entries are one JSON file each under ``<root>/<aa>/<digest>.json``,
written atomically (temp file + ``os.replace``).  A corrupted or
version-skewed entry is treated as a miss, deleted, and recomputed —
never crashed on.

A cache built with ``binary=True`` additionally persists each result's
framed binary segment (:mod:`repro.engine.exchange`) as a ``.seg``
sidecar next to the JSON entry; :meth:`ResultCache.get` prefers the
sidecar whenever one exists — warm hits skip the JSON decode — and
falls back to the JSON entry when the sidecar's digest or key check
fails.  The JSON entry is always written, so binary and plain caches
interoperate on the same directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Any, Optional

from repro.engine.jobs import (
    QuarterResult,
    SnapshotJob,
    result_from_payload,
    result_to_payload,
)
from repro.obs import get_tracer

#: Bump whenever atom computation, sanitization, or the simulator
#: change semantics: old cache entries silently become unreachable.
#: v2: job spec gained the ``incremental`` component and results carry
#: incremental-maintenance counters.
#: v3: the canonical form tags node and dict-key types, so ``{1: x}``
#: vs ``{"1": x}`` and dicts vs literal pair lists no longer collide.
CACHE_SALT = "repro-engine-v3"


def _canonical(value: Any) -> Any:
    """Normalize nested containers so json.dumps is digest-stable.

    The encoding must be *injective* over distinct job specs, not just
    stable: every container is tagged with its node type ("map"/"seq")
    and every dict key with its Python type, so a canonicalized dict
    can never collide with a literal list of pairs and ``{1: x}`` /
    ``{"1": x}`` produce different digests.  Keys sort by their
    ``[type name, str(key)]`` form, which keeps mixed-type key sets
    (e.g. the per-family ``max_prefix_length`` ints) orderable.
    """
    if isinstance(value, dict):
        return [
            "map",
            sorted(
                ([type(k).__name__, str(k)], _canonical(v))
                for k, v in value.items()
            ),
        ]
    if isinstance(value, (list, tuple)):
        return ["seq", [_canonical(v) for v in value]]
    return value


def content_digest(payload: Any, salt: str = CACHE_SALT) -> str:
    """Stable hex digest of any JSON-able payload under ``salt``.

    The content-addressing primitive behind :func:`job_digest` and the
    ``repro.serve`` response cache: equal payloads (up to dict ordering
    and tuple/list spelling) digest identically, distinct payloads
    never collide (see :func:`_canonical`).
    """
    body = {"salt": salt, "body": _canonical(payload)}
    encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def job_digest(job: SnapshotJob, salt: str = CACHE_SALT) -> str:
    """Stable hex digest identifying a job's full computation content."""
    return content_digest({"spec": job.spec()}, salt=salt)


class ResultCache:
    """Persist job results on disk, keyed by :func:`job_digest`.

    ``binary=True`` adds a framed binary ``.seg`` sidecar per entry
    (written on :meth:`put`, preferred on :meth:`get`); the JSON entry
    remains authoritative and is always written.
    """

    def __init__(self, root: os.PathLike, binary: bool = False):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.binary = binary

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _binary_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.seg"

    def get(self, key: str) -> Optional[QuarterResult]:
        """The cached result, or None on miss *or* corruption.

        A binary sidecar, when present, is decoded first (digest- and
        key-checked); on any mismatch it is dropped and the JSON entry
        answers instead — regardless of this cache's ``binary`` flag,
        so a plain cache still benefits from sidecars a columnar run
        left behind.
        """
        sidecar = self._binary_path(key)
        if sidecar.exists():
            from repro.engine.exchange import decode_cache_entry

            try:
                result = decode_cache_entry(sidecar.read_bytes(), key)
            except (ValueError, KeyError, TypeError, OSError, RuntimeError):
                # Digest mismatch, truncation, key mismatch: drop the
                # sidecar and fall back to the JSON entry.
                try:
                    sidecar.unlink()
                except OSError:
                    pass
            else:
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.count("exchange.cache_binary_hits")
                return result
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("key") != key:
                raise ValueError("cache entry key mismatch")
            return result_from_payload(payload["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Truncated write, stale format, bit rot: discard and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(
        self,
        key: str,
        result: QuarterResult,
        segment: Optional[bytes] = None,
    ) -> Path:
        """Atomically persist one result.

        ``segment`` (an already-encoded result segment image, e.g. the
        one just claimed off the exchange plane) seeds the binary
        sidecar without re-encoding; ignored unless ``binary=True``.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "result": result_to_payload(result)}
        # The suffix must be unique per *call*, not per process: two
        # threads (or a re-entrant batch) writing the same key would
        # otherwise share a tmp path, and one writer could truncate the
        # file out from under the other's os.replace, persisting a
        # corrupt entry.
        tmp = path.parent / f"{path.name}.tmp{os.getpid()}-{uuid.uuid4().hex}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        if self.binary:
            from repro.engine.exchange import encode_cache_entry

            sidecar = self._binary_path(key)
            entry = encode_cache_entry(key, result, segment)
            side_tmp = sidecar.parent / (
                f"{sidecar.name}.tmp{os.getpid()}-{uuid.uuid4().hex}"
            )
            try:
                side_tmp.write_bytes(entry)
                os.replace(side_tmp, sidecar)
            finally:
                if side_tmp.exists():
                    try:
                        side_tmp.unlink()
                    except OSError:
                        pass
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
