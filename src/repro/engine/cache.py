"""Content-addressed result cache.

Every :class:`~repro.engine.jobs.SnapshotJob` has a stable digest over
its full content — world params, birth instant, warmup cadence,
snapshot instants, family, sanitization config and the analysis flags —
salted with a code-version string.  Two jobs with the same digest are
guaranteed to compute the same :class:`QuarterResult` (the simulator is
deterministic in exactly those inputs), so repeated sweeps can skip
recomputation entirely.

Entries are one JSON file each under ``<root>/<aa>/<digest>.json``,
written atomically (temp file + ``os.replace``).  A corrupted or
version-skewed entry is treated as a miss, deleted, and recomputed —
never crashed on.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from repro.engine.jobs import (
    QuarterResult,
    SnapshotJob,
    result_from_payload,
    result_to_payload,
)

#: Bump whenever atom computation, sanitization, or the simulator
#: change semantics: old cache entries silently become unreachable.
#: v2: job spec gained the ``incremental`` component and results carry
#: incremental-maintenance counters.
CACHE_SALT = "repro-engine-v2"


def _canonical(value):
    """Normalize nested containers so json.dumps is digest-stable."""
    if isinstance(value, dict):
        return sorted((str(k), _canonical(v)) for k, v in value.items())
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def job_digest(job: SnapshotJob, salt: str = CACHE_SALT) -> str:
    """Stable hex digest identifying a job's full computation content."""
    payload = {"salt": salt, "spec": _canonical(job.spec())}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class ResultCache:
    """Persist job results on disk, keyed by :func:`job_digest`."""

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[QuarterResult]:
        """The cached result, or None on miss *or* corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("key") != key:
                raise ValueError("cache entry key mismatch")
            return result_from_payload(payload["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Truncated write, stale format, bit rot: discard and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, result: QuarterResult) -> Path:
        """Atomically persist one result."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "result": result_to_payload(result)}
        tmp = path.parent / f"{path.name}.tmp{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
