"""Snapshot-level job specifications and the worker entry point.

A :class:`SnapshotJob` is a self-contained, picklable description of
one quarter's atom computation: the world recipe (params + birth
instant), the ``advance_to`` cadence that precedes the quarter, the
quarter's own snapshot instants, and the analysis flags.  A worker —
in-process for serial runs, a ``ProcessPoolExecutor`` child for
parallel ones — can therefore rebuild the exact world state the serial
study would have had, because world evolution is deterministic for a
fixed (seed, cadence) and rendering never mutates the world.

Workers keep a per-process world cache keyed by lineage (params +
birth instant).  When a worker receives jobs in chronological order —
the scheduler submits them that way — each job only advances the
cached world through the *gap* since the previous job instead of
replaying twenty years from scratch.

The result of a job is a :class:`QuarterResult`: the small, serializable
summary derived from the heavyweight ``AtomComputation`` (Table-1
stats, formation shares, stability pairs, feed summary, sanitization
report headline).  This is what the cache and checkpoint layers
persist.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.sanitize import SanitizationConfig
from repro.core.statistics import GeneralStats
from repro.net.prefix import AF_INET
from repro.obs import get_tracer
from repro.topology.evolution import WorldParams
from repro.util.dates import utc_timestamp

#: Serialization format version; bump together with cache.CACHE_SALT.
RESULT_VERSION = 1


def suite_times(year: int, month: int, with_stability: bool) -> Tuple[int, ...]:
    """The ``advance_to`` instants one quarter's suite walks through.

    Mirrors :data:`repro.analysis.longitudinal.SNAPSHOT_OFFSETS`: the
    base snapshot always, plus the three stability comparison snapshots
    when requested.
    """
    from repro.analysis.longitudinal import SNAPSHOT_OFFSETS

    offsets = SNAPSHOT_OFFSETS if with_stability else SNAPSHOT_OFFSETS[:1]
    return tuple(utc_timestamp(year, month, day, hour) for day, hour in offsets)


@dataclass(frozen=True)
class SnapshotJob:
    """One quarter's atom computation, as a self-contained work unit."""

    params: WorldParams
    #: world birth instant (epoch seconds)
    start: int
    #: ``advance_to`` cadence of every earlier quarter in the sweep
    warmup: Tuple[int, ...]
    #: this quarter's own snapshot instants (base first)
    times: Tuple[int, ...]
    family: int = AF_INET
    sanitization: Optional[SanitizationConfig] = None
    with_updates: bool = False
    update_hours: float = 4.0
    #: maintain atoms across the quarter's instants incrementally
    #: (AtomIndex) instead of recomputing each snapshot from scratch
    incremental: bool = False
    #: display label, e.g. ``"2004-01"``
    label: str = ""
    #: calendar position of the quarter
    calendar_year: int = 0
    month: int = 1
    #: reporting x-coordinate (fractional for quarterly sweeps)
    report_year: float = 0.0
    #: atom-store sink: workers persist this job's snapshots as a
    #: self-contained part under ``<store_dir>/parts/<job digest>``.
    #: Deliberately NOT part of :meth:`spec`: where columns land on
    #: disk does not change what is computed, so cache keys stay
    #: stable whether or not a sweep persists a store.
    store_dir: Optional[str] = None
    #: world-lineage checkpoint directory: workers restore the nearest
    #: saved warmup prefix instead of replaying from birth, and save
    #: new boundaries as they pass them.  Like ``store_dir``, excluded
    #: from :meth:`spec` — checkpoints change how fast a world state is
    #: reached, never which state.
    world_checkpoint_dir: Optional[str] = None
    #: save a world snapshot every N applied ``advance_to`` instants
    world_checkpoint_stride: int = 4

    @property
    def with_stability(self) -> bool:
        return len(self.times) > 1

    @property
    def cadence(self) -> Tuple[int, ...]:
        """Full ``advance_to`` sequence this job requires."""
        return self.warmup + self.times

    def spec(self) -> Dict[str, Any]:
        """Canonical content dict (the cache-key payload)."""
        return {
            "params": asdict(self.params),
            "start": self.start,
            "warmup": list(self.warmup),
            "times": list(self.times),
            "family": self.family,
            "sanitization": (
                None if self.sanitization is None else asdict(self.sanitization)
            ),
            "with_updates": self.with_updates,
            "update_hours": self.update_hours,
            # Keyed although results are value-identical either way:
            # the modes exercise different code paths, and a poisoned
            # cache must never mask a divergence between them.
            "incremental": self.incremental,
        }


@dataclass
class QuarterResult:
    """The persisted summary of one executed :class:`SnapshotJob`."""

    label: str
    year: float
    month: int
    family: int
    stats: GeneralStats
    formation_shares: Dict[int, float]
    formation_shares_no_single: Dict[int, float]
    stability: Dict[str, Tuple[float, float]]
    feed: Dict[str, Any]
    #: sanitization report headline (cmd_atoms output, Table 5 input)
    report: Dict[str, Any] = field(default_factory=dict)
    update_record_count: int = 0
    #: Pr_full(k) atom curve of the update stream, when computed
    update_pr_full: Dict[int, Optional[float]] = field(default_factory=dict)
    #: raw route records consumed (metrics input)
    record_count: int = 0
    #: incremental-maintenance counters (empty for from-scratch runs)
    incremental: Dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# JSON round-trip (cache + checkpoint storage format)
# ----------------------------------------------------------------------

def result_to_payload(result: QuarterResult) -> Dict[str, Any]:
    """``QuarterResult`` -> JSON-safe dict."""
    return {
        "version": RESULT_VERSION,
        "label": result.label,
        "year": result.year,
        "month": result.month,
        "family": result.family,
        "stats": asdict(result.stats),
        "formation_shares": sorted(result.formation_shares.items()),
        "formation_shares_no_single": sorted(
            result.formation_shares_no_single.items()
        ),
        "stability": {k: list(v) for k, v in result.stability.items()},
        "feed": dict(result.feed),
        "report": dict(result.report),
        "update_record_count": result.update_record_count,
        "update_pr_full": sorted(result.update_pr_full.items()),
        "record_count": result.record_count,
        "incremental": dict(result.incremental),
    }


def result_from_payload(payload: Dict[str, Any]) -> QuarterResult:
    """JSON dict -> ``QuarterResult``; raises on malformed payloads."""
    if payload.get("version") != RESULT_VERSION:
        raise ValueError(f"unsupported result version {payload.get('version')!r}")
    report = dict(payload.get("report", {}))
    if "removed_peers" in report:
        report["removed_peers"] = {
            int(asn): reason for asn, reason in report["removed_peers"].items()
        }
    return QuarterResult(
        label=payload["label"],
        year=payload["year"],
        month=payload["month"],
        family=payload["family"],
        stats=GeneralStats(**payload["stats"]),
        formation_shares={int(k): v for k, v in payload["formation_shares"]},
        formation_shares_no_single={
            int(k): v for k, v in payload["formation_shares_no_single"]
        },
        stability={k: tuple(v) for k, v in payload["stability"].items()},
        feed=dict(payload["feed"]),
        report=report,
        update_record_count=payload["update_record_count"],
        update_pr_full={int(k): v for k, v in payload["update_pr_full"]},
        record_count=payload["record_count"],
        incremental=dict(payload.get("incremental", {})),
    )


# ----------------------------------------------------------------------
# Worker execution
# ----------------------------------------------------------------------

#: Per-process world cache: lineage -> [SimulatedInternet, applied cadence].
#: Lives at module scope so pool workers (and the serial in-process
#: path) amortize world evolution across chronologically ordered jobs.
_WORLDS: Dict[Tuple, List] = {}


def _lineage_key(job: SnapshotJob) -> Tuple:
    # WorldParams holds only scalars, so its item tuple is hashable.
    return (tuple(sorted(asdict(job.params).items())), job.start)


def clear_worker_state() -> None:
    """Drop cached worlds (tests, or to bound worker memory)."""
    _WORLDS.clear()


def _world_for(job: SnapshotJob):
    """A simulator whose applied cadence is a prefix of the job's.

    Reuses the process-cached world when the job continues its
    timeline; otherwise restores the nearest world-lineage checkpoint
    (when the job carries a checkpoint directory) and only as a last
    resort rebuilds from birth (time only moves forward, so a world
    past the job's warmup cannot be rewound).
    """
    from repro.simulation.scenario import SimulatedInternet

    key = _lineage_key(job)
    cadence = list(job.cadence)
    entry = _WORLDS.get(key)
    if entry is not None:
        internet, applied = entry
        if len(applied) <= len(job.warmup) and applied == cadence[: len(applied)]:
            return internet, applied
    if job.world_checkpoint_dir is not None and job.warmup:
        from repro.engine.checkpoint import WorldCheckpoint

        checkpoint = WorldCheckpoint(
            job.world_checkpoint_dir, job.world_checkpoint_stride
        )
        restored = checkpoint.restore(job.params, job.start, job.warmup)
        tracer = get_tracer()
        if restored is not None:
            internet, applied = restored
            _WORLDS[key] = [internet, applied]
            if tracer.enabled:
                tracer.count("exchange.world_restores")
                tracer.count("exchange.world_restored_instants", len(applied))
            return internet, applied
        if tracer.enabled:
            tracer.count("exchange.world_restore_misses")
    internet = SimulatedInternet(job.params, start=job.start)
    entry = [internet, []]
    _WORLDS[key] = entry
    return entry[0], entry[1]


def _maybe_checkpoint_world(job: SnapshotJob, internet, applied) -> None:
    """Save the world when the job ends exactly on a stride boundary.

    The applied cadence fully determines the state, so the save is
    skipped (inside :meth:`WorldCheckpoint.save`) when another worker
    already wrote the same boundary.  I/O failures are swallowed: a
    full disk slows the next cold start, it must not fail this job.
    """
    from repro.engine.checkpoint import WorldCheckpoint

    stride = max(1, job.world_checkpoint_stride)
    if len(applied) % stride:
        return
    checkpoint = WorldCheckpoint(job.world_checkpoint_dir, stride)
    try:
        path = checkpoint.save(internet, applied)
    except OSError:  # pragma: no cover - disk trouble
        return
    if path is not None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("exchange.world_saves")


def execute_snapshot_job(job: SnapshotJob) -> QuarterResult:
    """Run one job to completion in the current process."""
    from repro.analysis.longitudinal import LongitudinalStudy, SnapshotSuite

    internet, applied = _world_for(job)
    for when in job.warmup[len(applied):]:
        internet.advance_to(when)
        applied.append(when)
    study = LongitudinalStudy(
        internet,
        family=job.family,
        sanitization=job.sanitization,
        incremental=job.incremental,
    )
    if job.calendar_year:
        suite = study.snapshot_suite(
            job.calendar_year,
            job.month,
            with_stability=job.with_stability,
            with_updates=job.with_updates,
            update_hours=job.update_hours,
        )
    else:
        # Ad-hoc instant (``repro atoms``): one base snapshot at an
        # arbitrary timestamp, outside the paper's quarter cadence.
        if job.incremental:
            base, _ = study._compute_incremental(job.times[0])
        else:
            base = study._compute(job.times[0])
        suite = SnapshotSuite(
            year=0,
            month=job.month,
            family=job.family,
            base=base,
        )
        if job.incremental and study._index is not None:
            suite.incremental_stats = study._index.stats.as_dict()
    applied.extend(job.times)
    if job.world_checkpoint_dir is not None:
        _maybe_checkpoint_world(job, internet, applied)
    if job.store_dir is not None:
        persist_suite_part(job, suite)
    return summarize_suite(job, suite)


def persist_suite_part(job: SnapshotJob, suite) -> None:
    """Write the job's snapshots as an atom-store part.

    Every computed :class:`~repro.core.atoms.AtomSet` of the suite
    (base plus whichever stability snapshots exist) lands under
    ``<store_dir>/parts/<job digest>``, alongside the feed summary and
    sanitization headline the trend series need but columns cannot
    carry.  The part key is the job digest, so a re-run overwrites
    nothing: an already complete part short-circuits inside
    :func:`repro.store.writer.write_part`.
    """
    from repro.engine.cache import job_digest
    from repro.store.writer import write_part

    report = suite.base.report
    headline = {
        "fullfeed_peers": report.fullfeed_peers,
        "partial_peers": report.partial_peers,
        "removed_peers": dict(report.removed_peers),
        "prefixes_total": report.prefixes_total,
        "prefixes_kept": report.prefixes_kept,
    }
    label = job.label or f"t{job.times[0]}"
    computations = [("base", suite.base)]
    computations.extend(
        (role, computation)
        for role, computation in (
            ("8h", suite.after_8h),
            ("24h", suite.after_24h),
            ("1w", suite.after_week),
        )
        if computation is not None
    )
    snapshots = [
        {
            "key": f"{label}:{role}",
            "atoms": computation.atoms,
            "label": label,
            "role": role,
            "year": job.report_year,
            "month": job.month,
            "family": job.family,
            "feed": suite.feed() if role == "base" else None,
            "report": headline if role == "base" else None,
        }
        for role, computation in computations
    ]
    write_part(job.store_dir, job_digest(job), snapshots)


def execute_snapshot_batch(
    jobs: Sequence[SnapshotJob],
    exchange: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Pool entry point: run a chronological chunk of jobs as one task.

    Batching amortizes pool overhead two ways: the chunk's jobs share
    this worker's cached world lineage back to back (no other task can
    interleave and reset it), and each result crosses the process
    boundary compactly — by default as its :func:`result_to_payload`
    dict (the JSON codec the cache persists), or, when ``exchange``
    carries a :meth:`~repro.engine.exchange.ResultPlane.spec`, as a
    published binary segment whose ref the parent redeems zero-copy.
    Per-job wall times are measured here, worker-side, so the scheduler
    can report them exactly as the unbatched path did.
    """
    items: List[Dict[str, Any]] = []
    for job in jobs:
        started = time.perf_counter()
        result = execute_snapshot_job(job)
        if exchange is not None:
            from repro.engine.exchange import (
                encode_result_segment,
                publish_result,
            )

            ref = publish_result(exchange, encode_result_segment(result))
            items.append(
                {"ref": ref, "seconds": time.perf_counter() - started}
            )
        else:
            items.append(
                {
                    "payload": result_to_payload(result),
                    "seconds": time.perf_counter() - started,
                }
            )
    return {"worker": os.getpid(), "items": items}


def summarize_suite(job: SnapshotJob, suite) -> QuarterResult:
    """Reduce a :class:`SnapshotSuite` to its persistable summary."""
    formation = suite.formation()
    report = suite.base.report
    pr_full: Dict[int, Optional[float]] = {}
    if suite.updates is not None:
        pr_full = dict(suite.updates.curve("atom"))
    return QuarterResult(
        label=job.label,
        year=job.report_year,
        month=job.month,
        family=job.family,
        stats=suite.stats(),
        formation_shares=formation.distance_shares(),
        formation_shares_no_single=formation.shares_excluding_single_origins(
            suite.atoms
        ),
        stability=suite.stability(),
        feed=suite.feed(),
        report={
            "fullfeed_peers": report.fullfeed_peers,
            "partial_peers": report.partial_peers,
            "removed_peers": dict(report.removed_peers),
            "prefixes_total": report.prefixes_total,
            "prefixes_kept": report.prefixes_kept,
        },
        update_record_count=suite.update_record_count,
        update_pr_full=pr_full,
        record_count=sum(audit.records for audit in report.audits.values()),
        incremental=dict(getattr(suite, "incremental_stats", {}) or {}),
    )


def build_jobs(
    params: WorldParams,
    start: int,
    quarters: Sequence[Tuple[int, int, float]],
    family: int = AF_INET,
    sanitization: Optional[SanitizationConfig] = None,
    with_stability: bool = True,
    with_updates: bool = False,
    update_hours: float = 4.0,
    incremental: bool = False,
    store_dir: Optional[str] = None,
    world_checkpoint_dir: Optional[str] = None,
    world_checkpoint_stride: int = 4,
) -> List[SnapshotJob]:
    """The job graph of a sweep.

    ``quarters`` is an ordered sequence of (calendar year, month,
    reporting year).  Each job's warmup is the concatenated cadence of
    every earlier quarter, so any job alone reproduces the world state
    of a serial chronological run.  ``store_dir`` makes every job
    persist its snapshots as an atom-store part there;
    ``world_checkpoint_dir`` lets workers restore/save world-lineage
    checkpoints instead of replaying warmups from birth.
    """
    jobs: List[SnapshotJob] = []
    warmup: List[int] = []
    for calendar_year, month, report_year in quarters:
        times = suite_times(calendar_year, month, with_stability)
        jobs.append(
            SnapshotJob(
                params=params,
                start=start,
                warmup=tuple(warmup),
                times=times,
                family=family,
                sanitization=sanitization,
                with_updates=with_updates,
                update_hours=update_hours,
                incremental=incremental,
                label=f"{calendar_year}-{month:02d}",
                calendar_year=calendar_year,
                month=month,
                report_year=report_year,
                store_dir=store_dir,
                world_checkpoint_dir=world_checkpoint_dir,
                world_checkpoint_stride=world_checkpoint_stride,
            )
        )
        warmup.extend(times)
    return jobs
