"""The execution engine: fan snapshot jobs out, deterministically.

:class:`ExecutionEngine` is the single entry point the CLI, the
longitudinal study and the benchmarks submit work to.  ``run`` takes an
ordered sequence of :class:`SnapshotJob` and returns their
:class:`QuarterResult` in exactly that order, regardless of worker
count:

* ``jobs=1`` (the default) executes inline in the current process —
  consecutive jobs share the worker-side world cache, so a serial
  sweep keeps the chronological-walk economy of the old code path;
* ``jobs=N`` fans the uncached jobs out over a
  ``ProcessPoolExecutor``; each worker process keeps its own world
  lineage cache, and because jobs are submitted in chronological order
  every worker advances its world monotonically instead of replaying
  from scratch per job.

Results are identical between the two modes because world evolution is
deterministic in (seed, advance cadence) and record rendering never
mutates the world — each job carries its full cadence, so any process
can reproduce the exact world state the serial walk would have had.

Layered on top: the content-addressed :class:`ResultCache` (skip
recomputation across runs), the :class:`CheckpointLog` (resume a killed
sweep), instrumentation hooks (:mod:`repro.engine.metrics`), the
zero-copy result plane (``exchange="columnar"`` moves worker results
as framed binary segments through shared memory instead of pickled
JSON dicts — :mod:`repro.engine.exchange`), and world-lineage
checkpoints (``world_checkpoint_dir`` lets freshly forked workers
resume world evolution from the nearest saved prefix instead of
replaying from birth — :class:`repro.engine.checkpoint.WorldCheckpoint`).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.cache import ResultCache, job_digest
from repro.engine.checkpoint import CheckpointLog
from repro.engine.exchange import ResultPlane, decode_result_segment
from repro.engine.jobs import (
    QuarterResult,
    SnapshotJob,
    execute_snapshot_batch,
    execute_snapshot_job,
    result_from_payload,
)
from repro.engine.metrics import (
    SOURCE_CACHE,
    SOURCE_CHECKPOINT,
    SOURCE_COMPUTED,
    EngineMetrics,
    Hook,
)
from repro.obs import get_tracer
from repro.store.writer import part_complete


class EngineError(RuntimeError):
    """A sweep failed to produce a result for every submitted job."""


class ExecutionEngine:
    """Parallel, cached, resumable executor for snapshot jobs."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        checkpoint: Optional[CheckpointLog] = None,
        hooks: Sequence[Hook] = (),
        metrics: Optional[EngineMetrics] = None,
        batch: int = 1,
        exchange: str = "json",
        exchange_dir: Optional[os.PathLike] = None,
        world_checkpoint_dir: Optional[os.PathLike] = None,
        world_checkpoint_stride: int = 4,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if exchange not in ("json", "columnar"):
            raise ValueError("exchange must be 'json' or 'columnar'")
        self.jobs = jobs
        #: jobs per pool task on the parallel path; >1 amortizes task
        #: pickling/IPC over chronological chunks (serial runs ignore it)
        self.batch = batch
        #: worker→parent result transport on the parallel path:
        #: ``json`` round-trips payload dicts through pickle (the
        #: compatibility path), ``columnar`` publishes framed binary
        #: segments through shared memory / an mmap spool and the
        #: parent reconstructs zero-copy (repro.engine.exchange)
        self.exchange = exchange
        #: forces the columnar transport onto a file spool there
        #: (None lets the plane pick shared memory when available)
        self.exchange_dir = exchange_dir
        #: world-lineage checkpoint directory stamped onto every job
        #: that does not already carry one (repro.engine.checkpoint)
        self.world_checkpoint_dir = world_checkpoint_dir
        self.world_checkpoint_stride = world_checkpoint_stride
        self.cache = cache
        self.checkpoint = checkpoint
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self._hooks: List[Hook] = [self.metrics, *hooks]

    # ------------------------------------------------------------------

    def _emit(self, event: str, payload: Dict[str, Any]) -> None:
        for hook in self._hooks:
            hook(event, payload)

    def _finish(
        self,
        index: int,
        job: SnapshotJob,
        key: str,
        result: QuarterResult,
        source: str,
        seconds: float = 0.0,
        worker: Optional[int] = None,
        codec: str = "json",
        exchange_bytes: int = 0,
        segment: Optional[bytes] = None,
    ) -> None:
        if source == SOURCE_COMPUTED:
            if self.cache is not None:
                self.cache.put(key, result, segment=segment)
            if self.checkpoint is not None:
                self.checkpoint.record(key, result)
        elif source == SOURCE_CACHE and self.checkpoint is not None:
            # Mirror cache hits into the checkpoint so a resume works
            # even if the cache is cleared between runs.
            self.checkpoint.record(key, result)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count(f"engine.jobs.{source}")
            tracer.count("engine.records", result.record_count)
        self._emit(
            "job_done",
            {
                "index": index,
                "label": job.label,
                "key": key,
                "source": source,
                "seconds": seconds,
                "records": result.record_count,
                "worker": worker,
                "incremental": dict(result.incremental),
                "codec": codec,
                "exchange_bytes": exchange_bytes,
            },
        )

    # ------------------------------------------------------------------

    def run(self, snapshot_jobs: Sequence[SnapshotJob]) -> List[QuarterResult]:
        """Execute all jobs; results come back in submission order."""
        snapshot_jobs = list(snapshot_jobs)
        if self.world_checkpoint_dir is not None:
            # Stamp the engine-level checkpoint directory onto jobs that
            # do not already carry one.  Cache keys are unaffected — the
            # field is excluded from SnapshotJob.spec() by design.
            snapshot_jobs = [
                job
                if job.world_checkpoint_dir is not None
                else replace(
                    job,
                    world_checkpoint_dir=str(self.world_checkpoint_dir),
                    world_checkpoint_stride=self.world_checkpoint_stride,
                )
                for job in snapshot_jobs
            ]
        keys = [job_digest(job) for job in snapshot_jobs]
        started = time.perf_counter()
        tracer = get_tracer()
        with tracer.span(
            "engine-sweep", jobs=len(snapshot_jobs), workers=self.jobs
        ):
            self._emit(
                "sweep_start",
                {
                    "jobs": len(snapshot_jobs),
                    "workers": self.jobs,
                    "batch": self.batch,
                },
            )

            results: List[Optional[QuarterResult]] = [None] * len(snapshot_jobs)
            restored = (
                self.checkpoint.load() if self.checkpoint is not None else {}
            )

            pending: List[int] = []
            for index, (job, key) in enumerate(zip(snapshot_jobs, keys)):
                if job.store_dir is not None and not part_complete(
                    job.store_dir, key
                ):
                    # A summary hit cannot substitute for the missing
                    # store part — the columns only exist if the job
                    # actually runs.  Recompute; the summary result is
                    # value-identical either way.
                    pending.append(index)
                    continue
                if key in restored:
                    results[index] = restored[key]
                    tracer.record_span(
                        "engine-job", 0.0, label=job.label,
                        source=SOURCE_CHECKPOINT,
                    )
                    self._finish(
                        index, job, key, restored[key], SOURCE_CHECKPOINT
                    )
                    continue
                if self.cache is not None:
                    hit = self.cache.get(key)
                    if hit is not None:
                        results[index] = hit
                        tracer.record_span(
                            "engine-job", 0.0, label=job.label,
                            source=SOURCE_CACHE,
                        )
                        self._finish(index, job, key, hit, SOURCE_CACHE)
                        continue
                pending.append(index)

            if pending:
                if self.jobs == 1:
                    self._run_serial(snapshot_jobs, keys, results, pending)
                else:
                    self._run_parallel(snapshot_jobs, keys, results, pending)

            missing = [
                snapshot_jobs[index].label or f"job #{index}"
                for index, result in enumerate(results)
                if result is None
            ]
            if missing:
                # Never hand back fewer results than jobs: a silent gap
                # (incomplete checkpoint restore, a worker that produced
                # nothing) would skew every downstream trend series.
                raise EngineError(
                    f"sweep produced no result for {len(missing)} of "
                    f"{len(snapshot_jobs)} job(s): {', '.join(missing)}"
                )
            self._emit("sweep_done", {"seconds": time.perf_counter() - started})
        return [result for result in results if result is not None]

    def _run_serial(self, jobs, keys, results, pending) -> None:
        tracer = get_tracer()
        for index in pending:
            self._emit(
                "job_start",
                {"index": index, "label": jobs[index].label, "key": keys[index]},
            )
            job_started = time.perf_counter()
            # A real (not record_span) span, so the per-stage spans of
            # the in-process computation nest beneath the job.
            with tracer.span(
                "engine-job", label=jobs[index].label, source=SOURCE_COMPUTED
            ) as span:
                result = execute_snapshot_job(jobs[index])
                span.set(records=result.record_count)
            results[index] = result
            self._finish(
                index,
                jobs[index],
                keys[index],
                result,
                SOURCE_COMPUTED,
                seconds=time.perf_counter() - job_started,
                worker=os.getpid(),
            )

    def _run_parallel(self, jobs, keys, results, pending) -> None:
        workers = min(self.jobs, len(pending))
        plane: Optional[ResultPlane] = None
        if self.exchange == "columnar":
            plane = ResultPlane(
                mode="file" if self.exchange_dir is not None else "auto",
                directory=self.exchange_dir,
            )
        try:
            spec = plane.spec() if plane is not None else None
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # Chronological submission order matters: it lets each
                # worker's cached world advance monotonically through the
                # sweep instead of rebuilding per job.  Batching preserves
                # it — chunks are consecutive runs of the pending list, so
                # a chunk's jobs share one worker's world back to back.
                futures: Dict[Any, List[int]] = {}
                for chunk_start in range(0, len(pending), self.batch):
                    chunk = pending[chunk_start:chunk_start + self.batch]
                    for index in chunk:
                        self._emit(
                            "job_start",
                            {
                                "index": index,
                                "label": jobs[index].label,
                                "key": keys[index],
                            },
                        )
                    future = pool.submit(
                        execute_snapshot_batch,
                        [jobs[index] for index in chunk],
                        spec,
                    )
                    futures[future] = chunk
                outstanding = set(futures)
                tracer = get_tracer()
                want_segment = self.cache is not None and self.cache.binary
                while outstanding:
                    done, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        chunk = futures[future]
                        payload = future.result()
                        worker = payload["worker"]
                        for index, item in zip(chunk, payload["items"]):
                            segment: Optional[bytes] = None
                            exchange_bytes = 0
                            codec = "json"
                            if plane is not None and "ref" in item:
                                codec = "columnar"
                                with tracer.span(
                                    "exchange-claim", label=jobs[index].label
                                ):
                                    with plane.claim(item["ref"]) as view:
                                        result = decode_result_segment(view)
                                        exchange_bytes = len(view)
                                        if want_segment:
                                            segment = bytes(view)
                                if tracer.enabled:
                                    tracer.count("exchange.results_claimed")
                                    tracer.count(
                                        "exchange.bytes_claimed",
                                        exchange_bytes,
                                    )
                            else:
                                result = result_from_payload(item["payload"])
                            results[index] = result
                            # Worker-side stage spans stay in the worker;
                            # the job's wall time crosses the pool boundary
                            # as a plain duration, recorded ending now.
                            tracer.record_span(
                                "engine-job",
                                item["seconds"],
                                label=jobs[index].label,
                                source=SOURCE_COMPUTED,
                                worker=worker,
                            )
                            self._finish(
                                index,
                                jobs[index],
                                keys[index],
                                result,
                                SOURCE_COMPUTED,
                                seconds=item["seconds"],
                                worker=worker,
                                codec=codec,
                                exchange_bytes=exchange_bytes,
                                segment=segment,
                            )
        finally:
            if plane is not None:
                plane.close()
