"""Parallel, cached, resumable execution engine for atom computations.

The engine turns snapshot-level atom computations into explicit,
content-addressed jobs:

* :mod:`repro.engine.jobs` — job specs, the worker entry point, and
  the persistable :class:`QuarterResult` summary;
* :mod:`repro.engine.scheduler` — :class:`ExecutionEngine`, fanning
  jobs across a process pool with deterministic result ordering;
* :mod:`repro.engine.cache` — the on-disk content-addressed cache;
* :mod:`repro.engine.checkpoint` — crash-safe sweep resume, the live
  pipeline's window-boundary :class:`StreamCheckpoint`, and the
  world-lineage :class:`WorldCheckpoint` snapshots;
* :mod:`repro.engine.exchange` — the zero-copy columnar result plane
  (shared-memory / spool-file worker exchange);
* :mod:`repro.engine.metrics` — structured instrumentation hooks.

See ``docs/engine.md`` for the architecture and the cache-key scheme.
"""

from repro.engine.cache import CACHE_SALT, ResultCache, job_digest
from repro.engine.checkpoint import (
    CheckpointLog,
    StreamCheckpoint,
    StreamCheckpointError,
    WorldCheckpoint,
)
from repro.engine.exchange import (
    ExchangeError,
    ResultPlane,
    decode_result_segment,
    encode_result_segment,
)
from repro.engine.jobs import (
    QuarterResult,
    SnapshotJob,
    build_jobs,
    clear_worker_state,
    execute_snapshot_batch,
    execute_snapshot_job,
    suite_times,
)
from repro.engine.metrics import EngineMetrics, JobMetric, progress_hook
from repro.engine.scheduler import EngineError, ExecutionEngine

__all__ = [
    "CACHE_SALT",
    "CheckpointLog",
    "EngineError",
    "EngineMetrics",
    "ExchangeError",
    "ExecutionEngine",
    "JobMetric",
    "QuarterResult",
    "ResultCache",
    "ResultPlane",
    "SnapshotJob",
    "StreamCheckpoint",
    "StreamCheckpointError",
    "WorldCheckpoint",
    "build_jobs",
    "clear_worker_state",
    "decode_result_segment",
    "encode_result_segment",
    "execute_snapshot_batch",
    "execute_snapshot_job",
    "job_digest",
    "progress_hook",
    "suite_times",
]
