"""Prefix-set operations: aggregation, coverage, and set algebra.

Measurement pipelines constantly reason about *collections* of
prefixes: "how much address space does this atom cover", "collapse
these more-specifics to their aggregates", "does this update overlap
that atom".  :class:`PrefixSet` provides those operations on top of the
radix trie, per address family.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set

from repro.net.prefix import Prefix, aggregate
from repro.net.trie import PrefixTrie


class PrefixSet:
    """A mutable set of prefixes of one address family."""

    def __init__(self, prefixes: Iterable[Prefix] = (), family: Optional[int] = None):
        self.family = family
        self._trie: Optional[PrefixTrie] = None
        self._members: Set[Prefix] = set()
        for prefix in prefixes:
            self.add(prefix)

    def _ensure_family(self, prefix: Prefix) -> None:
        if self.family is None:
            self.family = prefix.family
        elif prefix.family != self.family:
            raise ValueError(
                f"prefix family {prefix.family} does not match set family {self.family}"
            )
        if self._trie is None:
            self._trie = PrefixTrie(self.family)

    def add(self, prefix: Prefix) -> None:
        """Insert ``prefix`` (idempotent)."""
        self._ensure_family(prefix)
        if prefix not in self._members:
            self._members.add(prefix)
            self._trie.insert(prefix, True)

    def discard(self, prefix: Prefix) -> None:
        """Remove ``prefix`` if present."""
        if prefix in self._members:
            self._members.discard(prefix)
            self._trie.remove(prefix)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Prefix]:
        return iter(sorted(self._members, key=Prefix.key))

    # ------------------------------------------------------------------
    # Coverage queries
    # ------------------------------------------------------------------

    def covers(self, prefix: Prefix) -> bool:
        """True if some member equals or contains ``prefix``."""
        if self.family is None or prefix.family != self.family:
            return False
        return self._trie.longest_match(prefix) is not None

    def covering_member(self, prefix: Prefix) -> Optional[Prefix]:
        """The most specific member containing ``prefix``, if any."""
        if self.family is None or prefix.family != self.family:
            return None
        match = self._trie.longest_match(prefix)
        return match[0] if match else None

    def more_specifics_of(self, prefix: Prefix) -> List[Prefix]:
        """Members equal to or contained in ``prefix``."""
        if self.family is None or prefix.family != self.family:
            return []
        return [member for member, _ in self._trie.covered(prefix)]

    def address_span(self) -> int:
        """Total addresses covered, counting overlapping space once.

        Computed over the maximal members only (a /24 inside a /16 adds
        nothing).
        """
        total = 0
        for member in self.maximal_members():
            total += 1 << (member.max_length - member.length)
        return total

    def maximal_members(self) -> List[Prefix]:
        """Members not contained in any other member."""
        result = []
        for member in self._members:
            # A member is maximal when no strictly-shorter member
            # contains it; walk the supernet chain.
            is_maximal = True
            probe = member
            while probe.length > 0:
                probe = probe.supernet()
                if probe in self._members:
                    is_maximal = False
                    break
            if is_maximal:
                result.append(member)
        return sorted(result, key=Prefix.key)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def aggregated(self) -> "PrefixSet":
        """Collapse the set to its minimal covering form.

        Contained members are absorbed and complete sibling pairs merge
        upward repeatedly — the classic CIDR aggregation.
        """
        current = set(self.maximal_members())
        changed = True
        while changed:
            changed = False
            for member in sorted(current, key=Prefix.key):
                if member.length == 0 or member not in current:
                    continue
                sibling = member.sibling()
                if sibling in current:
                    parent = aggregate(member, sibling)
                    current.discard(member)
                    current.discard(sibling)
                    current.add(parent)
                    changed = True
        result = PrefixSet(family=self.family)
        for member in current:
            result.add(member)
        return result

    # ------------------------------------------------------------------
    # Set algebra (on exact membership)
    # ------------------------------------------------------------------

    def union(self, other: "PrefixSet") -> "PrefixSet":
        """Members present in either set."""
        return PrefixSet(list(self._members | other._members), family=self.family)

    def intersection(self, other: "PrefixSet") -> "PrefixSet":
        """Members present in both sets."""
        return PrefixSet(list(self._members & other._members), family=self.family)

    def difference(self, other: "PrefixSet") -> "PrefixSet":
        """Members of this set absent from ``other``."""
        return PrefixSet(list(self._members - other._members), family=self.family)

    def overlaps_prefix(self, prefix: Prefix) -> bool:
        """True if any member overlaps ``prefix`` in address space."""
        if self.covers(prefix):
            return True
        return bool(self.more_specifics_of(prefix))

    def __repr__(self) -> str:
        return f"PrefixSet({len(self._members)} prefixes, family={self.family})"
