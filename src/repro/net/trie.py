"""A binary radix trie keyed by IP prefixes.

Used by the RIB implementation for longest-prefix match and by the
addressing allocator to track free space.  One trie holds one address
family; mixing families raises immediately rather than silently
misordering bits.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.net.prefix import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Map from :class:`Prefix` to arbitrary values with LPM support."""

    def __init__(self, family: int):
        self.family = family
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def _check_family(self, prefix: Prefix) -> None:
        if prefix.family != self.family:
            raise ValueError(
                f"prefix family {prefix.family} does not match trie family {self.family}"
            )

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value at ``prefix``."""
        self._check_family(prefix)
        node = self._root
        for position in range(prefix.length):
            bit = prefix.bit(position)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def _find(self, prefix: Prefix) -> Optional[_Node[V]]:
        node = self._root
        for position in range(prefix.length):
            node = node.children[prefix.bit(position)]  # type: ignore[assignment]
            if node is None:
                return None
        return node

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """Exact-match lookup."""
        self._check_family(prefix)
        node = self._find(prefix)
        if node is not None and node.has_value:
            return node.value
        return default

    def __getitem__(self, prefix: Prefix) -> V:
        self._check_family(prefix)
        node = self._find(prefix)
        if node is None or not node.has_value:
            raise KeyError(prefix)
        return node.value  # type: ignore[return-value]

    def __contains__(self, prefix: Prefix) -> bool:
        self._check_family(prefix)
        node = self._find(prefix)
        return node is not None and node.has_value

    def remove(self, prefix: Prefix) -> V:
        """Remove and return the value at ``prefix``; KeyError if absent.

        Interior nodes left childless are pruned so memory tracks the
        live entry count.
        """
        self._check_family(prefix)
        path: List[Tuple[_Node[V], int]] = []
        node = self._root
        for position in range(prefix.length):
            bit = prefix.bit(position)
            child = node.children[bit]
            if child is None:
                raise KeyError(prefix)
            path.append((node, bit))
            node = child
        if not node.has_value:
            raise KeyError(prefix)
        value = node.value
        node.value = None
        node.has_value = False
        self._size -= 1
        # Prune empty leaves upward.
        while path and not node.has_value and node.children == [None, None]:
            parent, bit = path.pop()
            parent.children[bit] = None
            node = parent
        return value  # type: ignore[return-value]

    def longest_match(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match: the most specific stored covering prefix."""
        self._check_family(prefix)
        node = self._root
        best: Optional[Tuple[int, V]] = None
        if node.has_value:
            best = (0, node.value)  # type: ignore[arg-type]
        for position in range(prefix.length):
            node = node.children[prefix.bit(position)]  # type: ignore[assignment]
            if node is None:
                break
            if node.has_value:
                best = (position + 1, node.value)  # type: ignore[arg-type]
        if best is None:
            return None
        length, value = best
        matched = Prefix.from_host_bits(prefix.family, prefix.network, length)
        return matched, value

    def matches(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Yield every stored (prefix, value) pair covering ``prefix``.

        Pairs come out shortest-first (the /0 default route, when
        stored, leads), descending the one root-to-``prefix`` branch —
        valueless interior nodes are traversed, not yielded.  The last
        pair yielded is :meth:`longest_match`.
        """
        self._check_family(prefix)
        node = self._root
        if node.has_value:
            yield (
                Prefix.from_host_bits(self.family, 0, 0),
                node.value,  # type: ignore[misc]
            )
        for position in range(prefix.length):
            node = node.children[prefix.bit(position)]  # type: ignore[assignment]
            if node is None:
                return
            if node.has_value:
                yield (
                    Prefix.from_host_bits(
                        self.family, prefix.network, position + 1
                    ),
                    node.value,  # type: ignore[misc]
                )

    def covered(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Yield stored (prefix, value) pairs at or below ``prefix``."""
        self._check_family(prefix)
        node = self._find(prefix)
        if node is None:
            return
        yield from self._walk(node, prefix.network, prefix.length)

    def _walk(self, node: _Node[V], network: int, length: int) -> Iterator[Tuple[Prefix, V]]:
        if node.has_value:
            yield (
                Prefix.from_host_bits(self.family, network, length),
                node.value,  # type: ignore[misc]
            )
        max_bits = 32 if self.family == 4 else 128
        if length >= max_bits:
            return
        for bit in (0, 1):
            child = node.children[bit]
            if child is not None:
                child_network = network | (bit << (max_bits - length - 1))
                yield from self._walk(child, child_network, length + 1)

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Yield all (prefix, value) pairs in network order."""
        yield from self._walk(self._root, 0, 0)

    def keys(self) -> Iterator[Prefix]:
        """Stored prefixes in network order."""
        for prefix, _ in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        """Stored values in network order."""
        for _, value in self.items():
            yield value
