"""IP prefix representation for IPv4 and IPv6.

A :class:`Prefix` is an immutable (address-family, network-integer, length)
triple.  The integer form keeps containment and aggregation checks cheap and
lets the radix trie index prefixes without string parsing on the hot path.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Optional, Tuple

AF_INET = 4
AF_INET6 = 6

_V4_BITS = 32
_V6_BITS = 128
_V4_MAX = (1 << _V4_BITS) - 1
_V6_MAX = (1 << _V6_BITS) - 1


class PrefixError(ValueError):
    """Raised when a prefix string or component is malformed."""


def _parse_v4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise PrefixError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise PrefixError(f"invalid IPv4 octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_v4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _parse_v6(text: str) -> int:
    """Parse an IPv6 address into a 128-bit integer.

    Supports `::` compression and embedded IPv4 tails; rejects anything
    else malformed.  Implemented directly (rather than via ``ipaddress``)
    to keep this module dependency-free and the error type uniform.
    """
    if text.count("::") > 1:
        raise PrefixError(f"multiple '::' in {text!r}")
    if "." in text:
        # Embedded IPv4 tail, e.g. ::ffff:192.0.2.1
        head, _, tail = text.rpartition(":")
        v4 = _parse_v4(tail)
        text = "{}:{:x}:{:x}".format(head, (v4 >> 16) & 0xFFFF, v4 & 0xFFFF)
        if text.startswith(":") and not text.startswith("::"):
            raise PrefixError("invalid IPv6 with v4 tail")

    if "::" in text:
        head_text, tail_text = text.split("::")
        head = head_text.split(":") if head_text else []
        tail = tail_text.split(":") if tail_text else []
        missing = 8 - len(head) - len(tail)
        if missing < 1:
            raise PrefixError(f"'::' expands to nothing in {text!r}")
        groups = head + ["0"] * missing + tail
    else:
        groups = text.split(":")
        if len(groups) != 8:
            raise PrefixError(f"IPv6 address needs 8 groups: {text!r}")

    value = 0
    for group in groups:
        if not group or len(group) > 4:
            raise PrefixError(f"invalid IPv6 group {group!r} in {text!r}")
        try:
            part = int(group, 16)
        except ValueError:
            raise PrefixError(f"invalid IPv6 group {group!r} in {text!r}") from None
        value = (value << 16) | part
    return value


def _format_v6(value: int) -> str:
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]
    # Find the longest run of zero groups to compress with '::'.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start = index
                run_len = 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
    return f"{head}::{tail}"


class Prefix:
    """An immutable IP prefix such as ``192.0.2.0/24`` or ``2001:db8::/32``.

    Instances are hashable, totally ordered (by family, network, length),
    and cached via :meth:`parse` so repeated parsing of the same string is
    cheap inside tight analysis loops.
    """

    __slots__ = ("family", "network", "length", "_hash")

    def __init__(self, family: int, network: int, length: int):
        if family == AF_INET:
            max_bits, max_value = _V4_BITS, _V4_MAX
        elif family == AF_INET6:
            max_bits, max_value = _V6_BITS, _V6_MAX
        else:
            raise PrefixError(f"unknown address family {family!r}")
        if not 0 <= length <= max_bits:
            raise PrefixError(f"prefix length {length} out of range for family {family}")
        if not 0 <= network <= max_value:
            raise PrefixError("network integer out of range")
        host_bits = max_bits - length
        if host_bits and network & ((1 << host_bits) - 1):
            raise PrefixError(
                f"host bits set in network {network:#x}/{length} (family {family})"
            )
        object.__setattr__(self, "family", family)
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "_hash", hash((family, network, length)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    def __reduce__(self) -> Tuple[type, Tuple[int, int, int]]:
        # __slots__ plus the raising __setattr__ breaks default pickling;
        # rebuild through the constructor instead.
        return (Prefix, (self.family, self.network, self.length))

    @classmethod
    @lru_cache(maxsize=1 << 20)
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` or ``"x:y::/len"`` into a Prefix."""
        address, sep, length_text = text.partition("/")
        if ":" in address:
            family, bits = AF_INET6, _V6_BITS
            value = _parse_v6(address)
        else:
            family, bits = AF_INET, _V4_BITS
            value = _parse_v4(address)
        if sep:
            if not length_text.isdigit():
                raise PrefixError(f"invalid prefix length in {text!r}")
            length = int(length_text)
        else:
            length = bits
        host_bits = bits - length
        if host_bits < 0:
            raise PrefixError(f"prefix length {length} too long in {text!r}")
        if host_bits:
            value &= ~((1 << host_bits) - 1)
        return cls(family, value, length)

    @classmethod
    def from_host_bits(cls, family: int, network: int, length: int) -> "Prefix":
        """Build a prefix, silently masking any stray host bits."""
        bits = _V4_BITS if family == AF_INET else _V6_BITS
        host_bits = bits - length
        if host_bits:
            network &= ~((1 << host_bits) - 1)
        return cls(family, network, length)

    @property
    def max_length(self) -> int:
        return _V4_BITS if self.family == AF_INET else _V6_BITS

    @property
    def is_ipv4(self) -> bool:
        return self.family == AF_INET

    @property
    def is_ipv6(self) -> bool:
        return self.family == AF_INET6

    def bit(self, position: int) -> int:
        """Return bit ``position`` (0 = most significant) of the network."""
        return (self.network >> (self.max_length - 1 - position)) & 1

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        if self.family != other.family or other.length < self.length:
            return False
        shift = self.max_length - self.length
        return (self.network >> shift) == (other.network >> shift)

    def overlaps(self, other: "Prefix") -> bool:
        """True if either prefix contains the other."""
        return self.contains(other) or other.contains(self)

    def supernet(self, new_length: Optional[int] = None) -> "Prefix":
        """Return the covering prefix of ``new_length`` (default: length-1)."""
        length = self.length - 1 if new_length is None else new_length
        if not 0 <= length <= self.length:
            raise PrefixError(f"cannot widen /{self.length} to /{length}")
        return Prefix.from_host_bits(self.family, self.network, length)

    def subnets(self, new_length: Optional[int] = None) -> Iterator["Prefix"]:
        """Yield the subdivisions of this prefix at ``new_length``."""
        length = self.length + 1 if new_length is None else new_length
        if length < self.length or length > self.max_length:
            raise PrefixError(f"cannot split /{self.length} into /{length}")
        count = 1 << (length - self.length)
        step = 1 << (self.max_length - length)
        for index in range(count):
            yield Prefix(self.family, self.network + index * step, length)

    def sibling(self) -> "Prefix":
        """Return the other half of this prefix's parent."""
        if self.length == 0:
            raise PrefixError("/0 has no sibling")
        flip = 1 << (self.max_length - self.length)
        return Prefix(self.family, self.network ^ flip, self.length)

    def key(self) -> Tuple[int, int, int]:
        """Sort/hash key: (family, network, length)."""
        return (self.family, self.network, self.length)

    def __contains__(self, other: object) -> bool:
        return isinstance(other, Prefix) and self.contains(other)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Prefix)
            and self.family == other.family
            and self.network == other.network
            and self.length == other.length
        )

    def __lt__(self, other: "Prefix") -> bool:
        return self.key() < other.key()

    def __le__(self, other: "Prefix") -> bool:
        return self.key() <= other.key()

    def __gt__(self, other: "Prefix") -> bool:
        return self.key() > other.key()

    def __ge__(self, other: "Prefix") -> bool:
        return self.key() >= other.key()

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if self.family == AF_INET:
            return f"{_format_v4(self.network)}/{self.length}"
        return f"{_format_v6(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"


def aggregate(first: Prefix, second: Prefix) -> Optional[Prefix]:
    """Merge two sibling prefixes into their parent, or return None.

    ``192.0.2.0/25`` + ``192.0.2.128/25`` -> ``192.0.2.0/24``.
    """
    if (
        first.family != second.family
        or first.length != second.length
        or first.length == 0
    ):
        return None
    if first.sibling() == second:
        return first.supernet()
    return None
