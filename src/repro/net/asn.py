"""Autonomous System Number utilities.

ASNs are plain ``int`` throughout the library; this module centralises the
range classification rules (IANA registry) used by the sanitization pipeline
to spot misconfigured peers (e.g. the AS65000 case in the paper's A8.3.2).
"""

from __future__ import annotations

from typing import Tuple

ASN_MAX = (1 << 32) - 1

#: AS_TRANS (RFC 6793): placeholder ASN used when 4-byte ASNs traverse
#: 2-byte-only speakers.  Seeing it in a path is a data-quality signal.
AS_TRANS = 23456

#: (low, high) inclusive ranges reserved for private use (RFC 6996).
PRIVATE_ASN_RANGES: Tuple[Tuple[int, int], ...] = (
    (64512, 65534),
    (4200000000, 4294967294),
)

#: Ranges reserved for documentation (RFC 5398).
DOCUMENTATION_ASN_RANGES: Tuple[Tuple[int, int], ...] = (
    (64496, 64511),
    (65536, 65551),
)


def validate_asn(asn: int) -> int:
    """Return ``asn`` unchanged if it is a syntactically valid ASN.

    Raises ``ValueError`` otherwise.  Zero is rejected because it is
    reserved (RFC 7607) and never legitimately appears in an AS path.
    This sits on the hot path of path construction, so the common case
    is a single exact-type check plus a range comparison.
    """
    if asn.__class__ is int and 1 <= asn <= ASN_MAX:
        return asn
    raise ValueError(f"ASN must be an int in 1..{ASN_MAX}, got {asn!r}")


def is_private_asn(asn: int) -> bool:
    """True for RFC 6996 private-use ASNs (e.g. 65000)."""
    return any(low <= asn <= high for low, high in PRIVATE_ASN_RANGES)


def is_documentation_asn(asn: int) -> bool:
    """True for RFC 5398 documentation ASNs."""
    return any(low <= asn <= high for low, high in DOCUMENTATION_ASN_RANGES)


def is_reserved_asn(asn: int) -> bool:
    """True for ASNs that must never appear in global routing.

    Covers 0, 65535, 4294967295, AS_TRANS, and the private and
    documentation ranges.
    """
    if asn in (0, 65535, ASN_MAX, AS_TRANS):
        return True
    return is_private_asn(asn) or is_documentation_asn(asn)


def is_public_asn(asn: int) -> bool:
    """True for ASNs that may legitimately appear in a global AS path."""
    return 1 <= asn <= ASN_MAX and not is_reserved_asn(asn)
