"""AS path representation with AS_SEQUENCE / AS_SET segments.

The policy-atom pipeline needs four AS-path operations that the paper
leans on heavily:

* detecting and expanding AS_SETs (§2.4.4: expand singleton sets, drop
  paths with larger sets);
* stripping prepending while keeping the raw path (formation-distance
  method (iii), §3.4.2);
* extracting the origin AS (MOAS detection, atom-per-AS grouping);
* a canonical hashable form used as the atom grouping key.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.net.asn import validate_asn


class SegmentType(IntEnum):
    """BGP path-segment types (RFC 4271 §4.3)."""

    AS_SET = 1
    AS_SEQUENCE = 2


class PathSegment:
    """One AS_PATH segment: an ordered sequence or an unordered set."""

    __slots__ = ("kind", "asns")

    def __init__(self, kind: SegmentType, asns: Sequence[int]):
        if not asns:
            raise ValueError("empty path segment")
        for asn in asns:
            validate_asn(asn)
        if kind == SegmentType.AS_SET:
            # Canonicalise set ordering so equality/hashing is stable.
            asns = tuple(sorted(set(asns)))
        else:
            asns = tuple(asns)
        object.__setattr__(self, "kind", SegmentType(kind))
        object.__setattr__(self, "asns", asns)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PathSegment is immutable")

    def __reduce__(self) -> Tuple[type, Tuple[SegmentType, Tuple[int, ...]]]:
        return (PathSegment, (self.kind, self.asns))

    @property
    def is_set(self) -> bool:
        return self.kind == SegmentType.AS_SET

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PathSegment)
            and self.kind == other.kind
            and self.asns == other.asns
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.asns))

    def __len__(self) -> int:
        return len(self.asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self.asns)

    def __str__(self) -> str:
        body = " ".join(str(a) for a in self.asns)
        return "[" + body + "]" if self.is_set else body

    def __repr__(self) -> str:
        return f"PathSegment({self.kind.name}, {self.asns})"


class ASPath:
    """An AS path: the sequence of ASes from the collector peer to the origin.

    The leftmost ASN is the vantage point's neighbour (the collector peer),
    the rightmost ASN is the origin AS — the convention used in BGP dumps
    and throughout the paper.
    """

    __slots__ = ("segments", "_hash")

    def __init__(self, segments: Iterable[PathSegment]):
        segments = tuple(segments)
        object.__setattr__(self, "segments", segments)
        object.__setattr__(self, "_hash", hash(segments))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ASPath is immutable")

    def __reduce__(self) -> Tuple[type, Tuple[Tuple[PathSegment, ...]]]:
        return (ASPath, (self.segments,))

    @classmethod
    def from_asns(cls, asns: Sequence[int]) -> "ASPath":
        """Build a pure AS_SEQUENCE path from a list of ASNs."""
        if not asns:
            return cls(())
        return cls((PathSegment(SegmentType.AS_SEQUENCE, asns),))

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse the textual form used in BGP dumps, e.g. ``"1 2 {3,4}"``.

        Both ``{3,4}`` and ``[3 4]`` set spellings are accepted.
        """
        text = text.strip()
        if not text:
            return cls(())
        segments: List[PathSegment] = []
        run: List[int] = []
        index = 0
        while index < len(text):
            char = text[index]
            if char in "{[":
                close = "}" if char == "{" else "]"
                end = text.find(close, index)
                if end < 0:
                    raise ValueError(f"unterminated AS_SET in {text!r}")
                inner = text[index + 1 : end].replace(",", " ")
                members = [int(token) for token in inner.split()]
                if run:
                    segments.append(PathSegment(SegmentType.AS_SEQUENCE, run))
                    run = []
                segments.append(PathSegment(SegmentType.AS_SET, members))
                index = end + 1
            elif char.isspace() or char == ",":
                index += 1
            else:
                end = index
                while end < len(text) and text[end].isdigit():
                    end += 1
                if end == index:
                    raise ValueError(f"unexpected character {char!r} in {text!r}")
                run.append(int(text[index:end]))
                index = end
        if run:
            segments.append(PathSegment(SegmentType.AS_SEQUENCE, run))
        return cls(segments)

    @property
    def is_empty(self) -> bool:
        return not self.segments

    @property
    def has_set(self) -> bool:
        return any(segment.is_set for segment in self.segments)

    def set_sizes(self) -> List[int]:
        """Sizes of all AS_SET segments (empty list if none)."""
        return [len(segment) for segment in self.segments if segment.is_set]

    def asns(self) -> Tuple[int, ...]:
        """All ASNs in order; AS_SET members appear in canonical order."""
        result: List[int] = []
        for segment in self.segments:
            result.extend(segment.asns)
        return tuple(result)

    def hop_count(self) -> int:
        """Path length as used in BGP best-path selection.

        Each AS_SEQUENCE ASN counts 1; an AS_SET counts 1 regardless of
        size (RFC 4271 §9.1.2.2).
        """
        count = 0
        for segment in self.segments:
            count += 1 if segment.is_set else len(segment)
        return count

    @property
    def origin(self) -> Optional[int]:
        """The origin AS (rightmost ASN), or None for an empty path.

        If the rightmost segment is an AS_SET, the path has no single
        well-defined origin and None is returned.
        """
        if not self.segments:
            return None
        last = self.segments[-1]
        if last.is_set:
            return None
        return last.asns[-1]

    @property
    def peer(self) -> Optional[int]:
        """The leftmost ASN: the collector peer's AS."""
        if not self.segments:
            return None
        first = self.segments[0]
        if first.is_set:
            return None
        return first.asns[0]

    def expand_singleton_sets(self) -> "ASPath":
        """Replace one-element AS_SETs with plain sequence hops (§2.4.4)."""
        if not self.has_set:
            return self
        asns: List[int] = []
        for segment in self.segments:
            if segment.is_set and len(segment) > 1:
                # Caller is expected to drop these paths; preserve as-is.
                return self._expand_singletons_keeping_sets()
            asns.extend(segment.asns)
        return ASPath.from_asns(asns)

    def _expand_singletons_keeping_sets(self) -> "ASPath":
        segments: List[PathSegment] = []
        run: List[int] = []
        for segment in self.segments:
            if segment.is_set and len(segment) > 1:
                if run:
                    segments.append(PathSegment(SegmentType.AS_SEQUENCE, run))
                    run = []
                segments.append(segment)
            else:
                run.extend(segment.asns)
        if run:
            segments.append(PathSegment(SegmentType.AS_SEQUENCE, run))
        return ASPath(segments)

    def strip_prepending(self) -> Tuple[int, ...]:
        """Collapse consecutive duplicate ASNs: ``1 2 2 3`` -> ``(1, 2, 3)``.

        Used by formation-distance method (iii): atoms are grouped on the
        raw path, but hops are counted on the deduplicated path so
        prepending does not inflate distances.
        """
        result: List[int] = []
        for asn in self.asns():
            if not result or result[-1] != asn:
                result.append(asn)
        return tuple(result)

    def prepend_counts(self) -> List[Tuple[int, int]]:
        """Run-length encode the path: ``1 2 2 3`` -> ``[(1,1),(2,2),(3,1)]``."""
        runs: List[Tuple[int, int]] = []
        for asn in self.asns():
            if runs and runs[-1][0] == asn:
                runs[-1] = (asn, runs[-1][1] + 1)
            else:
                runs.append((asn, 1))
        return runs

    @property
    def has_prepending(self) -> bool:
        return any(count > 1 for _, count in self.prepend_counts())

    def has_loop(self) -> bool:
        """True if any ASN appears in two non-adjacent positions."""
        stripped = self.strip_prepending()
        return len(set(stripped)) != len(stripped)

    def contains_asn(self, asn: int) -> bool:
        """True if ``asn`` appears anywhere in the path."""
        return any(asn in segment.asns for segment in self.segments)

    def key(self) -> Tuple:
        """Hashable canonical form used as the atom grouping key."""
        return tuple(
            (int(segment.kind), segment.asns) for segment in self.segments
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ASPath) and self.segments == other.segments

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return self.hop_count()

    def __bool__(self) -> bool:
        return bool(self.segments)

    def __str__(self) -> str:
        return " ".join(str(segment) for segment in self.segments)

    def __repr__(self) -> str:
        return f"ASPath({str(self)!r})"


EMPTY_PATH = ASPath(())

#: RFC 6793 placeholder ASN used by 2-byte speakers for 4-byte ASes.
AS_TRANS = 23456


def merge_as4_path(as_path: ASPath, as4_path: ASPath) -> ASPath:
    """Reconcile AS_PATH with AS4_PATH per RFC 6793 §4.2.3.

    A 2-byte speaker substitutes :data:`AS_TRANS` for every 4-byte ASN
    in AS_PATH and carries the true path in the transitive AS4_PATH
    attribute.  The merged path takes the leading
    ``len(AS_PATH) - len(AS4_PATH)`` hops of AS_PATH (the portion added
    by 2-byte speakers after the attribute was attached) followed by
    the AS4_PATH.  A malformed AS4_PATH *longer* than AS_PATH is
    ignored and AS_PATH wins, as the RFC requires.
    """
    excess = as_path.hop_count() - as4_path.hop_count()
    if excess < 0:
        return as_path
    if excess == 0:
        return as4_path
    lead: List[PathSegment] = []
    remaining = excess
    for segment in as_path.segments:
        if remaining <= 0:
            break
        if segment.is_set:
            lead.append(segment)
            remaining -= 1  # an AS_SET counts as one hop (RFC 4271 §9.1.2.2)
        elif len(segment.asns) <= remaining:
            lead.append(segment)
            remaining -= len(segment.asns)
        else:
            lead.append(
                PathSegment(SegmentType.AS_SEQUENCE, segment.asns[:remaining])
            )
            remaining = 0
    merged: List[PathSegment] = list(lead)
    for segment in as4_path.segments:
        # Coalesce adjacent sequences so the merged path is canonical
        # (equal to the path a 4-byte speaker would have sent).
        if (
            merged
            and not merged[-1].is_set
            and not segment.is_set
        ):
            merged[-1] = PathSegment(
                SegmentType.AS_SEQUENCE, merged[-1].asns + segment.asns
            )
        else:
            merged.append(segment)
    return ASPath(merged)
