"""Network primitives: prefixes, AS numbers, AS paths, and a prefix trie.

These are the lowest-level building blocks shared by the BGP substrate,
the topology simulator, and the policy-atom pipeline.  Everything here is
pure data with no I/O.
"""

from repro.net.asn import (
    AS_TRANS,
    PRIVATE_ASN_RANGES,
    is_documentation_asn,
    is_private_asn,
    is_public_asn,
    is_reserved_asn,
    validate_asn,
)
from repro.net.aspath import ASPath, PathSegment, SegmentType
from repro.net.prefix import AF_INET, AF_INET6, Prefix, PrefixError
from repro.net.prefix_set import PrefixSet
from repro.net.trie import PrefixTrie

__all__ = [
    "AF_INET",
    "AF_INET6",
    "AS_TRANS",
    "ASPath",
    "PRIVATE_ASN_RANGES",
    "PathSegment",
    "Prefix",
    "PrefixError",
    "PrefixSet",
    "PrefixTrie",
    "SegmentType",
    "is_documentation_asn",
    "is_private_asn",
    "is_public_asn",
    "is_reserved_asn",
    "validate_asn",
]
