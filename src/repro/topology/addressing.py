"""Address space allocation for the synthetic Internet.

Each AS receives one or more allocation blocks; announced prefixes are
carved out of the blocks with a controllable fragmentation level — the
paper attributes most of the 7.8x prefix growth to fragmentation into
more-specifics, so the carver can announce the aggregate, more-specifics,
or both.
"""

from __future__ import annotations

import random
from typing import List

from repro.net.prefix import AF_INET, AF_INET6, Prefix, PrefixError

#: Longest announced prefix the paper keeps (§2.4.3).
MAX_ANNOUNCED_LENGTH = {AF_INET: 24, AF_INET6: 48}


class AddressSpaceExhausted(RuntimeError):
    """The allocator ran out of blocks of the requested size."""


class AddressAllocator:
    """Sequential allocator over one address family's unicast space.

    IPv4 blocks come from 1.0.0.0/8 upward (stopping before 224/8);
    IPv6 blocks from 2001::/16 within 2000::/3.  Sequential allocation
    keeps the layout deterministic and collision-free without a free
    list.
    """

    def __init__(self, family: int):
        if family == AF_INET:
            self._base = 1 << 24  # 1.0.0.0
            self._limit = 224 << 24  # start of multicast space
            self._bits = 32
        elif family == AF_INET6:
            self._base = 0x2001 << 112
            self._limit = 0x4000 << 112  # end of 2000::/3
            self._bits = 128
        else:
            raise PrefixError(f"unknown family {family}")
        self.family = family
        self._cursor = self._base

    def allocate_block(self, length: int) -> Prefix:
        """Allocate the next free block with the given prefix length."""
        step = 1 << (self._bits - length)
        # Align the cursor up to the block size.
        remainder = self._cursor % step
        if remainder:
            self._cursor += step - remainder
        if self._cursor + step > self._limit:
            raise AddressSpaceExhausted(
                f"no /{length} blocks left in family {self.family}"
            )
        block = Prefix(self.family, self._cursor, length)
        self._cursor += step
        return block

    def remaining_blocks(self, length: int) -> int:
        """How many /``length`` blocks are still free."""
        step = 1 << (self._bits - length)
        remainder = self._cursor % step
        aligned = self._cursor + (step - remainder if remainder else 0)
        return max(0, (self._limit - aligned) // step)


def carve_prefixes(
    block: Prefix,
    count: int,
    rng: random.Random,
    include_aggregate: bool = True,
) -> List[Prefix]:
    """Carve ``count`` announced prefixes out of an allocation block.

    The result mixes the aggregate (optionally) with more-specifics
    obtained by repeated halving, never exceeding the family's maximum
    announced length.  If the block is too small to yield ``count``
    distinct prefixes, as many as possible are returned.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    max_length = MAX_ANNOUNCED_LENGTH[block.family]
    if block.length > max_length:
        raise ValueError(
            f"allocation block {block} longer than announceable /{max_length}"
        )
    result: List[Prefix] = []
    if include_aggregate:
        result.append(block)
        if count == 1:
            return result

    # Pool of splittable prefixes; bias splitting toward earlier entries
    # so fragmentation clusters (mirrors real-world deaggregation).
    pool: List[Prefix] = [block]
    while len(result) < count:
        splittable = [p for p in pool if p.length < max_length]
        if not splittable:
            break
        victim = splittable[0] if rng.random() < 0.6 else rng.choice(splittable)
        pool.remove(victim)
        halves = list(victim.subnets())
        pool.extend(halves)
        for half in halves:
            if len(result) < count and half not in result:
                result.append(half)
    return result[:count]
