"""The mutable simulated Internet.

A :class:`World` owns the AS graph, the address plan, every origin's
policy units, transit selective-export rules, and the collector/peer
layout.  It can be advanced in time: crossing growth boundaries adds
ASes/prefixes/vantage points according to the year profiles, and any
advance applies policy churn whose hazards are calibrated to the
paper's stability tables.

The world is deterministic for a fixed ``WorldParams.seed`` *and* a
fixed sequence of ``advance_to`` calls (churn draws depend on the call
cadence; scenarios fix the cadence).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.bgp.attributes import Community
from repro.net.prefix import AF_INET, AF_INET6, Prefix
from repro.topology.addressing import AddressAllocator, carve_prefixes
from repro.topology.evolution import ScaledCounts, WorldParams, YearProfile, profile_for
from repro.topology.generator import add_stub_as, add_transit_as, generate_topology, GeneratorParams
from repro.topology.model import ASGraph, ASNode, Relationship, Tier
from repro.topology.policies import OriginPolicy, PolicyUnit, TransitPolicy
from repro.util.dates import HOUR
from repro.util.determinism import derive_rng

#: Mechanisms that differentiate a non-base policy unit from its origin's
#: base unit.  Each maps to a characteristic formation distance.
MECH_UNIFORM = "uniform"        # same config as base (merges into base atom)
MECH_PREPEND = "prepend"        # distance 1
MECH_SELECTIVE = "selective"    # distance 2
MECH_SCOPED = "scoped"          # distance 1 (visible to a unique peer set)
MECH_TAG_SHALLOW = "tag3"       # distance 3
MECH_TAG_DEEP = "tag4"          # distance 4+


@dataclass
class PeerSpec:
    """One BGP session between an AS and a collector."""

    project: str
    collector: str
    asn: int
    address: str
    full_feed: bool
    #: fraction of the table shared when not full feed
    partial_fraction: float = 1.0
    #: artifact class: "", "addpath", "private_asn", "duplicates"
    artifact: str = ""
    #: artifact active window (epoch seconds); 0/inf-like when unused
    artifact_start: int = 0
    artifact_end: int = 2**62

    @property
    def peer_id(self) -> Tuple[str, int, str]:
        return (self.collector, self.asn, self.address)

    def artifact_active(self, when: int) -> bool:
        """True while this peer's artifact window covers ``when``."""
        return bool(self.artifact) and self.artifact_start <= when < self.artifact_end


@dataclass
class CollectorLayout:
    """The collector infrastructure at one instant."""

    collectors: List[Tuple[str, str]] = field(default_factory=list)  # (project, name)
    peers: List[PeerSpec] = field(default_factory=list)

    def fullfeed_peers(self) -> List[PeerSpec]:
        """Peers configured to share their full table."""
        return [peer for peer in self.peers if peer.full_feed]

    def vantage_asns(self) -> Set[int]:
        """ASNs of all collector peers."""
        return {peer.asn for peer in self.peers}


@dataclass
class _UnitMeta:
    """World-side bookkeeping for one policy unit."""

    mechanism: str = MECH_UNIFORM
    volatile: bool = False
    #: reversal memory for oscillating membership churn
    last_move: Optional[Tuple[Prefix, int, int]] = None


class World:
    """See module docstring."""

    def __init__(self, params: WorldParams, start_time: int):
        self.params = params
        self.current_time = start_time
        self.profile: YearProfile = profile_for(start_time)
        self.counts: ScaledCounts = params.scaled_counts(self.profile)

        self._rng = derive_rng(params.seed, "world")
        self.allocators = {AF_INET: AddressAllocator(AF_INET), AF_INET6: AddressAllocator(AF_INET6)}

        self.graph: ASGraph = self._build_base_graph()
        self._next_asn = max(self.graph.nodes) + 1

        # (family, asn) -> OriginPolicy
        self.origin_policies: Dict[Tuple[int, int], OriginPolicy] = {}
        self.transit_policies: Dict[int, TransitPolicy] = {}
        self._unit_meta: Dict[Tuple[int, int, int], _UnitMeta] = {}
        #: per-family empirical mechanism counts (deficit steering)
        self._mech_counts: Dict[int, Dict[str, int]] = {}
        #: per-origin policy style: mechanism reused by most of an
        #: origin's differentiated units (an AS has one TE discipline)
        self._origin_style: Dict[Tuple[int, int], str] = {}
        #: origins whose style was pre-counted at full unit weight
        self._precounted: Set[Tuple[int, int]] = set()
        #: extra peerings added by VP policy churn (vp asn -> peer asn)
        self._vp_extra_peers: Dict[int, int] = {}
        #: bumped whenever transit rules change (propagation cache key)
        self.policy_epoch = 0
        self._next_tag_value = 1
        self.moas_prefixes: Dict[Prefix, Tuple[int, int]] = {}
        #: origins whose paths should carry an AS_SET tail at rendering
        self.as_set_origins: Set[int] = set()
        # Worlds born after the FITI launch already include its ASes in
        # the initial v6 population; only fire the event when the world
        # lives through 2021.
        self._fiti_done = start_time >= self._fiti_timestamp()

        self._populate_origins(AF_INET, self.counts.v4_ases, self.counts.v4_prefixes)
        if self.counts.v6_ases:
            self._populate_origins(AF_INET6, self.counts.v6_ases, self.counts.v6_prefixes)

        self.layout = CollectorLayout()
        self._grow_collectors()
        if params.inject_artifacts:
            self._assign_artifacts()

    # ------------------------------------------------------------------
    # Base construction
    # ------------------------------------------------------------------

    def _build_base_graph(self) -> ASGraph:
        counts = self.counts
        n_transit = max(10, int(0.08 * counts.v4_ases))
        n_stub = max(10, counts.v4_ases - n_transit - 8)
        year = self.profile.year
        # Internet flattening: denser edge peering in later years.
        flatness = min(1.0, max(0.0, (year - 2004.0) / 20.0))
        gen_params = GeneratorParams(
            n_tier1=8,
            n_transit=n_transit,
            n_stub=n_stub,
            n_regions=self.params.n_regions,
            multihoming_mean=1.3 + 0.6 * flatness,
            peering_density=0.10 + 0.15 * flatness,
            edge_peering_density=0.0005 + 0.002 * flatness,
            ipv6_fraction=self._v6_fraction(),
            seed=derive_rng(self.params.seed, "topology").randrange(2**31),
        )
        return generate_topology(gen_params)

    def _v6_fraction(self) -> float:
        if not self.counts.v6_ases:
            return 0.0
        return min(1.0, self.counts.v6_ases / max(1, self.counts.v4_ases))

    # ------------------------------------------------------------------
    # Origin population
    # ------------------------------------------------------------------

    def _prefix_count_distribution(self, n_ases: int, n_prefixes: int,
                                   rng: random.Random) -> List[int]:
        """Heavy-tailed per-AS prefix counts summing to ~n_prefixes.

        Shaped like the measured Internet: roughly 40-50 % of origins
        announce a single prefix, a Zipf body, and a handful of giants
        (CDNs, incumbents) that absorb whatever the body leaves over.
        """
        if n_ases <= 0:
            return []
        # Zipf body: P(count >= k) ~ k^-alpha, truncated.
        alpha = 1.15
        cap = max(4, n_prefixes // 12)
        counts = []
        for _ in range(n_ases):
            draw = (1.0 - rng.random()) ** (-1.0 / alpha)
            counts.append(max(1, min(cap, int(draw))))
        drift = n_prefixes - sum(counts)
        if drift > 0:
            # Hand the surplus to a population of giants, wide enough
            # that no single origin dominates the table.
            giants = max(6, n_ases // 15)
            order = sorted(range(n_ases), key=lambda i: -counts[i])[:giants]
            share, remainder = divmod(drift, len(order))
            for position, index in enumerate(order):
                counts[index] += share + (1 if position < remainder else 0)
        else:
            index = 0
            deficit = -drift
            while deficit > 0 and index < n_ases:
                take = min(counts[index] - 1, deficit)
                if take > 0:
                    counts[index] -= take
                    deficit -= take
                index += 1
        return counts

    def _eligible_origin_asns(self, family: int) -> List[int]:
        """ASes that may originate prefixes of the family (stubs and
        transits; Tier-1s originate a little too)."""
        eligible = []
        for asn, node in self.graph.nodes.items():
            if family == AF_INET6 and not node.ipv6_capable:
                continue
            eligible.append(asn)
        return eligible

    def _populate_origins(self, family: int, n_ases: int, n_prefixes: int) -> None:
        rng = derive_rng(self.params.seed, "populate", family)
        eligible = self._eligible_origin_asns(family)
        rng.shuffle(eligible)
        chosen = eligible[: min(n_ases, len(eligible))]
        counts = self._prefix_count_distribution(len(chosen), n_prefixes, rng)
        for asn, prefix_count in zip(chosen, counts):
            self._create_origin(family, asn, prefix_count, rng)
        self._assign_moas(family, rng)

    def _allocate_prefixes(self, family: int, asn: int, count: int,
                           rng: random.Random) -> List[Prefix]:
        """Carve ``count`` prefixes out of fresh allocation blocks."""
        prefixes: List[Prefix] = []
        allocator = self.allocators[family]
        while len(prefixes) < count:
            chunk = min(count - len(prefixes), rng.choice((4, 8, 16, 32, 64)))
            if family == AF_INET:
                # Block must have room for the chunk above /24.
                depth = max(1, math.ceil(math.log2(max(2, chunk))))
                length = max(8, min(22, 24 - depth))
            else:
                depth = max(1, math.ceil(math.log2(max(2, chunk))))
                length = max(20, min(40, 48 - depth - 2))
            block = allocator.allocate_block(length)
            prefixes.extend(carve_prefixes(block, chunk, rng))
        return prefixes[:count]

    def _mean_unit_size(self, family: int) -> float:
        return (
            self.profile.mean_unit_size_v4
            if family == AF_INET
            else self.profile.mean_unit_size_v6
        )

    def _single_unit_share(self, family: int) -> float:
        return (
            self.profile.single_unit_share_v4
            if family == AF_INET
            else self.profile.single_unit_share_v6
        )

    def _unit_size_cap(self, family: int) -> int:
        """Largest unit size, scaled from the paper's largest atom.

        At very small world scales the scaled cap would fall below the
        mean unit size and distort the whole size distribution, so it is
        floored at a small multiple of the mean.
        """
        full_scale = (
            self.profile.max_atom_v4 if family == AF_INET else self.profile.max_atom_v6
        )
        floor = int(math.ceil(3 * self._mean_unit_size(family)))
        return max(3, floor, int(round(full_scale * self.params.prefix_scale)))

    def _partition_sizes(self, total: int, family: int, rng: random.Random,
                         uniform_bias: float = 1.0) -> List[int]:
        """Split an origin's prefix count into unit sizes.

        One dominant base unit plus a train of small TE units reproduces
        the paper's size distribution: many single-prefix atoms alongside
        a fat base atom per origin.  Unit sizes are capped so even giant
        origins (CDNs) fragment into many atoms, with the cap tracking
        the paper's largest-atom trend.
        """
        cap = self._unit_size_cap(family)
        if total == 1 or (
            total <= cap
            and rng.random() < self._single_unit_share(family) * uniform_bias
        ):
            return [total]
        mean_size = self._mean_unit_size(family)
        base_low = min(0.6, 0.20 + 0.03 * mean_size)
        base_high = min(0.85, 0.45 + 0.04 * mean_size)
        base = max(1, min(int(total * rng.uniform(base_low, base_high)), cap))
        sizes = [base]
        remaining = total - base
        mean_small = max(1.05, mean_size * 0.35)
        while remaining > 0:
            size = 1
            while (
                remaining - size > 0
                and size < cap
                and rng.random() < 1.0 - 1.0 / mean_small
            ):
                size += 1
            # Giant origins: occasionally emit another large block so the
            # size distribution keeps its heavy tail.
            if remaining > 4 * cap and rng.random() < 0.15:
                size = min(remaining, max(size, int(cap * rng.uniform(0.3, 1.0))))
            sizes.append(size)
            remaining -= size
        return sizes

    def _mechanism_targets(self) -> Dict[str, float]:
        profile = self.profile
        scoped = 0.12 * profile.mix_selective
        return {
            MECH_PREPEND: profile.mix_prepend,
            MECH_SELECTIVE: profile.mix_selective - scoped,
            MECH_SCOPED: scoped,
            MECH_TAG_SHALLOW: profile.mix_tag_shallow,
            MECH_TAG_DEEP: profile.mix_tag_deep,
        }

    def _pick_mechanism(self, rng: random.Random, single_homed: Optional[bool],
                        family: int) -> str:
        """Choose a differentiation mechanism the origin can actually use,
        steering the empirical mix toward the profile targets.

        Selective announcement needs multiple upstreams; transit-imposed
        tag splits are modelled on single-homed origins, where the early
        hops are pinned and the divergence lands past the transit — the
        same reasoning the paper borrows from Kastanakis et al. (§4.3).
        Because eligibility depends on homing, a plain weighted draw
        would drift from the target mix; instead each draw favours the
        eligible mechanism furthest below its target share.
        """
        targets = self._mechanism_targets()
        if single_homed is None:
            # Caller will conform the homing to the chosen style.
            eligible = tuple(targets)
        elif single_homed:
            # Tag splits need the announcement hops pinned: a multi-homed
            # origin's tagged unit could detour through the other
            # provider and split at distance 2 instead of 3.
            eligible = (MECH_PREPEND, MECH_SCOPED, MECH_TAG_SHALLOW, MECH_TAG_DEEP)
        else:
            eligible = (MECH_PREPEND, MECH_SELECTIVE, MECH_SCOPED)
        counts = self._mech_counts.setdefault(family, {})
        total = sum(counts.values()) or 1
        weights = []
        for mechanism in eligible:
            share = counts.get(mechanism, 0) / total
            deficit = max(0.0, targets[mechanism] - share)
            weights.append((mechanism, deficit + 0.02 * targets[mechanism]))
        weight_sum = sum(weight for _, weight in weights)
        if weight_sum <= 0:
            return rng.choice(eligible)
        draw = rng.random() * weight_sum
        for mechanism, weight in weights:
            draw -= weight
            if draw <= 0:
                return mechanism
        return weights[-1][0]

    def _count_mechanism(self, family: int, mechanism: str,
                         weight: int = 1) -> None:
        counts = self._mech_counts.setdefault(family, {})
        counts[mechanism] = counts.get(mechanism, 0) + weight

    def _new_tag(self) -> Community:
        value = self._next_tag_value
        self._next_tag_value += 1
        return Community(value >> 16 & 0xFFFF | 3000, value & 0xFFFF)

    def _meta(self, family: int, asn: int, unit: PolicyUnit) -> _UnitMeta:
        return self._unit_meta.setdefault((family, asn, unit.unit_id), _UnitMeta())

    def _create_origin(self, family: int, asn: int, prefix_count: int,
                       rng: random.Random) -> OriginPolicy:
        policy = OriginPolicy(asn, family)
        self.origin_policies[(family, asn)] = policy
        prefixes = self._allocate_prefixes(family, asn, prefix_count, rng)
        sizes = self._partition_sizes(prefix_count, family, rng)
        if len(sizes) > 6:
            self._conform_giant(family, asn, len(sizes), rng)
        cursor = 0
        base_unit: Optional[PolicyUnit] = None
        for index, size in enumerate(sizes):
            members = prefixes[cursor : cursor + size]
            cursor += size
            if index == 0:
                base_unit = policy.new_unit(members)
                self._init_meta(family, asn, base_unit, MECH_UNIFORM, rng)
            else:
                self._differentiate_unit(policy, members, rng)
        if prefix_count <= 20 and self._rng.random() < self.profile.as_set_share * 4:
            # Aggregating origin: a slice of its paths will carry AS_SETs.
            # Restricted to small origins so the share of AS_SET paths
            # stays well under 1 % (§2.4.4).
            self.as_set_origins.add(asn)
        return policy

    def _init_meta(self, family: int, asn: int, unit: PolicyUnit,
                   mechanism: str, rng: random.Random) -> None:
        meta = self._meta(family, asn, unit)
        meta.mechanism = mechanism
        meta.volatile = rng.random() < self.profile.volatile_unit_share

    def _differentiate_unit(self, policy: OriginPolicy, members: List[Prefix],
                            rng: random.Random,
                            allow_rewire: bool = True) -> PolicyUnit:
        """Create a non-base unit with a distance-targeted mechanism.

        ``allow_rewire=False`` (used during churn) forbids adding graph
        links, so within-quarter snapshots keep the topology — and the
        propagation cache — intact.
        """
        asn = policy.asn
        single_homed = len(self.graph.providers(asn)) < 2
        # An origin mostly sticks to one TE discipline; deciding it at
        # the first differentiated unit (while homing is pristine) keeps
        # the world-level mechanism mix on target even though selective
        # announcement rewires origins to multi-homed.
        style_key = (policy.family, asn)
        style = self._origin_style.get(style_key)
        # Style stickiness fades as an origin accumulates units: a
        # mechanism's configuration space is topology-bounded, so a big
        # origin that kept one style would pile new units into existing
        # atoms.  Mixing mechanisms multiplies the config space (the
        # formation distance is a max over siblings, so mixing does not
        # blur each unit's characteristic distance).
        reuse = 0.7 if len(policy.units) <= 6 else 0.25
        if style is None or rng.random() > reuse:
            mechanism = self._pick_mechanism(rng, single_homed, policy.family)
            self._origin_style.setdefault(style_key, mechanism)
        else:
            mechanism = style
        unit: Optional[PolicyUnit] = None

        if mechanism == MECH_PREPEND:
            # Uniform prepending to every neighbor: lengthens the path
            # without redirecting anyone's best-path choice, so the atom
            # differs from the base only in duplicate hops (distance 1).
            # Non-uniform prepending would act as traffic engineering and
            # split at the provider hop instead.
            amount = rng.choice((1, 2, 3))
            prepend = {n: amount for n in self._announce_targets(asn)}
            unit = policy.new_unit(members, prepend=prepend)
        elif mechanism == MECH_SELECTIVE:
            providers = sorted(self.graph.providers(asn))
            if len(providers) < 2 and allow_rewire:
                self._ensure_multihomed(asn)
                providers = sorted(self.graph.providers(asn))
            if len(providers) >= 2:
                # Announce through a proper subset of providers, splitting
                # at the provider hop (distance 2).  Varying the subset
                # across an origin's units matters: pinning every unit to
                # the same provider would merge them into a single atom.
                size = 1 if len(providers) == 2 else rng.randint(1, len(providers) - 1)
                pool = providers[1:] if size == 1 else providers
                subset = frozenset(rng.sample(pool, size))
                unit = policy.new_unit(members, announce_to=subset)
            else:
                mechanism = MECH_PREPEND
                targets = self._announce_targets(asn)
                unit = policy.new_unit(members, prepend={n: 2 for n in targets})
        elif mechanism == MECH_SCOPED:
            unit = self._make_scoped_unit(policy, members, rng)
            if unit is None:
                mechanism = MECH_PREPEND
                prepend = {n: 2 for n in self._announce_targets(asn)}
                unit = policy.new_unit(members, prepend=prepend)
        elif mechanism in (MECH_TAG_SHALLOW, MECH_TAG_DEEP):
            unit = self._make_tagged_unit(policy, members, mechanism, rng)
            if unit is None:
                mechanism = MECH_SELECTIVE
                targets = (
                    self._ensure_multihomed(asn)
                    if allow_rewire
                    else self._announce_targets(asn)
                )
                subset = frozenset([min(targets)]) if targets else None
                unit = policy.new_unit(members, announce_to=subset)

        if unit is None:  # pragma: no cover - defensive
            mechanism = MECH_UNIFORM
            unit = policy.new_unit(members)
        if style_key not in self._precounted:
            self._count_mechanism(policy.family, mechanism)
        self._init_meta(policy.family, asn, unit, mechanism, rng)
        return unit

    def _announce_targets(self, asn: int) -> Set[int]:
        """Neighbors an origin announces to: providers plus peers."""
        return set(self.graph.providers(asn)) | set(self.graph.peers(asn))

    def _would_create_provider_cycle(self, customer: int, provider: int) -> bool:
        """True if linking ``customer -> provider`` closes a cycle, i.e.
        ``provider`` already (transitively) buys transit from ``customer``."""
        frontier = [provider]
        seen = {provider}
        while frontier:
            current = frontier.pop()
            for upper in self.graph.providers(current):
                if upper == customer:
                    return True
                if upper not in seen:
                    seen.add(upper)
                    frontier.append(upper)
        return False

    def _add_provider(self, asn: int) -> bool:
        """Attach one more transit provider to ``asn``; False when no
        acyclic candidate exists."""
        transits = [
            other
            for other, node in self.graph.nodes.items()
            if node.tier in (Tier.TIER1, Tier.TRANSIT)
            and other != asn
            and self.graph.relationship(asn, other) is None
            and not self._would_create_provider_cycle(asn, other)
        ]
        if not transits:
            return False
        self.graph.add_provider_link(asn, self._rng.choice(transits))
        return True

    def _conform_giant(self, family: int, asn: int, unit_count: int,
                       rng: random.Random) -> None:
        """Give a many-unit origin (CDN, incumbent) the topology its
        policy style needs.

        Origins with many policy units dominate the unit mass, so they
        must land on the target mechanism mix: pick the style first,
        then conform the homing the style needs — single-homed under a
        Tier-1 for tag styles (granularity from the transit's community
        vocabulary), densely multihomed for selective announcement.
        Applied both at creation and when growth pushes an origin past
        the threshold.  The style choice is pre-counted at the origin's
        full unit weight so one giant's lucky draw cannot swing the
        world's mechanism mix.
        """
        style = self._pick_mechanism(rng, single_homed=None, family=family)
        self._origin_style[(family, asn)] = style
        self._count_mechanism(family, style, weight=max(1, unit_count - 1))
        self._precounted.add((family, asn))
        if style == MECH_TAG_DEEP:
            # Deep splits need a transit layer above the first hop.
            self._rehome_to_second_tier(asn, rng)
        elif style in (MECH_TAG_SHALLOW, MECH_SCOPED):
            self._rehome_to_tier1(asn, rng)
        elif style == MECH_SELECTIVE:
            want = min(6, 2 + int(math.log2(max(2, unit_count))))
            while len(self.graph.providers(asn)) < want:
                if not self._add_provider(asn):
                    break

    def _rehome_single(self, asn: int, target: int) -> None:
        if self._would_create_provider_cycle(asn, target):
            return
        for provider in list(self.graph.providers(asn)):
            if provider != target:
                self.graph.remove_link(asn, provider)
        if self.graph.relationship(asn, target) is None:
            self.graph.add_provider_link(asn, target)

    def _rehome_to_tier1(self, asn: int, rng: random.Random) -> None:
        """Make ``asn`` a single-homed direct customer of a Tier-1."""
        tier1 = [t for t in self.graph.tier1() if t != asn]
        if tier1 and self.graph.nodes[asn].tier != Tier.TIER1:
            self._rehome_single(asn, rng.choice(tier1))

    def _rehome_to_second_tier(self, asn: int, rng: random.Random) -> None:
        """Home ``asn`` under a second-tier transit (one that itself buys
        transit from other transits), falling back to any transit."""
        if self.graph.nodes[asn].tier == Tier.TIER1:
            return
        second_tier = [
            other
            for other, node in self.graph.nodes.items()
            if node.tier == Tier.TRANSIT
            and other != asn
            and any(
                self.graph.nodes[p].tier == Tier.TRANSIT
                for p in self.graph.providers(other)
            )
        ]
        if second_tier:
            self._rehome_single(asn, rng.choice(second_tier))

    def _ensure_multihomed(self, asn: int) -> Set[int]:
        """Give ``asn`` a second provider if it has only one."""
        if len(self.graph.providers(asn)) < 2:
            self._add_provider(asn)
        return self._announce_targets(asn)

    def _transit_above(self, asn: int, rng: random.Random) -> Optional[int]:
        providers = self.graph.providers(asn)
        if not providers:
            return None
        return rng.choice(providers)

    def _global_egress(self, rule_holder: int) -> Tuple[List[int], List[int]]:
        """(globally-propagating egresses, all egresses) of a transit.

        A provider egress always propagates globally; a peer egress only
        does when the rule holder is transit-free (Tier-1 clique), since
        ordinary peer routes stay in the peer's customer cone.
        """
        providers = sorted(self.graph.providers(rule_holder))
        peers = sorted(self.graph.peers(rule_holder))
        if providers:
            global_egress = providers
        elif self.graph.nodes[rule_holder].tier == Tier.TIER1:
            global_egress = peers
        else:
            global_egress = []
        return global_egress, providers + peers

    def _make_tagged_unit(self, policy: OriginPolicy, members: List[Prefix],
                          mechanism: str, rng: random.Random) -> Optional[PolicyUnit]:
        """A unit whose TE tag transits act on (distance 3 or 4 splits).

        *Shallow* (distance 3): every provider of the origin pins the
        tagged unit to one of its own egresses — a "prefer egress X"
        community.  Vantage points whose untagged path used a different
        egress diverge right after the provider.

        *Deep* (distance 4+): a "do not announce to these networks"
        community — the chosen upper-tier ASes are blocked at *every*
        upstream of the origin's providers, so no equal-length detour at
        distance 3 exists and affected vantage points re-route one hop
        further out.  Announcement sets are untouched in both variants,
        keeping the early hops identical to the base unit.
        """
        asn = policy.asn
        providers = self.graph.providers(asn)
        if not providers:
            return None
        blocks: Dict[int, FrozenSet[int]] = {}
        if mechanism == MECH_TAG_SHALLOW:
            for rule_holder in sorted(providers):
                global_egress, egress = self._global_egress(rule_holder)
                if len(egress) < 2 or not global_egress:
                    continue
                # Block a varied subset so sibling tagged units end up
                # with distinct path vectors instead of merging; bias
                # toward blocking the tie-preferred egress (lowest ASN),
                # which carries most untagged paths, so the split is
                # widely visible.  Always keep one global egress open —
                # a fully stranded unit would degenerate to distance 1.
                open_egress = rng.choice(global_egress)
                candidates = [n for n in egress if n != open_egress]
                blocked = {
                    n
                    for n in candidates
                    if rng.random() < (0.85 if n == min(egress) else 0.5)
                }
                if not blocked:
                    blocked = {rng.choice(candidates)}
                blocks[rule_holder] = frozenset(blocked)
        else:
            # Collect the distance-3 layer (the providers' upstreams).
            holders: Set[int] = set()
            for provider in providers:
                holders.update(self.graph.providers(provider))
                if self.graph.nodes[provider].tier == Tier.TIER1:
                    holders.add(provider)
            if not holders:
                return None
            if all(
                self.graph.nodes[holder].tier == Tier.TIER1 for holder in holders
            ):
                # With Tier-1 rule holders most vantage points reach the
                # origin through a *shared* Tier-1 in 4 hops and never
                # cross a blocked edge; the deep split needs the extra
                # hierarchy level below the clique.
                return None
            # Victims: upper-tier ASes to suppress, drawn from the
            # primary holder's egress.
            primary = min(holders)
            global_primary, egress_primary = self._global_egress(primary)
            if len(egress_primary) < 2:
                return None
            victim_count = max(1, (len(egress_primary)) // 2)
            victims = set(rng.sample(egress_primary, victim_count))
            for rule_holder in sorted(holders):
                global_egress, egress = self._global_egress(rule_holder)
                blocked = victims.intersection(egress)
                open_left = [n for n in global_egress if n not in blocked]
                if not blocked:
                    continue
                if not open_left:
                    # Keep one global egress alive.
                    spare = rng.choice(global_egress) if global_egress else None
                    if spare is None:
                        continue
                    blocked = blocked - {spare}
                    if not blocked:
                        continue
                blocks[rule_holder] = frozenset(blocked)
        if not blocks:
            return None
        tag = self._new_tag()
        for rule_holder, blocked in blocks.items():
            transit = self.transit_policies.setdefault(
                rule_holder, TransitPolicy(rule_holder)
            )
            transit.block(tag, blocked)
        self.policy_epoch += 1
        return policy.new_unit(members, tag=tag)

    def _make_scoped_unit(self, policy: OriginPolicy, members: List[Prefix],
                          rng: random.Random) -> Optional[PolicyUnit]:
        """A unit kept regional: no first-hop transit exports it upward,
        so only vantage points inside the providers' customer cones see
        it — the atom is distinguished by its unique peer set."""
        asn = policy.asn
        providers = self.graph.providers(asn)
        if not providers:
            return None
        tag = self._new_tag()
        installed = False
        for first_hop in providers:
            egress = sorted(
                set(self.graph.providers(first_hop))
                | set(self.graph.peers(first_hop))
            )
            if not egress:
                continue
            transit = self.transit_policies.setdefault(
                first_hop, TransitPolicy(first_hop)
            )
            transit.block(tag, frozenset(egress))
            installed = True
        if not installed:
            return None
        self.policy_epoch += 1
        return policy.new_unit(members, tag=tag)

    def _assign_moas(self, family: int, rng: random.Random) -> None:
        """Pick prefixes announced by a second origin (< 5 % share)."""
        policies = [p for (fam, _), p in self.origin_policies.items() if fam == family]
        if len(policies) < 2:
            return
        total_prefixes = sum(p.prefix_count() for p in policies)
        target = int(total_prefixes * self.profile.moas_share)
        for _ in range(target):
            first = rng.choice(policies)
            if not first.units:
                continue
            unit = rng.choice(first.units)
            prefix = rng.choice(unit.prefixes)
            if prefix in self.moas_prefixes:
                continue
            second = rng.choice(policies)
            if second.asn == first.asn or not second.units:
                continue
            second_unit = rng.choice(second.units)
            if prefix not in second_unit.prefixes:
                second_unit.prefixes.append(prefix)
                second.touch()
                self.moas_prefixes[prefix] = (first.asn, second.asn)

    # ------------------------------------------------------------------
    # Collector infrastructure
    # ------------------------------------------------------------------

    def _collector_name(self, index: int) -> Tuple[str, str]:
        if index % 2 == 0:
            return ("ris", f"rrc{index // 2:02d}")
        return ("routeviews", f"route-views{(index - 1) // 2 or 2}")

    def _grow_collectors(self) -> None:
        rng = derive_rng(self.params.seed, "collectors", len(self.layout.peers))
        while len(self.layout.collectors) < self.counts.collectors:
            self.layout.collectors.append(
                self._collector_name(len(self.layout.collectors))
            )
        current_full = sum(1 for p in self.layout.peers if p.full_feed)
        current_partial = sum(1 for p in self.layout.peers if not p.full_feed)
        existing = {p.asn for p in self.layout.peers}
        candidates = [
            asn
            for asn, node in self.graph.nodes.items()
            if asn not in existing and node.tier != Tier.TIER1
        ]
        rng.shuffle(candidates)
        # Full-feed peers skew toward transit ASes, which hold full tables.
        candidates.sort(
            key=lambda a: 0 if self.graph.nodes[a].tier == Tier.TRANSIT else 1
        )
        need_full = self.counts.fullfeed_peers - current_full
        need_partial = self.counts.partial_peers - current_partial
        for _ in range(max(0, need_full)):
            if not candidates:
                break
            asn = candidates.pop(0)
            self._add_peer(asn, full_feed=True, rng=rng)
        rng.shuffle(candidates)
        for _ in range(max(0, need_partial)):
            if not candidates:
                break
            asn = candidates.pop(0)
            self._add_peer(asn, full_feed=False, rng=rng)

    def _add_peer(self, asn: int, full_feed: bool, rng: random.Random) -> PeerSpec:
        project, collector = self.layout.collectors[
            rng.randrange(len(self.layout.collectors))
        ]
        address = f"10.{(asn >> 8) & 0xFF}.{asn & 0xFF}.{len(self.layout.peers) % 250 + 1}"
        peer = PeerSpec(
            project=project,
            collector=collector,
            asn=asn,
            address=address,
            full_feed=full_feed,
            partial_fraction=1.0 if full_feed else rng.uniform(0.05, 0.8),
        )
        self.layout.peers.append(peer)
        return peer

    def _assign_artifacts(self) -> None:
        """Flag peers with the paper's A8.3 data problems.

        Windows are placed inside the longitudinal range so sanitization
        is exercised on some snapshots and idle on others.
        """
        rng = derive_rng(self.params.seed, "artifacts")
        full = [p for p in self.layout.peers if p.full_feed]
        if len(full) < 6:
            return
        chosen = rng.sample(full, 6)
        from repro.util.dates import utc_timestamp

        windows = [
            ("addpath", utc_timestamp(2020, 5), utc_timestamp(2021, 2)),
            ("addpath", utc_timestamp(2021, 2), utc_timestamp(2021, 6)),
            ("addpath", utc_timestamp(2022, 1), utc_timestamp(2022, 2)),
            ("addpath", utc_timestamp(2022, 9), utc_timestamp(2022, 10)),
            ("private_asn", utc_timestamp(2020, 11), utc_timestamp(2023, 3)),
            ("duplicates", utc_timestamp(2018, 1), utc_timestamp(2025, 1)),
        ]
        for peer, (artifact, start, end) in zip(chosen, windows):
            peer.artifact = artifact
            peer.artifact_start = start
            peer.artifact_end = end

    def artifact_peers(self, when: Optional[int] = None) -> List[PeerSpec]:
        """Peers whose artifact is active at ``when`` (default: now)."""
        moment = self.current_time if when is None else when
        return [p for p in self.layout.peers if p.artifact_active(moment)]

    # ------------------------------------------------------------------
    # Time advancement: growth + churn
    # ------------------------------------------------------------------

    def advance_to(self, when: int) -> None:
        """Move the world forward: growth at quarter boundaries + churn."""
        if when < self.current_time:
            raise ValueError("the world only moves forward")
        if when == self.current_time:
            return
        elapsed_hours = (when - self.current_time) / HOUR
        self.profile = profile_for(when)
        # Growth is quantized to quarter boundaries: within a quarter the
        # population targets are frozen, so consecutive snapshots differ
        # only by policy churn and the propagation cache stays warm.
        from repro.util.dates import quarter_start

        quarter_profile = profile_for(quarter_start(when))
        new_counts = self.params.scaled_counts(quarter_profile)
        if new_counts != self.counts:
            self._grow(new_counts, when)
            self.counts = new_counts
        self._churn(elapsed_hours)
        self.current_time = when

    # -- growth --------------------------------------------------------

    def _grow(self, target: ScaledCounts, when: int) -> None:
        rng = derive_rng(self.params.seed, "grow", when)
        self._grow_family(AF_INET, target.v4_ases, target.v4_prefixes, rng)
        if target.v6_ases:
            if when >= self._fiti_timestamp() and not self._fiti_done:
                self._fiti_event(rng)
            self._grow_family(AF_INET6, target.v6_ases, target.v6_prefixes, rng)
        if (
            target.collectors > len(self.layout.collectors)
            or target.fullfeed_peers > sum(1 for p in self.layout.peers if p.full_feed)
        ):
            self.counts = target
            self._grow_collectors()

    @staticmethod
    def _fiti_timestamp() -> int:
        from repro.util.dates import utc_timestamp

        return utc_timestamp(2021, 1, 1)

    def _fiti_event(self, rng: random.Random) -> None:
        """FITI testbed (§5.1): a burst of sibling v6-only stub ASes, each
        announcing one /32 from a common block."""
        self._fiti_done = True
        count = max(4, int(round(4096 * self.params.as_scale)))
        transits = [
            asn for asn, node in self.graph.nodes.items() if node.tier == Tier.TRANSIT
        ]
        if not transits:
            return
        cernet = rng.choice(transits)
        self.graph.nodes[cernet].ipv6_capable = True
        org_id = self._next_asn
        block = self.allocators[AF_INET6].allocate_block(
            max(20, 32 - max(1, math.ceil(math.log2(count))))
        )
        subnets = iter(block.subnets(32))
        for _ in range(count):
            asn = self._next_asn
            self._next_asn += 1
            node = self.graph.add_as(
                ASNode(asn, Tier.STUB, org_id=org_id,
                       region=self.graph.nodes[cernet].region, ipv6_capable=True)
            )
            self.graph.add_provider_link(asn, cernet)
            try:
                prefix = next(subnets)
            except StopIteration:  # pragma: no cover - block sized above
                break
            policy = OriginPolicy(asn, AF_INET6)
            self.origin_policies[(AF_INET6, asn)] = policy
            unit = policy.new_unit([prefix])
            self._init_meta(AF_INET6, asn, unit, MECH_UNIFORM, rng)

    def _family_stats(self, family: int) -> Tuple[int, int]:
        ases = 0
        prefixes = 0
        for (fam, _), policy in self.origin_policies.items():
            if fam == family:
                ases += 1
                prefixes += policy.prefix_count()
        return ases, prefixes

    def _grow_family(self, family: int, target_ases: int, target_prefixes: int,
                     rng: random.Random) -> None:
        current_ases, current_prefixes = self._family_stats(family)
        new_ases = max(0, target_ases - current_ases)

        for _ in range(new_ases):
            asn = self._pick_or_create_origin_asn(family, rng)
            if asn is None:
                break
            # Newcomers carry most of the prefix growth (fresh players
            # deaggregating from day one), keeping the evolved world's
            # granularity on the same trend as a freshly built one.
            mean_new = max(1.0, target_prefixes / max(1, target_ases) * 0.9)
            count = 1
            while rng.random() < 1.0 - 1.0 / mean_new and count < 64:
                count += 1
            self._create_origin(family, asn, count, rng)

        _, current_prefixes = self._family_stats(family)
        deficit = target_prefixes - current_prefixes
        if deficit <= 0:
            return
        policies = [
            policy for (fam, _), policy in self.origin_policies.items() if fam == family
        ]
        # New prefixes follow the era's policy granularity: mostly new
        # differentiated units (prefix fragmentation is TE-driven), with
        # a share appended to an existing unit.  Growing only by
        # appending would silently inflate mean atom size over the years.
        append_share = min(0.5, self._single_unit_share(family) * 0.8 + 0.05)
        cap = self._unit_size_cap(family)
        append_limit = max(2, int(cap * 0.5))
        # Preferential attachment: growth concentrates on already-large
        # origins (CDNs and incumbents deaggregate; small stubs stay
        # small), which keeps the per-AS prefix distribution heavy-tailed
        # and the single-atom-AS share on the paper's trend.
        weights = [max(1, policy.prefix_count()) for policy in policies]
        total_weight = sum(weights)
        cumulative = []
        running = 0
        for weight in weights:
            running += weight
            cumulative.append(running)
        import bisect

        while deficit > 0 and policies:
            position = bisect.bisect_left(
                cumulative, rng.randrange(1, total_weight + 1)
            )
            policy = policies[min(position, len(policies) - 1)]
            chunk = min(deficit, rng.choice((1, 1, 1, 1, 1, 2, 2, 3, 4)))
            fresh = self._allocate_prefixes(family, policy.asn, chunk, rng)
            target_unit = None
            if rng.random() < append_share and policy.units:
                candidates = [u for u in policy.units if len(u) + chunk <= append_limit]
                if candidates:
                    target_unit = rng.choice(candidates)
            if target_unit is not None:
                target_unit.prefixes.extend(fresh)
                policy.touch()
            else:
                self._differentiate_unit(policy, fresh, rng)
            deficit -= chunk
        self._split_oversized_units(family, rng)
        self._refresh_granularity(family, rng)

    def _refresh_granularity(self, family: int, rng: random.Random,
                             fraction: float = 0.07) -> None:
        """Re-partition a slice of origins to the era's policy granularity.

        Operators periodically overhaul their TE configuration; without
        this, origins keep their birth-era unit structure forever and the
        world's mean atom size cannot track the paper's downward trend.
        Runs at growth (quarter) boundaries only, so it reads as
        long-horizon churn, not intra-week instability.
        """
        policies = [
            policy
            for (fam, _), policy in self.origin_policies.items()
            if fam == family and policy.prefix_count() > 1
        ]
        if not policies:
            return
        sample_size = max(1, int(len(policies) * fraction))
        for policy in rng.sample(policies, min(sample_size, len(policies))):
            prefixes = policy.all_prefixes()
            for unit in list(policy.units):
                policy.remove_unit(unit)
            sizes = self._partition_sizes(len(prefixes), family, rng)
            cursor = 0
            for index, size in enumerate(sizes):
                members = prefixes[cursor : cursor + size]
                cursor += size
                if not members:
                    continue
                if index == 0:
                    base = policy.new_unit(members)
                    self._init_meta(family, policy.asn, base, MECH_UNIFORM, rng)
                else:
                    self._differentiate_unit(policy, members, rng)

    def _split_oversized_units(self, family: int, rng: random.Random) -> None:
        """Break units that outgrew the era's size cap (growth happens
        at quarter boundaries, so these membership changes look like the
        paper's long-horizon atom churn, not intra-week noise)."""
        cap = self._unit_size_cap(family)
        for (fam, asn), policy in list(self.origin_policies.items()):
            if fam != family:
                continue
            for unit in list(policy.units):
                if len(unit) <= int(cap * 1.5):
                    continue
                spill = unit.prefixes[cap:]
                del unit.prefixes[cap:]
                for start in range(0, len(spill), max(1, cap // 2)):
                    members = spill[start : start + max(1, cap // 2)]
                    if members:
                        self._differentiate_unit(policy, members, rng)
                policy.touch()

    def _pick_or_create_origin_asn(self, family: int,
                                   rng: random.Random) -> Optional[int]:
        """An AS without a policy in this family: reuse a policy-less
        existing AS when possible, otherwise grow the graph."""
        for asn, node in self.graph.nodes.items():
            if (family, asn) in self.origin_policies:
                continue
            if family == AF_INET6 and not node.ipv6_capable:
                if rng.random() < 0.5:
                    node.ipv6_capable = True
                else:
                    continue
            return asn
        asn = self._next_asn
        self._next_asn += 1
        if rng.random() < 0.06:
            add_transit_as(self.graph, rng, asn,
                           region=rng.randrange(self.params.n_regions),
                           ipv6_capable=True, peering_density=0.1)
        else:
            add_stub_as(self.graph, rng, asn,
                        region=rng.randrange(self.params.n_regions),
                        ipv6_capable=family == AF_INET6 or rng.random() < self._v6_fraction(),
                        multihoming_mean=1.3 + 0.6 * min(1.0, (self.profile.year - 2004) / 20))
        return asn

    # -- churn ---------------------------------------------------------

    def _churn(self, hours: float) -> None:
        if hours <= 0 or self.params.churn_multiplier <= 0:
            return
        rng = derive_rng(self.params.seed, "churn", self.current_time)
        profile = self.profile
        multiplier = self.params.churn_multiplier
        p_volatile = 1.0 - math.exp(-profile.hazard_volatile * multiplier * hours)
        p_stable = 1.0 - math.exp(-profile.hazard_stable * multiplier * hours)

        for (family, asn), policy in list(self.origin_policies.items()):
            for unit in list(policy.units):
                if unit not in policy.units:
                    # Removed by a sibling unit's churn (merge/oscillation).
                    continue
                meta = self._meta(family, asn, unit)
                chance = p_volatile if meta.volatile else p_stable
                if rng.random() < chance:
                    self._churn_unit(policy, unit, meta, rng)

        # Vantage-point policy changes (localized split storms, §4.4.1):
        # occasionally a VP swaps a provider, and more often it gains or
        # drops a peering — both change routing only from that VP's own
        # perspective, which is what makes most atom splits visible to a
        # single vantage point in the paper.
        p_vp = 1.0 - math.exp(
            -profile.vp_change_per_day * multiplier * hours / 24.0
        )
        p_peering = 1.0 - math.exp(
            -profile.vp_change_per_day * 30.0 * multiplier * hours / 24.0
        )
        for peer in self.layout.peers:
            if not peer.full_feed:
                continue
            if rng.random() < p_vp:
                self._change_vp_provider(peer.asn, rng)
            elif rng.random() < p_peering:
                self._toggle_vp_peering(peer.asn, rng)

    def _churn_unit(self, policy: OriginPolicy, unit: PolicyUnit,
                    meta: _UnitMeta, rng: random.Random) -> None:
        """Apply one membership or configuration change to a unit."""
        family = policy.family
        # Oscillation: volatile units preferentially undo their last move,
        # producing the fast-then-flat CAM decay the paper reports.
        if (
            meta.volatile
            and meta.last_move is not None
            and rng.random() < self.profile.oscillation_bias
        ):
            prefix, from_id, to_id = meta.last_move
            source = next((u for u in policy.units if u.unit_id == to_id), None)
            target = next((u for u in policy.units if u.unit_id == from_id), None)
            if source is not None and target is not None and prefix in source.prefixes:
                source.prefixes.remove(prefix)
                target.prefixes.append(prefix)
                if not source.prefixes:
                    policy.remove_unit(source)
                policy.touch()
                meta.last_move = (prefix, to_id, from_id)
                return
            meta.last_move = None

        roll = rng.random()
        if roll < 0.55:
            self._move_prefix(policy, unit, meta, rng)
        elif roll < 0.75 and len(policy.units) > 1:
            self._merge_unit(policy, unit, rng)
        elif roll < 0.9:
            # Re-tag / re-prepend: path change with membership intact.
            if unit.tag is not None:
                unit.prepend = {n: rng.choice((1, 2)) for n in unit.prepend} or {
                    n: 1 for n in self._announce_targets(policy.asn)
                }
            else:
                targets = self._announce_targets(policy.asn)
                if targets:
                    pick = rng.choice(sorted(targets))
                    unit.prepend[pick] = unit.prepend.get(pick, 0) % 3 + 1
            policy.touch()
        else:
            self._move_prefix(policy, unit, meta, rng)

    def _move_prefix(self, policy: OriginPolicy, unit: PolicyUnit,
                     meta: _UnitMeta, rng: random.Random) -> None:
        if not unit.prefixes:
            return
        prefix = rng.choice(unit.prefixes)
        others = [u for u in policy.units if u.unit_id != unit.unit_id]
        if others and rng.random() < 0.6:
            # TE adjustments usually move prefixes between *related*
            # traffic classes (same mechanism, different configuration),
            # whose paths differ at few vantage points — most splits are
            # therefore narrowly observed (4.4.1).
            mechanism = meta.mechanism
            related = [
                u
                for u in others
                if (m := self._unit_meta.get((policy.family, policy.asn, u.unit_id)))
                and m.mechanism == mechanism
            ]
            pool = related if related and rng.random() < 0.75 else others
            target = rng.choice(pool)
            unit.prefixes.remove(prefix)
            target.prefixes.append(prefix)
            meta.last_move = (prefix, unit.unit_id, target.unit_id)
        else:
            if len(unit.prefixes) == 1:
                return
            unit.prefixes.remove(prefix)
            fresh = self._differentiate_unit(policy, [prefix], rng, allow_rewire=False)
            meta.last_move = (prefix, unit.unit_id, fresh.unit_id)
        if not unit.prefixes:
            policy.remove_unit(unit)
        policy.touch()

    def _merge_unit(self, policy: OriginPolicy, unit: PolicyUnit,
                    rng: random.Random) -> None:
        others = [u for u in policy.units if u.unit_id != unit.unit_id]
        if not others:
            return
        target = rng.choice(others)
        target.prefixes.extend(unit.prefixes)
        unit.prefixes.clear()
        policy.remove_unit(unit)

    def _toggle_vp_peering(self, asn: int, rng: random.Random) -> None:
        """Add or remove one settlement-free peering of a vantage point.

        Peer routes only flow to the VP itself (and its customer cone),
        so the resulting path changes — and any atom splits they reveal
        — are visible almost exclusively from this vantage point.
        """
        existing = self._vp_extra_peers.get(asn)
        if existing is not None:
            if self.graph.relationship(asn, existing) == Relationship.PEER:
                self.graph.remove_link(asn, existing)
            del self._vp_extra_peers[asn]
            return
        candidates = [
            other
            for other, node in self.graph.nodes.items()
            if node.tier in (Tier.TIER1, Tier.TRANSIT)
            and other != asn
            and self.graph.relationship(asn, other) is None
        ]
        if not candidates:
            return
        target = rng.choice(candidates)
        self.graph.add_peer_link(asn, target)
        self._vp_extra_peers[asn] = target

    def _change_vp_provider(self, asn: int, rng: random.Random) -> None:
        providers = self.graph.providers(asn)
        if not providers:
            return
        old = rng.choice(providers)
        replacements = [
            candidate
            for candidate, node in self.graph.nodes.items()
            if node.tier in (Tier.TIER1, Tier.TRANSIT)
            and candidate != asn
            and self.graph.relationship(asn, candidate) is None
            and not self._would_create_provider_cycle(asn, candidate)
        ]
        if not replacements:
            return
        self.graph.replace_provider(asn, old, rng.choice(replacements))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def origins(self, family: int) -> Dict[int, OriginPolicy]:
        """{asn: OriginPolicy} for one address family."""
        return {
            asn: policy
            for (fam, asn), policy in self.origin_policies.items()
            if fam == family
        }

    def unit_mechanism(self, family: int, asn: int, unit: PolicyUnit) -> str:
        """The differentiation mechanism assigned to a unit."""
        meta = self._unit_meta.get((family, asn, unit.unit_id))
        return meta.mechanism if meta else MECH_UNIFORM

    def total_prefixes(self, family: int) -> int:
        """Prefix count across all origins of a family."""
        return self._family_stats(family)[1]

    def total_units(self, family: int) -> int:
        """Policy-unit count across all origins of a family."""
        return sum(
            len(policy.units)
            for (fam, _), policy in self.origin_policies.items()
            if fam == family
        )

    def __repr__(self) -> str:
        v4_ases, v4_prefixes = self._family_stats(AF_INET)
        v6_ases, v6_prefixes = self._family_stats(AF_INET6)
        return (
            f"World(t={self.current_time}, ASes={len(self.graph)}, "
            f"v4={v4_ases}/{v4_prefixes}p, v6={v6_ases}/{v6_prefixes}p, "
            f"peers={len(self.layout.peers)})"
        )
