"""Synthetic AS-level Internet topology.

The generator produces a tiered AS graph with Gao-Rexford business
relationships, allocates address space, and attaches per-origin routing
policies (announcement groups, prepending, TE tags) plus per-transit
selective-export rules — the mechanisms the paper identifies as the
sources of policy-atom structure.
"""

from repro.topology.addressing import AddressAllocator
from repro.topology.evolution import InternetModel, WorldParams, YearProfile, profile_for
from repro.topology.generator import GeneratorParams, generate_topology
from repro.topology.model import ASGraph, ASNode, Relationship, Tier
from repro.topology.policies import OriginPolicy, PolicyUnit, TransitPolicy

__all__ = [
    "ASGraph",
    "ASNode",
    "AddressAllocator",
    "GeneratorParams",
    "InternetModel",
    "OriginPolicy",
    "PolicyUnit",
    "Relationship",
    "Tier",
    "TransitPolicy",
    "WorldParams",
    "YearProfile",
    "generate_topology",
    "profile_for",
]
