"""Synthetic tiered Internet topology generator.

Produces a hierarchy shaped like the measured Internet: a small clique of
Tier-1 transit-free providers, a middle layer of regional transit ASes,
and a large population of stub (edge) ASes.  Flattening over time is
modelled through IXP-style peering among non-Tier-1 ASes and a rising
multihoming degree, both controlled by :class:`GeneratorParams`.

The generator is deterministic given its seed, and the same helpers are
reused by the evolution model to grow a topology incrementally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.topology.model import ASGraph, ASNode, Tier


@dataclass
class GeneratorParams:
    """Knobs of the synthetic topology.

    ``multihoming_mean`` is the average number of providers per stub;
    ``peering_density`` the probability that a random transit pair peers
    (Tier-1s always form a full clique); ``edge_peering_density`` the
    probability that two stubs in the same region peer at an IXP.
    """

    n_tier1: int = 8
    n_transit: int = 40
    n_stub: int = 300
    n_regions: int = 4
    multihoming_mean: float = 1.4
    peering_density: float = 0.15
    edge_peering_density: float = 0.002
    #: share of transit ASes homed under other transits rather than
    #: directly under Tier-1s (a second transit tier lengthens paths)
    second_tier_share: float = 0.35
    sibling_org_fraction: float = 0.03
    sibling_org_size: int = 3
    ipv6_fraction: float = 0.0
    seed: int = 7

    def rng(self) -> random.Random:
        """A fresh RNG seeded from these parameters."""
        return random.Random(self.seed)


def _choose_provider_count(rng: random.Random, mean: float) -> int:
    """Sample a provider count >= 1 with the requested mean.

    Mixture of single-homed and geometric multi-homed tails, so the
    multihoming CDF is heavy on 1 with a realistic tail.
    """
    if mean <= 1.0:
        return 1
    extra = mean - 1.0
    count = 1
    while rng.random() < extra / (1.0 + extra) and count < 6:
        count += 1
    return count


def add_transit_as(
    graph: ASGraph,
    rng: random.Random,
    asn: int,
    region: int,
    ipv6_capable: bool,
    peering_density: float,
) -> ASNode:
    """Add one transit AS homed to 1-3 Tier-1s, peered with some transits."""
    node = graph.add_as(ASNode(asn, Tier.TRANSIT, region=region, ipv6_capable=ipv6_capable))
    tier1 = graph.tier1()
    provider_count = min(len(tier1), rng.choice((2, 2, 3, 3, 4)))
    for provider in rng.sample(tier1, provider_count):
        graph.add_provider_link(asn, provider)
    for other in graph.nodes:
        other_node = graph.nodes[other]
        if (
            other != asn
            and other_node.tier == Tier.TRANSIT
            and graph.relationship(asn, other) is None
            and rng.random() < peering_density
        ):
            graph.add_peer_link(asn, other)
    return node


def add_stub_as(
    graph: ASGraph,
    rng: random.Random,
    asn: int,
    region: int,
    ipv6_capable: bool,
    multihoming_mean: float,
    org_id: int = 0,
    preferred_provider: Optional[int] = None,
) -> ASNode:
    """Add one stub AS homed to transit ASes (preferring its region)."""
    node = graph.add_as(
        ASNode(asn, Tier.STUB, org_id=org_id, region=region, ipv6_capable=ipv6_capable)
    )
    transits = [
        other
        for other, other_node in graph.nodes.items()
        if other_node.tier == Tier.TRANSIT
    ]
    if not transits:
        transits = graph.tier1()
    local = [t for t in transits if graph.nodes[t].region == region] or transits
    provider_count = _choose_provider_count(rng, multihoming_mean)
    providers: List[int] = []
    if preferred_provider is not None and preferred_provider in graph.nodes:
        providers.append(preferred_provider)
    while len(providers) < provider_count:
        pool = local if rng.random() < 0.8 else transits
        choice = rng.choice(pool)
        if choice not in providers:
            providers.append(choice)
        elif len(providers) >= len(set(transits)):
            break
    for provider in providers:
        graph.add_provider_link(asn, provider)
    return node


def generate_topology(params: GeneratorParams) -> ASGraph:
    """Build a full topology from scratch.

    ASNs are assigned densely from 1 so tests can reason about them;
    realistic ASN values are irrelevant to every analysis in the paper.
    """
    rng = params.rng()
    graph = ASGraph()
    next_asn = 1

    # Tier-1 clique: transit-free, all mutually peered, spread over regions.
    tier1_asns: List[int] = []
    for index in range(params.n_tier1):
        asn = next_asn
        next_asn += 1
        graph.add_as(
            ASNode(
                asn,
                Tier.TIER1,
                region=index % params.n_regions,
                ipv6_capable=True,
            )
        )
        tier1_asns.append(asn)
    for i, left in enumerate(tier1_asns):
        for right in tier1_asns[i + 1 :]:
            graph.add_peer_link(left, right)

    # Transit layer.  A share of the later transits become second-tier:
    # homed under earlier (first-tier) transits instead of Tier-1s,
    # giving the hierarchy the extra depth real AS paths show.
    first_tier_transits: List[int] = []
    for index in range(params.n_transit):
        asn = next_asn
        next_asn += 1
        make_second_tier = (
            first_tier_transits
            and index >= max(4, params.n_transit // 4)
            and rng.random() < params.second_tier_share
        )
        if make_second_tier:
            node = graph.add_as(
                ASNode(
                    asn,
                    Tier.TRANSIT,
                    region=rng.randrange(params.n_regions),
                    ipv6_capable=rng.random() < max(params.ipv6_fraction, 0.5),
                )
            )
            upstream_count = min(len(first_tier_transits), rng.choice((1, 2, 2)))
            for upstream in rng.sample(first_tier_transits, upstream_count):
                graph.add_provider_link(asn, upstream)
            for other in first_tier_transits:
                if (
                    graph.relationship(asn, other) is None
                    and rng.random() < params.peering_density / 2
                ):
                    graph.add_peer_link(asn, other)
        else:
            add_transit_as(
                graph,
                rng,
                asn,
                region=rng.randrange(params.n_regions),
                ipv6_capable=rng.random() < max(params.ipv6_fraction, 0.5),
                peering_density=params.peering_density,
            )
            first_tier_transits.append(asn)

    # Stub layer, with a fraction grouped into sibling organisations that
    # chain through each other (the DoD pattern of §4.3: several sibling
    # ASes between the origin and the first non-org transit).
    stubs_remaining = params.n_stub
    while stubs_remaining > 0:
        region = rng.randrange(params.n_regions)
        ipv6 = rng.random() < params.ipv6_fraction
        if (
            rng.random() < params.sibling_org_fraction
            and stubs_remaining >= params.sibling_org_size
        ):
            org_id = next_asn
            head_asn = next_asn
            next_asn += 1
            add_stub_as(
                graph, rng, head_asn, region, ipv6, params.multihoming_mean, org_id
            )
            parent = head_asn
            for _ in range(params.sibling_org_size - 1):
                asn = next_asn
                next_asn += 1
                node = graph.add_as(
                    ASNode(asn, Tier.STUB, org_id=org_id, region=region, ipv6_capable=ipv6)
                )
                graph.add_provider_link(node.asn, parent)
                parent = asn
            stubs_remaining -= params.sibling_org_size
        else:
            asn = next_asn
            next_asn += 1
            add_stub_as(graph, rng, asn, region, ipv6, params.multihoming_mean)
            stubs_remaining -= 1

    # IXP-style peering among same-region stubs (Internet flattening).
    if params.edge_peering_density > 0:
        stubs = graph.stubs()
        target_links = int(len(stubs) * len(stubs) * params.edge_peering_density / 2)
        for _ in range(target_links):
            left, right = rng.sample(stubs, 2)
            if (
                graph.nodes[left].region == graph.nodes[right].region
                and graph.relationship(left, right) is None
            ):
                graph.add_peer_link(left, right)

    return graph
