"""Routing policies attached to the topology.

The paper identifies the mechanisms that create policy atoms:

* the origin announces different prefix groups to different neighbors
  (selective announcement) — splits at distance 1-2;
* the origin prepends differently per neighbor — splits at distance 1
  under formation-distance method (iii);
* transit ASes apply selective export driven by traffic-engineering
  communities (e.g. GTT 3257:2990 "do not announce in North America") —
  splits after the transit, at distance >= 3.

A :class:`PolicyUnit` is a group of prefixes the origin treats
identically; units are the generative precursor of atoms (atoms can
still merge units whose paths coincide everywhere, or split units whose
paths diverge through transit policy).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.bgp.attributes import Community
from repro.net.prefix import Prefix


class PolicyUnit:
    """A group of prefixes with one announcement configuration.

    Attributes
    ----------
    unit_id:
        Stable identifier, unique within the origin.
    prefixes:
        The member prefixes (all the same address family).
    announce_to:
        Neighbor ASNs the origin announces this unit to.  ``None`` means
        "all transit-providing neighbors" (providers and peers).
    prepend:
        Extra copies of the origin ASN added when announcing to a given
        neighbor (0 = no prepending).
    tag:
        Optional TE community carried by the unit's announcements;
        transit ASes may act on it (see :class:`TransitPolicy`).
    """

    __slots__ = ("unit_id", "prefixes", "announce_to", "prepend", "tag")

    def __init__(
        self,
        unit_id: int,
        prefixes: Sequence[Prefix],
        announce_to: Optional[FrozenSet[int]] = None,
        prepend: Optional[Dict[int, int]] = None,
        tag: Optional[Community] = None,
    ):
        if not prefixes:
            raise ValueError("a policy unit needs at least one prefix")
        families = {prefix.family for prefix in prefixes}
        if len(families) != 1:
            raise ValueError("a policy unit cannot mix address families")
        self.unit_id = unit_id
        self.prefixes: List[Prefix] = list(prefixes)
        self.announce_to = announce_to
        self.prepend: Dict[int, int] = dict(prepend or {})
        self.tag = tag

    @property
    def family(self) -> int:
        return self.prefixes[0].family

    def announces_to(self, neighbor: int) -> bool:
        """True if this unit is announced to ``neighbor``."""
        return self.announce_to is None or neighbor in self.announce_to

    def prepend_for(self, neighbor: int) -> int:
        """Extra origin-ASN copies when announcing to ``neighbor``."""
        return self.prepend.get(neighbor, 0)

    def config_key(self) -> Tuple:
        """Hashable announcement configuration (ignores the prefix list).

        Units of one origin with equal config keys are guaranteed to end
        up with identical path vectors, hence in one atom.
        """
        return (
            self.announce_to,
            tuple(sorted(self.prepend.items())),
            self.tag,
        )

    def __len__(self) -> int:
        return len(self.prefixes)

    def __repr__(self) -> str:
        return (
            f"PolicyUnit(id={self.unit_id}, {len(self.prefixes)} prefixes, "
            f"tag={self.tag}, announce_to={self.announce_to})"
        )


class OriginPolicy:
    """All policy units of one origin AS for one address family."""

    __slots__ = ("asn", "family", "units", "version", "_next_unit_id")

    def __init__(self, asn: int, family: int):
        self.asn = asn
        self.family = family
        self.units: List[PolicyUnit] = []
        #: bumped on every change; propagation caches key off it
        self.version = 0
        self._next_unit_id = 0

    def new_unit(
        self,
        prefixes: Sequence[Prefix],
        announce_to: Optional[FrozenSet[int]] = None,
        prepend: Optional[Dict[int, int]] = None,
        tag: Optional[Community] = None,
    ) -> PolicyUnit:
        """Create and register a unit; bumps the policy version."""
        unit = PolicyUnit(self._next_unit_id, prefixes, announce_to, prepend, tag)
        if unit.family != self.family:
            raise ValueError("unit family does not match origin policy family")
        self._next_unit_id += 1
        self.units.append(unit)
        self.version += 1
        return unit

    def remove_unit(self, unit: PolicyUnit) -> None:
        """Remove a unit; bumps the policy version."""
        self.units.remove(unit)
        self.version += 1

    def touch(self) -> None:
        """Record that a unit was modified in place."""
        self.version += 1

    def all_prefixes(self) -> List[Prefix]:
        """Every prefix across this origin's units."""
        prefixes: List[Prefix] = []
        for unit in self.units:
            prefixes.extend(unit.prefixes)
        return prefixes

    def prefix_count(self) -> int:
        """Total prefixes across this origin's units."""
        return sum(len(unit) for unit in self.units)

    def find_unit_of(self, prefix: Prefix) -> Optional[PolicyUnit]:
        """The unit containing ``prefix``, or None."""
        for unit in self.units:
            if prefix in unit.prefixes:
                return unit
        return None

    def __len__(self) -> int:
        return len(self.units)

    def __repr__(self) -> str:
        return (
            f"OriginPolicy(AS{self.asn}, v{self.family}, "
            f"{len(self.units)} units, {self.prefix_count()} prefixes)"
        )


class TransitPolicy:
    """Selective-export rules of one transit AS.

    ``rules[tag]`` is the set of neighbor ASNs toward which routes
    carrying ``tag`` are *not* exported.  This is the paper's §4.3
    mechanism: a transit T exporting one prefix to AS1 and another to
    AS2 creates two atoms that split right after T.
    """

    __slots__ = ("asn", "rules", "version")

    def __init__(self, asn: int):
        self.asn = asn
        self.rules: Dict[Community, FrozenSet[int]] = {}
        self.version = 0

    def block(self, tag: Community, neighbors: FrozenSet[int]) -> None:
        """Refuse to export routes carrying ``tag`` to ``neighbors``."""
        self.rules[tag] = frozenset(neighbors)
        self.version += 1

    def unblock(self, tag: Community) -> None:
        """Drop the rule for ``tag`` if present."""
        if tag in self.rules:
            del self.rules[tag]
            self.version += 1

    def blocks(self, tag: Optional[Community], neighbor: int) -> bool:
        """True if ``tag`` must not be exported to ``neighbor``."""
        if tag is None or not self.rules:
            return False
        blocked = self.rules.get(tag)
        return blocked is not None and neighbor in blocked

    def __bool__(self) -> bool:
        return bool(self.rules)

    def __repr__(self) -> str:
        return f"TransitPolicy(AS{self.asn}, {len(self.rules)} rules)"
