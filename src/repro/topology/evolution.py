"""Real-world anchors and growth profiles, 2002-2024.

The paper reports absolute counts (ASes, prefixes, atoms, full-feed
peers) for several anchor dates; everything else in the longitudinal
study is a trend between those anchors.  This module encodes the
anchors at *full* Internet scale and interpolates piecewise-linearly,
so the world generator can be asked "what should the Internet look
like in July 2013" and scale the answer down by the configured factor.

Calibration constants that have no directly reported value (policy-mix
shares, churn hazards) were tuned so the emergent statistics land on
the paper's tables; they are all in one place here so re-calibration is
a data edit, not a code change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.util.dates import year_fraction


@dataclass(frozen=True)
class YearProfile:
    """Full-scale Internet shape at one instant.

    Counts are real-world magnitudes (the world generator scales them);
    shares and rates are dimensionless and used as-is.
    """

    year: float

    # Population (full scale).
    v4_ases: int
    v4_prefixes: int
    v6_ases: int
    v6_prefixes: int

    # Collector infrastructure (full scale).
    collectors: int
    fullfeed_peers: int
    partial_peers: int

    # Policy granularity.
    mean_unit_size_v4: float
    mean_unit_size_v6: float
    #: probability that a multi-prefix origin keeps one uniform policy
    single_unit_share_v4: float
    single_unit_share_v6: float
    #: largest atom observed (full scale; Table 1 / Table 4)
    max_atom_v4: int
    max_atom_v6: int

    # Mechanism mix among differentiated units: how an extra unit differs
    # from its origin's base unit.  Shares sum to 1.
    mix_prepend: float
    mix_selective: float
    mix_tag_shallow: float  # transit rule right above the origin -> distance 3
    mix_tag_deep: float     # transit rule one level higher -> distance 4+

    # Stability hazards (per hour).  Two-class mixture: a small volatile
    # share with a fast hazard, the rest slow (fits the paper's
    # fast-then-flat CAM decay).
    volatile_unit_share: float
    hazard_volatile: float
    hazard_stable: float
    #: probability a volatile change reverts to the previous state
    oscillation_bias: float

    #: probability per day that a vantage-point AS changes a provider
    vp_change_per_day: float

    #: share of prefixes originated by two ASes
    moas_share: float

    #: fraction of paths carrying an AS_SET (aggregation), of which most
    #: are singletons
    as_set_share: float


#: Anchor profiles.  Population numbers for 2002/2004/2011/2024 come from
#: the paper (§3.1, Table 1, Table 4, Fig. 12/13); intermediate years are
#: consistent with public RouteViews/RIS table-size history.
_ANCHORS: List[YearProfile] = [
    YearProfile(
        year=2002.0,
        v4_ases=12_500, v4_prefixes=115_000, v6_ases=0, v6_prefixes=0,
        collectors=1, fullfeed_peers=13, partial_peers=0,
        mean_unit_size_v4=4.4, mean_unit_size_v6=1.2,
        single_unit_share_v4=0.58, single_unit_share_v6=0.9,
        max_atom_v4=900, max_atom_v6=16,
        mix_prepend=0.17, mix_selective=0.36, mix_tag_shallow=0.19, mix_tag_deep=0.12,
        volatile_unit_share=0.05, hazard_volatile=0.055, hazard_stable=4.0e-4,
        oscillation_bias=0.45,
        vp_change_per_day=0.005, moas_share=0.030, as_set_share=0.010,
    ),
    YearProfile(
        year=2004.0,
        v4_ases=16_490, v4_prefixes=131_526, v6_ases=0, v6_prefixes=0,
        collectors=8, fullfeed_peers=45, partial_peers=10,
        mean_unit_size_v4=3.84, mean_unit_size_v6=1.2,
        single_unit_share_v4=0.55, single_unit_share_v6=0.9,
        max_atom_v4=1020, max_atom_v6=16,
        mix_prepend=0.16, mix_selective=0.36, mix_tag_shallow=0.20, mix_tag_deep=0.12,
        volatile_unit_share=0.05, hazard_volatile=0.055, hazard_stable=4.0e-4,
        oscillation_bias=0.45,
        vp_change_per_day=0.005, moas_share=0.032, as_set_share=0.009,
    ),
    YearProfile(
        year=2008.0,
        v4_ases=28_000, v4_prefixes=260_000, v6_ases=1_000, v6_prefixes=1_500,
        collectors=12, fullfeed_peers=120, partial_peers=40,
        mean_unit_size_v4=3.2, mean_unit_size_v6=1.2,
        single_unit_share_v4=0.40, single_unit_share_v6=0.88,
        max_atom_v4=1400, max_atom_v6=20,
        mix_prepend=0.13, mix_selective=0.4, mix_tag_shallow=0.27, mix_tag_deep=0.09,
        volatile_unit_share=0.06, hazard_volatile=0.06, hazard_stable=4.0e-4,
        oscillation_bias=0.45,
        vp_change_per_day=0.005, moas_share=0.033, as_set_share=0.008,
    ),
    YearProfile(
        year=2011.0,
        v4_ases=36_000, v4_prefixes=360_000, v6_ases=2_938, v6_prefixes=4_178,
        collectors=14, fullfeed_peers=180, partial_peers=70,
        mean_unit_size_v4=2.9, mean_unit_size_v6=1.20,
        single_unit_share_v4=0.30, single_unit_share_v6=0.85,
        max_atom_v4=1700, max_atom_v6=32,
        mix_prepend=0.125, mix_selective=0.38, mix_tag_shallow=0.29, mix_tag_deep=0.1,
        volatile_unit_share=0.06, hazard_volatile=0.06, hazard_stable=3.8e-4,
        oscillation_bias=0.45,
        vp_change_per_day=0.005, moas_share=0.034, as_set_share=0.008,
    ),
    YearProfile(
        year=2016.0,
        v4_ases=55_000, v4_prefixes=620_000, v6_ases=12_000, v6_prefixes=32_000,
        collectors=20, fullfeed_peers=350, partial_peers=150,
        mean_unit_size_v4=2.5, mean_unit_size_v6=1.8,
        single_unit_share_v4=0.12, single_unit_share_v6=0.75,
        max_atom_v4=2200, max_atom_v6=600,
        mix_prepend=0.13, mix_selective=0.28, mix_tag_shallow=0.35, mix_tag_deep=0.13,
        volatile_unit_share=0.07, hazard_volatile=0.07, hazard_stable=3.6e-4,
        oscillation_bias=0.45,
        vp_change_per_day=0.012, moas_share=0.035, as_set_share=0.007,
    ),
    YearProfile(
        year=2020.0,
        v4_ases=68_000, v4_prefixes=860_000, v6_ases=20_000, v6_prefixes=100_000,
        collectors=24, fullfeed_peers=500, partial_peers=220,
        mean_unit_size_v4=2.3, mean_unit_size_v6=2.1,
        single_unit_share_v4=0.08, single_unit_share_v6=0.70,
        max_atom_v4=2700, max_atom_v6=1400,
        mix_prepend=0.12, mix_selective=0.22, mix_tag_shallow=0.40, mix_tag_deep=0.14,
        volatile_unit_share=0.08, hazard_volatile=0.08, hazard_stable=3.4e-4,
        oscillation_bias=0.45,
        vp_change_per_day=0.012, moas_share=0.037, as_set_share=0.006,
    ),
    YearProfile(
        year=2024.8,
        v4_ases=76_672, v4_prefixes=1_028_444, v6_ases=34_164, v6_prefixes=227_363,
        collectors=28, fullfeed_peers=600, partial_peers=300,
        mean_unit_size_v4=2.13, mean_unit_size_v6=2.41,
        single_unit_share_v4=0.05, single_unit_share_v6=0.62,
        max_atom_v4=3072, max_atom_v6=2317,
        mix_prepend=0.11, mix_selective=0.20, mix_tag_shallow=0.43, mix_tag_deep=0.15,
        volatile_unit_share=0.15, hazard_volatile=0.32, hazard_stable=4.0e-4,
        oscillation_bias=0.50,
        vp_change_per_day=0.015, moas_share=0.038, as_set_share=0.005,
    ),
]

_NUMERIC_FIELDS = [
    name for name in YearProfile.__dataclass_fields__ if name != "year"
]


def _interpolate(left: YearProfile, right: YearProfile, when: float) -> YearProfile:
    if right.year == left.year:
        return left
    weight = (when - left.year) / (right.year - left.year)
    weight = min(1.0, max(0.0, weight))
    values: Dict[str, float] = {"year": when}
    for name in _NUMERIC_FIELDS:
        low = getattr(left, name)
        high = getattr(right, name)
        value = low + (high - low) * weight
        if isinstance(low, int) and isinstance(high, int):
            value = int(round(value))
        values[name] = value
    return YearProfile(**values)  # type: ignore[arg-type]


def profile_for(timestamp: int) -> YearProfile:
    """The interpolated full-scale profile at an epoch timestamp."""
    when = year_fraction(timestamp)
    if when <= _ANCHORS[0].year:
        return replace(_ANCHORS[0], year=when)
    for left, right in zip(_ANCHORS, _ANCHORS[1:]):
        if when <= right.year:
            return _interpolate(left, right, when)
    return replace(_ANCHORS[-1], year=when)


@dataclass
class WorldParams:
    """Scale and determinism knobs of one simulated Internet.

    ``as_scale`` / ``prefix_scale`` multiply the full-scale population
    counts; ``peer_scale`` multiplies vantage-point counts (kept higher
    than the population scale because atom fidelity depends on having
    enough independent viewpoints).
    """

    seed: int = 20250701
    as_scale: float = 1.0 / 50.0
    prefix_scale: float = 1.0 / 50.0
    peer_scale: float = 0.10
    collector_scale: float = 0.35
    min_fullfeed_peers: int = 8
    min_collectors: int = 2
    n_regions: int = 4
    #: multiply all churn hazards (0 freezes the world between snapshots)
    churn_multiplier: float = 1.0
    #: enable injection of the paper's data artifacts (A8.3)
    inject_artifacts: bool = True

    def scaled_counts(self, profile: YearProfile) -> "ScaledCounts":
        """Apply the world scale to a full-size profile."""
        return ScaledCounts(
            v4_ases=max(40, int(round(profile.v4_ases * self.as_scale))),
            v4_prefixes=max(80, int(round(profile.v4_prefixes * self.prefix_scale))),
            v6_ases=int(round(profile.v6_ases * self.as_scale)),
            v6_prefixes=int(round(profile.v6_prefixes * self.prefix_scale)),
            collectors=max(
                self.min_collectors,
                int(round(profile.collectors * self.collector_scale)),
            ),
            fullfeed_peers=max(
                self.min_fullfeed_peers,
                int(round(profile.fullfeed_peers * self.peer_scale)),
            ),
            partial_peers=int(round(profile.partial_peers * self.peer_scale)),
        )


@dataclass(frozen=True)
class ScaledCounts:
    """Population targets after applying the world scale."""

    v4_ases: int
    v4_prefixes: int
    v6_ases: int
    v6_prefixes: int
    collectors: int
    fullfeed_peers: int
    partial_peers: int


#: Ready-made scales.  TINY is for unit tests, SMALL for examples and
#: quick benches, MEDIUM for the full benchmark run.
TINY_WORLD = WorldParams(as_scale=1 / 400, prefix_scale=1 / 400, peer_scale=0.05,
                         collector_scale=0.25, min_fullfeed_peers=5)
SMALL_WORLD = WorldParams(as_scale=1 / 120, prefix_scale=1 / 120, peer_scale=0.05,
                          collector_scale=0.25, min_fullfeed_peers=6)
MEDIUM_WORLD = WorldParams(as_scale=1 / 50, prefix_scale=1 / 50, peer_scale=0.08)


class InternetModel:
    """Placeholder import shim.

    The mutable world lives in :mod:`repro.topology.world`; it is
    re-exported here for the package API.  Importing lazily avoids a
    circular import with the generator helpers.
    """

    def __new__(cls, *args, **kwargs):  # pragma: no cover - thin shim
        from repro.topology.world import World

        return World(*args, **kwargs)
