"""AS-level graph with business relationships.

Relationships follow the Gao-Rexford model: every inter-AS link is either
customer-to-provider or (settlement-free) peer-to-peer.  The graph
guarantees the provider hierarchy is acyclic, which the propagation
engine relies on for termination.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, Iterator, List, Optional, Set, Tuple


class Relationship(IntEnum):
    """The relationship of a neighbor *from this AS's point of view*."""

    CUSTOMER = -1
    PEER = 0
    PROVIDER = 1


class Tier(IntEnum):
    """Coarse position in the routing hierarchy."""

    TIER1 = 1
    TRANSIT = 2
    STUB = 3


class ASNode:
    """One autonomous system.

    ``org_id`` groups sibling ASes under one organisation (e.g. the DoD
    example in §4.3, or the FITI testbed ASes in §5.1); ``region`` scopes
    region-based transit policies.
    """

    __slots__ = ("asn", "tier", "org_id", "region", "ipv6_capable")

    def __init__(
        self,
        asn: int,
        tier: Tier,
        org_id: int = 0,
        region: int = 0,
        ipv6_capable: bool = False,
    ):
        self.asn = asn
        self.tier = Tier(tier)
        self.org_id = org_id if org_id else asn
        self.region = region
        self.ipv6_capable = ipv6_capable

    def __repr__(self) -> str:
        return f"ASNode(AS{self.asn}, {self.tier.name}, region={self.region})"


class ASGraph:
    """The inter-domain topology: nodes plus typed adjacency."""

    def __init__(self) -> None:
        self.nodes: Dict[int, ASNode] = {}
        # adjacency[asn][neighbor] = relationship of neighbor seen from asn
        self._adjacency: Dict[int, Dict[int, Relationship]] = {}
        #: incremented whenever links change; propagation caches key off it
        self.version = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_as(self, node: ASNode) -> ASNode:
        """Add a node; duplicate ASNs are rejected."""
        if node.asn in self.nodes:
            raise ValueError(f"AS{node.asn} already in graph")
        self.nodes[node.asn] = node
        self._adjacency[node.asn] = {}
        return node

    def _check_known(self, asn: int) -> None:
        if asn not in self.nodes:
            raise KeyError(f"AS{asn} not in graph")

    def add_provider_link(self, customer: int, provider: int) -> None:
        """``customer`` buys transit from ``provider``."""
        self._check_known(customer)
        self._check_known(provider)
        if customer == provider:
            raise ValueError("an AS cannot be its own provider")
        existing = self._adjacency[customer].get(provider)
        if existing is not None and existing != Relationship.PROVIDER:
            raise ValueError(
                f"AS{customer}-AS{provider} already linked as {existing.name}"
            )
        self._adjacency[customer][provider] = Relationship.PROVIDER
        self._adjacency[provider][customer] = Relationship.CUSTOMER
        self.version += 1

    def add_peer_link(self, left: int, right: int) -> None:
        """Settlement-free peering between ``left`` and ``right``."""
        self._check_known(left)
        self._check_known(right)
        if left == right:
            raise ValueError("an AS cannot peer with itself")
        existing = self._adjacency[left].get(right)
        if existing is not None and existing != Relationship.PEER:
            raise ValueError(
                f"AS{left}-AS{right} already linked as {existing.name}"
            )
        self._adjacency[left][right] = Relationship.PEER
        self._adjacency[right][left] = Relationship.PEER
        self.version += 1

    def remove_link(self, left: int, right: int) -> None:
        """Remove the link between two ASes (KeyError if absent)."""
        self._check_known(left)
        self._check_known(right)
        if right not in self._adjacency[left]:
            raise KeyError(f"no link AS{left}-AS{right}")
        del self._adjacency[left][right]
        del self._adjacency[right][left]
        self.version += 1

    def replace_provider(self, customer: int, old: int, new: int) -> None:
        """Move ``customer`` from provider ``old`` to provider ``new``.

        The primitive behind VP-local policy changes (§4.4.1: a vantage
        point changing provider splits atoms from its view only).
        """
        self.remove_link(customer, old)
        self.add_provider_link(customer, new)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, asn: int) -> bool:
        return asn in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def asns(self) -> List[int]:
        """All ASNs in the graph."""
        return list(self.nodes)

    def node(self, asn: int) -> ASNode:
        """The node for ``asn`` (KeyError if unknown)."""
        return self.nodes[asn]

    def relationship(self, asn: int, neighbor: int) -> Optional[Relationship]:
        """Relationship of ``neighbor`` as seen from ``asn``, or None."""
        return self._adjacency.get(asn, {}).get(neighbor)

    def neighbors(self, asn: int) -> Dict[int, Relationship]:
        """{neighbor: relationship} seen from ``asn``."""
        return dict(self._adjacency.get(asn, {}))

    def providers(self, asn: int) -> List[int]:
        """ASes ``asn`` buys transit from."""
        return [
            n
            for n, rel in self._adjacency.get(asn, {}).items()
            if rel == Relationship.PROVIDER
        ]

    def customers(self, asn: int) -> List[int]:
        """ASes buying transit from ``asn``."""
        return [
            n
            for n, rel in self._adjacency.get(asn, {}).items()
            if rel == Relationship.CUSTOMER
        ]

    def peers(self, asn: int) -> List[int]:
        """Settlement-free peers of ``asn``."""
        return [
            n
            for n, rel in self._adjacency.get(asn, {}).items()
            if rel == Relationship.PEER
        ]

    def degree(self, asn: int) -> int:
        """Number of links incident to ``asn``."""
        return len(self._adjacency.get(asn, {}))

    def link_count(self) -> int:
        """Total links in the graph."""
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def edges(self) -> Iterator[Tuple[int, int, Relationship]]:
        """Yield each link once as (asn, neighbor, relationship-from-asn),
        with provider links reported from the customer side."""
        for asn, adjacency in self._adjacency.items():
            for neighbor, relationship in adjacency.items():
                if relationship == Relationship.PROVIDER:
                    yield (asn, neighbor, relationship)
                elif relationship == Relationship.PEER and asn < neighbor:
                    yield (asn, neighbor, relationship)

    def has_provider_cycle(self) -> bool:
        """True if the customer->provider digraph contains a cycle."""
        state: Dict[int, int] = {}  # 0 visiting, 1 done

        def visit(asn: int) -> bool:
            state[asn] = 0
            for provider in self.providers(asn):
                mark = state.get(provider)
                if mark == 0:
                    return True
                if mark is None and visit(provider):
                    return True
            state[asn] = 1
            return False

        return any(visit(asn) for asn in self.nodes if asn not in state)

    def stubs(self) -> List[int]:
        """All stub-tier ASNs."""
        return [asn for asn, node in self.nodes.items() if node.tier == Tier.STUB]

    def tier1(self) -> List[int]:
        """All Tier-1 ASNs."""
        return [asn for asn, node in self.nodes.items() if node.tier == Tier.TIER1]

    def siblings_of(self, asn: int) -> Set[int]:
        """Other ASes in ``asn``'s organisation."""
        org = self.nodes[asn].org_id
        return {
            other
            for other, node in self.nodes.items()
            if node.org_id == org and other != asn
        }
