"""Lifecycle glue for ``repro serve``: store → service → server.

:class:`ServeApp` owns the pieces a deployment needs — it opens the
:class:`~repro.store.reader.AtomStore`, builds the
:class:`~repro.serve.service.AtomQueryService` with its response
cache, and runs an :class:`~repro.serve.http.AtomServer` until asked
to stop.  Two run modes:

* :meth:`run` — the CLI foreground mode: installs SIGINT/SIGTERM
  handlers that trigger a graceful shutdown, then blocks on the event
  loop;
* :func:`serve_in_thread` — a context manager that runs the same
  stack on a background thread and yields the bound address, used by
  the tests and the load benchmark.

A store that is missing or corrupt raises
:class:`~repro.store.format.StoreError` from the constructor — before
any socket is bound — so the CLI can turn it into a one-line error.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
from typing import Callable, Iterator, Optional

from repro.serve.cache import DEFAULT_MAX_ENTRIES, ResponseCache
from repro.serve.http import AtomServer
from repro.serve.service import AtomQueryService
from repro.store.reader import AtomStore


class ServeApp:
    """One serving deployment over one on-disk atom store."""

    def __init__(
        self,
        store_dir: str,
        host: str = "127.0.0.1",
        port: int = 8642,
        cache_entries: int = DEFAULT_MAX_ENTRIES,
        verify: bool = False,
    ):
        self.store = AtomStore(store_dir, verify=verify)
        try:
            self.service = AtomQueryService(
                self.store, cache=ResponseCache(cache_entries)
            )
        except Exception:
            self.store.close()
            raise
        self.server = AtomServer(self.service, host=host, port=port)

    def close(self) -> None:
        """Release the store's mappings (idempotent)."""
        self.store.close()

    # ------------------------------------------------------------------

    async def _main(
        self,
        ready: Optional[Callable[[str, int], None]],
        stop: asyncio.Event,
    ) -> None:
        host, port = await self.server.start()
        if ready is not None:
            ready(host, port)
        try:
            await stop.wait()
        finally:
            await self.server.shutdown()

    def run(self, announce: Optional[Callable[[str], None]] = None) -> int:
        """Serve until SIGINT/SIGTERM; returns the exit code.

        ``announce`` (when given) receives one human-readable line once
        the socket is bound.
        """

        async def main() -> None:
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except (NotImplementedError, RuntimeError):
                    # Non-Unix event loops; Ctrl-C still raises below.
                    pass

            def ready(host: str, port: int) -> None:
                if announce is not None:
                    announce(
                        f"serving {self.store.root} on http://{host}:{port} "
                        f"({len(self.store.snapshots())} snapshots, "
                        f"version {self.service.version[:16]})"
                    )

            await self._main(ready, stop)

        try:
            asyncio.run(main())
        except KeyboardInterrupt:  # pragma: no cover - loop w/o handlers
            pass
        finally:
            self.close()
        return 0


class ServerHandle:
    """Address + stopper for a server running on a background thread."""

    def __init__(self, app: ServeApp):
        self.app = app
        self.host = ""
        self.port = 0
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def service(self) -> AtomQueryService:
        return self.app.service

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def ready(host: str, port: int) -> None:
                self.host, self.port = host, port
                self._ready.set()

            await self.app._main(ready, self._stop)

        try:
            asyncio.run(main())
        except BaseException as error:  # pragma: no cover - startup failure
            self._failure = error
            self._ready.set()

    def start(self, timeout: float = 10.0) -> "ServerHandle":
        """Start the thread and block until the socket is bound."""
        self._thread.start()
        if not self._ready.wait(timeout):  # pragma: no cover - hang guard
            raise RuntimeError("serve thread did not become ready")
        if self._failure is not None:
            raise RuntimeError("serve thread failed") from self._failure
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Trigger a graceful shutdown and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)


@contextlib.contextmanager
def serve_in_thread(
    store_dir: str,
    cache_entries: int = DEFAULT_MAX_ENTRIES,
    verify: bool = False,
) -> Iterator[ServerHandle]:
    """Run a full serve stack on a background thread (ephemeral port)."""
    app = ServeApp(
        str(store_dir),
        port=0,
        cache_entries=cache_entries,
        verify=verify,
    )
    handle = ServerHandle(app)
    try:
        handle.start()
        yield handle
    finally:
        handle.stop()
        app.close()
