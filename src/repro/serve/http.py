"""Async HTTP/1.1 transport for the atom query service.

A deliberately small, dependency-free server on
``asyncio.start_server``: request parsing, routing, keep-alive and
shutdown live here; every answer comes from an
:class:`~repro.serve.service.AtomQueryService`.  Response bodies are
canonical JSON (sorted keys, compact separators), so the bytes on the
wire are exactly ``encode_body(service.<endpoint>(...))`` — the parity
property the benchmarks gate on.

Caching headers: every 200 carries a strong ETag combining the store's
manifest digest (the snapshot version) with the body digest, plus the
full digest in ``X-Store-Version``.  A request whose ``If-None-Match``
lists the current ETag is answered ``304 Not Modified`` without a
body; because the ETag embeds the store version, a client can never
revalidate a response from a rebuilt store.

Shutdown is graceful: the listener closes first, in-flight responses
finish (keep-alive loops observe the closing flag), idle connections
are then disconnected, and :meth:`AtomServer.shutdown` returns only
when every connection handler has exited.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.obs import get_tracer
from repro.serve.service import AtomQueryService, QueryError
from repro.store.format import StoreError

#: Longest request line / header line accepted (bytes).
MAX_LINE = 8192

#: Largest request body accepted (the API is GET-only; bodies are drained).
MAX_BODY = 65536

SERVER_NAME = "repro-serve"

_STATUS_TEXT = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def encode_body(payload: Any) -> bytes:
    """Canonical JSON bytes of one response payload."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def etag_for(store_version: str, body: bytes) -> str:
    """Strong ETag: snapshot version + content digest."""
    content = hashlib.sha256(body).hexdigest()
    return f'"{store_version[:16]}-{content[:16]}"'


class _Request:
    """One parsed request: method, split target, headers."""

    __slots__ = ("method", "path", "query", "headers")

    def __init__(self, method: str, target: str, headers: Dict[str, str]):
        split = urlsplit(target)
        self.method = method
        self.path = unquote(split.path)
        self.query = {
            name: values[-1]
            for name, values in parse_qs(split.query).items()
        }
        self.headers = headers


class AtomServer:
    """Serves one :class:`AtomQueryService` over HTTP/1.1.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`.  The server never touches the store concurrently
    with an answer in a way the reader cannot take — all reads go
    through the service layer, which is safe for the event loop's
    serialized access.
    """

    def __init__(
        self,
        service: AtomQueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._closing = False
        self._handlers: set = set()
        self._busy: set = set()
        self._writers: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.host, self.port = sockets[0].getsockname()[:2]
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("serve.started")
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Accept connections until cancelled (CLI foreground mode)."""
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Stop accepting, let in-flight responses finish, disconnect.

        Idempotent; returns once every connection handler has exited.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections sit in readline(); closing their
        # transports unblocks them.  Busy ones finish their response
        # first (the handler loop re-checks the closing flag).
        for writer in list(self._writers):
            if writer not in self._busy:
                writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("serve.stopped")

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self._writers.add(writer)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("serve.connections")
        try:
            while not self._closing:
                request = await self._read_request(reader)
                if request is None:
                    break
                self._busy.add(writer)
                try:
                    response, keep_alive = self._respond(request)
                    writer.write(response)
                    await writer.drain()
                    if tracer.enabled:
                        tracer.count("serve.bytes_sent", len(response))
                finally:
                    self._busy.discard(writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_Request]:
        """Parse one request; None on EOF / malformed framing."""
        line = await reader.readline()
        if not line or len(line) > MAX_LINE:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if not raw or len(raw) > MAX_LINE:
                return None
            if raw in (b"\r\n", b"\n"):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None:
            try:
                pending = min(int(length), MAX_BODY)
            except ValueError:
                return None
            if pending:
                await reader.readexactly(pending)
        return _Request(method, target, headers)

    # ------------------------------------------------------------------
    # Routing + rendering
    # ------------------------------------------------------------------

    def _route(self, request: _Request) -> Tuple[int, Any]:
        """(status, payload) for one request."""
        path = request.path
        snapshot = request.query.get("snapshot")
        if path == "/healthz":
            return 200, {
                "status": "ok",
                "store_version": self.service.version,
                "cache": self.service.cache.stats(),
            }
        if path == "/v1/stats":
            return 200, self.service.stats()
        if path.startswith("/v1/prefix/"):
            cidr = path[len("/v1/prefix/"):]
            return 200, self.service.prefix_query(cidr, snapshot=snapshot)
        if path.startswith("/v1/atom/"):
            raw = path[len("/v1/atom/"):]
            try:
                atom_id = int(raw)
            except ValueError:
                raise QueryError(f"invalid atom id {raw!r}") from None
            return 200, self.service.atom_query(atom_id, snapshot=snapshot)
        raise QueryError(f"no such endpoint {path!r}", status=404)

    def _respond(self, request: _Request) -> Tuple[bytes, bool]:
        """Render one request into response bytes + keep-alive flag."""
        tracer = get_tracer()
        keep_alive = request.headers.get("connection", "").lower() != "close"
        with tracer.span(
            "serve-request", method=request.method, path=request.path
        ) as span:
            if tracer.enabled:
                tracer.count("serve.requests")
            cacheable = False
            try:
                if request.method != "GET":
                    status, payload = 405, {
                        "error": f"method {request.method} not allowed"
                    }
                else:
                    status, payload = self._route(request)
                    cacheable = request.path != "/healthz"
            except QueryError as error:
                status, payload = error.status, {"error": str(error)}
            except StoreError as error:
                status, payload = 500, {"error": f"store error: {error}"}
                if tracer.enabled:
                    tracer.count("serve.store_errors")
            body = encode_body(payload)
            headers = [
                ("Server", SERVER_NAME),
                ("Content-Type", "application/json"),
                ("X-Store-Version", self.service.version),
            ]
            if status == 200 and cacheable:
                etag = etag_for(self.service.version, body)
                if self._etag_matches(request, etag):
                    status = 200  # for the span attr below
                    if tracer.enabled:
                        tracer.count("serve.responses_304")
                    response = self._frame(
                        304, headers + [("ETag", etag)], b"", keep_alive
                    )
                    span.set(status=304)
                    return response, keep_alive
                headers.append(("ETag", etag))
            if status >= 400 and tracer.enabled:
                tracer.count("serve.errors")
            span.set(status=status)
            return self._frame(status, headers, body, keep_alive), keep_alive

    @staticmethod
    def _etag_matches(request: _Request, etag: str) -> bool:
        raw = request.headers.get("if-none-match")
        if raw is None:
            return False
        candidates = {item.strip() for item in raw.split(",")}
        return etag in candidates or "*" in candidates

    @staticmethod
    def _frame(status, headers, body: bytes, keep_alive: bool) -> bytes:
        lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        if status != 304:
            lines.append(f"Content-Length: {len(body)}")
        lines.append(
            f"Connection: {'keep-alive' if keep_alive else 'close'}"
        )
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head if status == 304 else head + body
