"""LRU + content-addressed response caching for ``repro serve``.

Every endpoint response is a pure function of (store content version,
endpoint, parameters), so responses are cached under the same
content-addressing primitive the execution engine uses for job results
(:func:`repro.engine.cache.content_digest` — the v3 canonical form
whose digests cannot collide across distinct parameter sets).  The
cache itself is a bounded LRU: an ``OrderedDict`` under a lock, moved
to the tail on hit, evicted from the head past ``max_entries``.

Hits and misses are reported both on the instance (``hits`` /
``misses``, for ``/v1/stats``) and as ``serve.cache_hits`` /
``serve.cache_misses`` obs counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

from repro.engine.cache import content_digest
from repro.obs import get_tracer

#: Salt for serve response digests; bump when response shapes change so
#: a mixed-version deployment can never serve a stale shape.
SERVE_SALT = "repro-serve-v1"

#: Default maximum cached responses.
DEFAULT_MAX_ENTRIES = 1024


def response_key(endpoint: str, params: Any, store_version: str) -> str:
    """Content-addressed cache key for one endpoint response."""
    return content_digest(
        {
            "endpoint": endpoint,
            "params": params,
            "store": store_version,
        },
        salt=SERVE_SALT,
    )


class ResponseCache:
    """A bounded, thread-safe LRU keyed by :func:`response_key` digests."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Tuple[bool, Optional[Any]]:
        """``(hit, value)`` for ``key``; a hit refreshes its LRU slot.

        The flag distinguishes a cached ``None`` response from a miss.
        """
        tracer = get_tracer()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                value = self._entries[key]
                hit = True
            else:
                self.misses += 1
                value, hit = None, False
        if tracer.enabled:
            tracer.count("serve.cache_hits" if hit else "serve.cache_misses")
        return hit, value

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU tail past cap."""
        tracer = get_tracer()
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted and tracer.enabled:
            tracer.count("serve.cache_evictions", evicted)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss/size snapshot (surfaced by ``/v1/stats``)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
            }
