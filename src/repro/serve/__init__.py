"""``repro serve``: an async atom query service over the on-disk store.

The first read-traffic subsystem (ROADMAP item 2): a long-running,
dependency-free HTTP/JSON server that answers per-prefix, per-atom and
aggregate queries from a reopened
:class:`~repro.store.reader.AtomStore` — the serve-measurements-at-
scale shape of bgproutes.io, built on the store's millisecond reopen.

* :class:`AtomQueryService` (:mod:`repro.serve.service`) — the
  transport-free query core: prefix-trie shard routing
  (:class:`ShardRouter`), stability histories, churn timelines,
  split/merge series;
* :class:`ResponseCache` (:mod:`repro.serve.cache`) — bounded LRU over
  content-addressed response digests (the engine cache's v3 canonical
  form);
* :class:`AtomServer` (:mod:`repro.serve.http`) — the
  ``asyncio.start_server`` transport: keep-alive, snapshot-version
  ETags / 304 revalidation, graceful shutdown;
* :class:`ServeApp` / :func:`serve_in_thread`
  (:mod:`repro.serve.app`) — lifecycle glue for the CLI, the tests and
  the load benchmark.

Endpoints and semantics are documented in ``docs/serving.md``; the
load benchmark emits ``benchmarks/output/BENCH_serve.json``.
"""

from repro.serve.app import ServeApp, ServerHandle, serve_in_thread
from repro.serve.cache import ResponseCache, response_key
from repro.serve.http import AtomServer, encode_body, etag_for
from repro.serve.service import (
    AtomQueryService,
    QueryError,
    ShardRouter,
    covering_prefix,
)

__all__ = [
    "AtomQueryService",
    "AtomServer",
    "QueryError",
    "ResponseCache",
    "ServeApp",
    "ServerHandle",
    "ShardRouter",
    "covering_prefix",
    "encode_body",
    "etag_for",
    "response_key",
    "serve_in_thread",
]
