"""The atom query service: store-backed answers for ``repro serve``.

:class:`AtomQueryService` is the transport-free core of the serve
subsystem — the HTTP layer (:mod:`repro.serve.http`) is a thin codec
around it, so every response can be checked for parity against direct
:class:`~repro.store.reader.AtomStore` reads without a socket.

Three endpoint families, all pure functions of the opened store:

* :meth:`~AtomQueryService.prefix_query` — which atom holds a prefix,
  the member path vector, and the prefix's stability history across
  every stored snapshot;
* :meth:`~AtomQueryService.atom_query` — one atom's member prefixes
  and its formation/churn timeline across the base snapshots;
* :meth:`~AtomQueryService.stats` — store-wide aggregates: per-snapshot
  atom counts plus the split/merge series between consecutive base
  snapshots.

Point lookups route through a :class:`ShardRouter`: a per-snapshot
:class:`~repro.net.trie.PrefixTrie` built from the manifest's shard
ranges maps a query prefix to its candidate shards in O(prefix bits),
so a lookup touches one shard segment instead of scanning the shard
list — the same structure that lets a multi-box deployment route
requests before opening any segment.  Responses are memoised in a
:class:`~repro.serve.cache.ResponseCache` under content-addressed keys
salted with the store's manifest digest, so a rebuilt store can never
serve a stale response.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.net.prefix import Prefix, PrefixError
from repro.net.trie import PrefixTrie
from repro.obs import get_tracer
from repro.serve.cache import ResponseCache, response_key
from repro.store.format import StoreError
from repro.store.reader import AtomStore, ShardInfo, StoreSnapshot


class QueryError(ValueError):
    """A client-side query problem; ``status`` is the HTTP mapping."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def covering_prefix(first: Prefix, last: Prefix) -> Prefix:
    """The shortest prefix containing every prefix in ``[first, last]``.

    Shards cover contiguous ranges of the sorted prefix universe; the
    common leading bits of the endpoints (capped by their own lengths)
    bound everything between them, so one trie entry per shard routes
    the whole range.  A range spanning the top of the tree degrades to
    the zero-length default route — the trie handles it as a root
    value.
    """
    if first.family != last.family:
        raise ValueError("shard endpoints must share an address family")
    common = first.max_length - (first.network ^ last.network).bit_length()
    length = min(common, first.length, last.length)
    return Prefix.from_host_bits(first.family, first.network, length)


class ShardRouter:
    """Prefix-trie routing from a query prefix to its candidate shards.

    Built once per snapshot from the manifest only (no segment is
    mapped): each shard's covering prefix is inserted into a per-family
    trie, valued with the shard indices it covers.  :meth:`route` walks
    the one branch under the query prefix, unions the shard lists, and
    keeps the shards whose exact ``[first, last]`` range covers the
    prefix — identical candidates to a linear scan, found in
    O(prefix bits).
    """

    def __init__(self, entry: StoreSnapshot):
        self.key = entry.key
        self._shards = entry.shards
        self._tries: Dict[int, PrefixTrie[List[int]]] = {}
        for index, shard in enumerate(entry.shards):
            cover = covering_prefix(shard.first, shard.last)
            trie = self._tries.get(cover.family)
            if trie is None:
                trie = self._tries[cover.family] = PrefixTrie(cover.family)
            existing = trie.get(cover)
            if existing is None:
                trie.insert(cover, [index])
            else:
                existing.append(index)

    def route(self, prefix: Prefix) -> List[ShardInfo]:
        """Covering shards for ``prefix``, in manifest (sorted) order."""
        trie = self._tries.get(prefix.family)
        if trie is None:
            return []
        candidates: Set[int] = set()
        for _cover, indices in trie.matches(prefix):
            candidates.update(indices)
        return [
            self._shards[index]
            for index in sorted(candidates)
            if self._shards[index].covers(prefix)
        ]


def peer_label(peer: Tuple[str, int, str]) -> Dict[str, Any]:
    """JSON shape of one vantage point."""
    collector, asn, address = peer
    return {"collector": collector, "asn": asn, "address": address}


class AtomQueryService:
    """Answers prefix/atom/stats queries over one open :class:`AtomStore`.

    The service never mutates the store; every answer is deterministic
    given the store's :meth:`~AtomStore.manifest_digest`, which is why
    the response cache and the HTTP ETags both key on it.
    """

    def __init__(
        self,
        store: AtomStore,
        cache: Optional[ResponseCache] = None,
    ):
        self.store = store
        self.cache = cache if cache is not None else ResponseCache()
        self.version = store.manifest_digest()
        self._routers: Dict[str, ShardRouter] = {}
        self._prefix_sets: Dict[str, Set[FrozenSet[Prefix]]] = {}
        entries = store.snapshots()
        if not entries:
            raise StoreError("store holds no snapshots")
        self._entries = entries
        self._base_entries = [e for e in entries if e.role == "base"]
        self.default_key = entries[0].key

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _entry(self, key: Optional[str]) -> StoreSnapshot:
        if key is None:
            key = self.default_key
        try:
            return self.store.snapshot(key)
        except StoreError as error:
            raise QueryError(str(error), status=404) from None

    def _router(self, key: str) -> ShardRouter:
        router = self._routers.get(key)
        if router is None:
            router = self._routers[key] = ShardRouter(self.store.snapshot(key))
            tracer = get_tracer()
            if tracer.enabled:
                tracer.count("serve.routers_built")
        return router

    def _routed_query(self, prefix: Prefix, key: str):
        return self.store.query(
            prefix, key=key, shards=self._router(key).route(prefix)
        )

    def _parse_prefix(self, text: str) -> Prefix:
        try:
            return Prefix.parse(text)
        except PrefixError as error:
            raise QueryError(f"invalid prefix {text!r}: {error}") from None

    def _cached(self, endpoint: str, params: Any, compute):
        key = response_key(endpoint, params, self.version)
        hit, value = self.cache.get(key)
        if hit:
            return value
        value = compute()
        self.cache.put(key, value)
        return value

    def _prefix_set(self, key: str) -> Set[FrozenSet[Prefix]]:
        """The CAM comparison key of one snapshot, memoised."""
        found = self._prefix_sets.get(key)
        if found is None:
            found = self._prefix_sets[key] = self.store.atoms(
                key
            ).prefix_sets()
        return found

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def prefix_query(
        self, cidr: str, snapshot: Optional[str] = None
    ) -> Dict[str, Any]:
        """``/v1/prefix/<cidr>``: atom id, member paths, stability history.

        ``history`` holds one row per stored snapshot (all roles, sweep
        order); ``stability`` summarises it: how many snapshots carry
        the prefix and how many consecutive-snapshot transitions changed
        its path vector.
        """
        prefix = self._parse_prefix(cidr)
        entry = self._entry(snapshot)

        def compute() -> Dict[str, Any]:
            tracer = get_tracer()
            with tracer.span(
                "serve-prefix", prefix=str(prefix), snapshot=entry.key
            ):
                found = self._routed_query(prefix, entry.key)
                atom: Optional[Dict[str, Any]] = None
                location: Optional[Dict[str, Any]] = None
                if found is not None:
                    atom = {
                        "id": found.atom_id,
                        "paths": [
                            {
                                **peer_label(peer),
                                "path": None if path is None else str(path),
                            }
                            for peer, path in zip(
                                entry.vantage_points, found.paths
                            )
                        ],
                    }
                    location = {"shard": found.shard, "row": found.row}
                history: List[Dict[str, Any]] = []
                vectors: List[Optional[Tuple[Optional[str], ...]]] = []
                for other in self._entries:
                    row = self._routed_query(prefix, other.key)
                    history.append(
                        {
                            "snapshot": other.key,
                            "label": other.label,
                            "role": other.role,
                            "year": other.year,
                            "atom_id": None if row is None else row.atom_id,
                        }
                    )
                    vectors.append(
                        None
                        if row is None
                        else tuple(
                            None if path is None else str(path)
                            for path in row.paths
                        )
                    )
                present = sum(1 for vector in vectors if vector is not None)
                path_changes = sum(
                    1
                    for before, after in zip(vectors, vectors[1:])
                    if before is not None
                    and after is not None
                    and before != after
                )
                return {
                    "prefix": str(prefix),
                    "snapshot": entry.key,
                    "atom": atom,
                    "location": location,
                    "history": history,
                    "stability": {
                        "snapshots": len(self._entries),
                        "present": present,
                        "path_changes": path_changes,
                    },
                }

        return self._cached(
            "prefix", {"prefix": str(prefix), "snapshot": entry.key}, compute
        )

    def atom_query(
        self, atom_id: int, snapshot: Optional[str] = None
    ) -> Dict[str, Any]:
        """``/v1/atom/<id>``: member prefixes + formation/churn timeline.

        The timeline walks the base snapshots in sweep order and maps
        this atom's member prefixes through each one: ``present`` is
        how many members exist there, ``atoms_spanned`` how many atoms
        they are scattered across, ``intact`` whether an atom with this
        exact prefix set exists (the CAM criterion) — together, when
        the members condensed into one atom and when churn split them.
        """
        entry = self._entry(snapshot)
        if atom_id < 0 or atom_id >= entry.atom_count:
            raise QueryError(
                f"snapshot {entry.key!r} has no atom {atom_id} "
                f"(ids 0..{entry.atom_count - 1})",
                status=404,
            )

        def compute() -> Dict[str, Any]:
            tracer = get_tracer()
            with tracer.span(
                "serve-atom", atom=atom_id, snapshot=entry.key
            ):
                atoms = self.store.atoms(entry.key)
                atom = atoms.atoms[atom_id]
                members = sorted(atom.prefixes, key=Prefix.key)
                timeline: List[Dict[str, Any]] = []
                for base in self._base_entries:
                    other = self.store.atoms(base.key)
                    spanned = {
                        other.by_prefix[prefix].atom_id
                        for prefix in members
                        if prefix in other.by_prefix
                    }
                    timeline.append(
                        {
                            "snapshot": base.key,
                            "label": base.label,
                            "year": base.year,
                            "present": sum(
                                1
                                for prefix in members
                                if prefix in other.by_prefix
                            ),
                            "atoms_spanned": len(spanned),
                            "intact": atom.prefixes
                            in self._prefix_set(base.key),
                        }
                    )
                return {
                    "snapshot": entry.key,
                    "atom": {
                        "id": atom.atom_id,
                        "size": atom.size,
                        "prefixes": [str(prefix) for prefix in members],
                        "origins": sorted(atom.origins()),
                        "paths": [
                            {
                                **peer_label(peer),
                                "path": None if path is None else str(path),
                            }
                            for peer, path in zip(
                                entry.vantage_points, atom.paths
                            )
                        ],
                    },
                    "timeline": timeline,
                }

        return self._cached(
            "atom", {"atom": atom_id, "snapshot": entry.key}, compute
        )

    def stats(self) -> Dict[str, Any]:
        """``/v1/stats``: store aggregates plus split/merge series.

        Between each consecutive pair of base snapshots, ``splits``
        counts atoms whose members scatter over several later atoms and
        ``merges`` counts later atoms drawing members from several
        earlier ones — the sweep's churn signature, computed from the
        reconstructed (memoised) atom sets.
        """

        def compute() -> Dict[str, Any]:
            tracer = get_tracer()
            with tracer.span("serve-stats", snapshots=len(self._entries)):
                atom_counts = [
                    [base.year, base.atom_count]
                    for base in self._base_entries
                ]
                prefix_counts = [
                    [base.year, base.prefixes] for base in self._base_entries
                ]
                splits: List[List[Any]] = []
                merges: List[List[Any]] = []
                for before, after in zip(
                    self._base_entries, self._base_entries[1:]
                ):
                    first = self.store.atoms(before.key)
                    second = self.store.atoms(after.key)
                    targets: Dict[int, Set[int]] = {}
                    sources: Dict[int, Set[int]] = {}
                    for atom in first:
                        for prefix in atom.prefixes:
                            landed = second.by_prefix.get(prefix)
                            if landed is None:
                                continue
                            targets.setdefault(atom.atom_id, set()).add(
                                landed.atom_id
                            )
                            sources.setdefault(landed.atom_id, set()).add(
                                atom.atom_id
                            )
                    splits.append(
                        [
                            after.year,
                            sum(1 for t in targets.values() if len(t) > 1),
                        ]
                    )
                    merges.append(
                        [
                            after.year,
                            sum(1 for s in sources.values() if len(s) > 1),
                        ]
                    )
                return {
                    "store": {
                        "version": self.version,
                        "snapshots": len(self._entries),
                        "base_snapshots": len(self._base_entries),
                        "segment_bytes": self.store.total_bytes(),
                        "paths": self.store.pool_options.get("path_count", 0),
                    },
                    "snapshots": [
                        {
                            "key": entry.key,
                            "label": entry.label,
                            "role": entry.role,
                            "year": entry.year,
                            "prefixes": entry.prefixes,
                            "atoms": entry.atom_count,
                        }
                        for entry in self._entries
                    ],
                    "series": {
                        "atom_counts": atom_counts,
                        "prefix_counts": prefix_counts,
                        "splits": splits,
                        "merges": merges,
                    },
                }

        return self._cached("stats", {}, compute)
