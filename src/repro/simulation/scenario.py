"""High-level facade over the simulated Internet.

``SimulatedInternet`` owns a :class:`~repro.topology.world.World` and a
propagation engine, and answers the two questions every analysis asks:

* "give me the collector RIB records at instant T" and
* "give me the update stream for the H hours after T".

Time only moves forward; asking for snapshots in chronological order
mirrors how the paper walks its 20-year archive.

This module also hosts the **convergence scenario taxonomy**: named,
seeded perturbation schedules (:data:`SCENARIOS`) applied to a
:class:`~repro.simulation.events.ConvergenceRun` — route-flap storms,
misconfigured-peer leaks, and RFC 8704-style multihoming failover.
Every scenario reverts its perturbations, so a run always reconverges
to the equilibrium state (the quiescence-parity gate).  See
``docs/simulation.md`` for the taxonomy and runnable examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.bgp.messages import RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.net.prefix import AF_INET
from repro.simulation.events import ConvergenceRun, DEFAULT_MRAI
from repro.simulation.routing import PropagationEngine
from repro.simulation.snapshot import render_rib_records, render_snapshot
from repro.simulation.updates import UpdateStreamConfig, generate_update_records
from repro.topology.evolution import WorldParams
from repro.topology.world import World
from repro.util.dates import parse_utc
from repro.util.determinism import derive_rng

TimeLike = Union[int, str]


def _as_timestamp(when: TimeLike) -> int:
    return parse_utc(when) if isinstance(when, str) else int(when)


class SimulatedInternet:
    """A deterministic, evolving Internet behind a collector-data API."""

    def __init__(self, params: Optional[WorldParams] = None,
                 start: TimeLike = "2004-01-01"):
        self.params = params or WorldParams()
        #: birth instant — with ``params`` it fully determines the world,
        #: which is what lets engine jobs rebuild it in worker processes
        self.start = _as_timestamp(start)
        self.world = World(self.params, self.start)
        self.engine = PropagationEngine(self.world.graph, self.world.transit_policies)

    # ------------------------------------------------------------------

    def advance_to(self, when: TimeLike) -> None:
        """Advance the world to ``when`` (growth + churn)."""
        self.world.advance_to(_as_timestamp(when))

    def rib_records(self, when: TimeLike, family: int = AF_INET) -> Iterator[RouteRecord]:
        """Advance to ``when`` and stream the RIB dump of all peers."""
        moment = _as_timestamp(when)
        self.world.advance_to(moment)
        return render_rib_records(self.world, self.engine, family, moment)

    def rib_snapshot(self, when: TimeLike, family: int = AF_INET) -> RIBSnapshot:
        """Advance to ``when`` and materialise the cross-peer snapshot."""
        moment = _as_timestamp(when)
        self.world.advance_to(moment)
        return render_snapshot(self.world, self.engine, family, moment)

    def update_records(
        self,
        start: TimeLike,
        hours: float = 4.0,
        family: int = AF_INET,
        config: Optional[UpdateStreamConfig] = None,
    ) -> List[RouteRecord]:
        """Advance to ``start`` and generate the following update stream."""
        moment = _as_timestamp(start)
        self.world.advance_to(moment)
        return generate_update_records(
            self.world, self.engine, moment, hours, family, config
        )

    def converge(
        self,
        when: TimeLike,
        scenario: str = "quiet",
        family: int = AF_INET,
        mrai: float = DEFAULT_MRAI,
        record_updates: bool = False,
    ) -> ConvergenceRun:
        """Build a converged event-engine run with a scenario scheduled.

        Advances the world to ``when``, settles the event engine to its
        initial quiescent state, optionally starts update recording,
        and schedules the named scenario's perturbations relative to
        that converged baseline.  The caller drives the rest:
        mid-convergence snapshots via
        :meth:`~repro.simulation.events.ConvergenceRun.run_until` /
        :meth:`~repro.simulation.events.ConvergenceRun.rib_records`,
        then :meth:`~repro.simulation.events.ConvergenceRun.run_to_quiescence`.
        """
        moment = _as_timestamp(when)
        self.world.advance_to(moment)
        run = ConvergenceRun(self.world, family=family, mrai=mrai)
        run.settle()
        settled_at = run.run_to_quiescence()
        run.narration.append(
            f"initial convergence quiescent at sim t={settled_at:.1f}s"
        )
        if record_updates:
            run.start_recording()
        run.scenario_start = run.now
        run.narration.extend(apply_scenario(run, scenario))
        return run

    # ------------------------------------------------------------------

    @property
    def current_time(self) -> int:
        """The world's current timestamp (epoch seconds, UTC)."""
        return self.world.current_time

    def __repr__(self) -> str:
        return f"SimulatedInternet({self.world!r})"


# ----------------------------------------------------------------------
# Convergence scenario taxonomy
# ----------------------------------------------------------------------

#: Signature of a scenario builder: schedules perturbations on the run
#: (relative to ``run.scenario_start``) and returns narration lines.
ScenarioBuilder = Callable[[ConvergenceRun, random.Random], List[str]]


@dataclass(frozen=True)
class ConvergenceScenario:
    """One named perturbation schedule for the event engine."""

    name: str
    summary: str
    build: ScenarioBuilder


def _flappable_units(run: ConvergenceRun) -> List[Tuple[int, int]]:
    """Local NLRIs eligible for flapping, in deterministic order."""
    nlris: List[Tuple[int, int]] = []
    for asn in sorted(run.routers):
        router = run.routers[asn]
        for unit_id in sorted(router.local_units):
            nlris.append((asn, unit_id))
    return nlris


def _scenario_quiet(run: ConvergenceRun, rng: random.Random) -> List[str]:
    """No perturbations: pure initial convergence."""
    return ["quiet: no perturbations scheduled"]


#: Flap-storm shape: cycles per unit, cycle period, and down time
#: (seconds).  The 90 s period deliberately straddles sub-minute live
#: windows so per-window churn is nonzero on both edges of a cycle.
FLAP_CYCLES = 3
FLAP_PERIOD = 90.0
FLAP_DOWN = 45.0


def _scenario_flap_storm(run: ConvergenceRun, rng: random.Random) -> List[str]:
    """Withdraw/re-announce cycles over a sample of origin units."""
    units = _flappable_units(run)
    if not units:
        return ["flap-storm: no origin units to flap"]
    count = min(5, len(units))
    chosen = sorted(rng.sample(units, count))
    base = run.scenario_start + 30.0
    for index, (origin, unit_id) in enumerate(chosen):
        start = base + 7.0 * index
        for cycle in range(FLAP_CYCLES):
            run.schedule(start + FLAP_PERIOD * cycle,
                         run.withdraw_unit, origin, unit_id)
            run.schedule(start + FLAP_PERIOD * cycle + FLAP_DOWN,
                         run.announce_unit, origin, unit_id)
    targets = ", ".join(f"AS{o}/u{u}" for o, u in chosen)
    return [
        f"flap-storm: {FLAP_CYCLES} withdraw/re-announce cycles "
        f"({FLAP_PERIOD:.0f}s period) over {count} unit(s): {targets}"
    ]


def _scenario_leak(run: ConvergenceRun, rng: random.Random) -> List[str]:
    """A misconfigured multihomed AS leaks learned routes upward."""
    candidates = [
        asn
        for asn in sorted(run.routers)
        if len(run.routers[asn].providers) >= 2 and run.routers[asn].loc_rib
    ]
    if not candidates:
        candidates = [
            asn for asn in sorted(run.routers) if run.routers[asn].providers
        ]
    if not candidates:
        return ["leak: no AS with a provider to leak to"]
    leaker = candidates[rng.randrange(len(candidates))]
    victim = min(run.routers[leaker].providers)
    start = run.scenario_start + 60.0
    stop = start + 240.0
    run.schedule(start, run.start_leak, leaker, victim)
    run.schedule(stop, run.stop_leak, leaker, victim)
    return [
        f"leak: AS{leaker} exports peer/provider routes to provider "
        f"AS{victim} between t+60s and t+300s, then retracts"
    ]


def _scenario_failover(run: ConvergenceRun, rng: random.Random) -> List[str]:
    """RFC 8704-style multihoming failover: primary link down, then back."""
    candidates = [
        asn
        for asn in sorted(run.routers)
        if len(run.routers[asn].providers) >= 2 and run.routers[asn].local_units
    ]
    if not candidates:
        return ["failover: no multihomed origin available"]
    origin = candidates[rng.randrange(len(candidates))]
    primary = min(run.routers[origin].providers)
    down = run.scenario_start + 45.0
    up = down + 300.0
    run.schedule(down, run.set_session, origin, primary, False)
    run.schedule(up, run.set_session, origin, primary, True)
    # The re-established session behaves like a fresh reset: both ends
    # resync their full tables, the multihomed origin's traffic drains
    # back from the backup provider to the primary.
    return [
        f"failover: multihomed AS{origin} loses its session to primary "
        f"provider AS{primary} at t+45s, restores it at t+345s"
    ]


#: The scenario taxonomy, keyed by CLI name.  Every scenario reverts
#: its perturbations so the run reconverges to the equilibrium state.
SCENARIOS: Dict[str, ConvergenceScenario] = {
    "quiet": ConvergenceScenario(
        "quiet",
        "no perturbations; pure initial convergence",
        _scenario_quiet,
    ),
    "flap-storm": ConvergenceScenario(
        "flap-storm",
        "withdraw/re-announce cycles over sampled origin units",
        _scenario_flap_storm,
    ),
    "leak": ConvergenceScenario(
        "leak",
        "a multihomed AS leaks peer/provider routes to a provider",
        _scenario_leak,
    ),
    "failover": ConvergenceScenario(
        "failover",
        "multihoming failover: primary provider session down, then up",
        _scenario_failover,
    ),
}


def apply_scenario(run: ConvergenceRun, name: str) -> List[str]:
    """Schedule the named scenario on ``run``; returns narration lines.

    Target picking is seeded from the run's world seed and the scenario
    name, so the same world always perturbs the same ASes.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r} (known: {known})")
    rng = derive_rng(run.seed, "scenario", name)
    return scenario.build(run, rng)
