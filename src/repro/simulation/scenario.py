"""High-level facade over the simulated Internet.

``SimulatedInternet`` owns a :class:`~repro.topology.world.World` and a
propagation engine, and answers the two questions every analysis asks:

* "give me the collector RIB records at instant T" and
* "give me the update stream for the H hours after T".

Time only moves forward; asking for snapshots in chronological order
mirrors how the paper walks its 20-year archive.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

from repro.bgp.messages import RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.net.prefix import AF_INET
from repro.simulation.routing import PropagationEngine
from repro.simulation.snapshot import render_rib_records, render_snapshot
from repro.simulation.updates import UpdateStreamConfig, generate_update_records
from repro.topology.evolution import WorldParams
from repro.topology.world import World
from repro.util.dates import parse_utc

TimeLike = Union[int, str]


def _as_timestamp(when: TimeLike) -> int:
    return parse_utc(when) if isinstance(when, str) else int(when)


class SimulatedInternet:
    """A deterministic, evolving Internet behind a collector-data API."""

    def __init__(self, params: Optional[WorldParams] = None,
                 start: TimeLike = "2004-01-01"):
        self.params = params or WorldParams()
        #: birth instant — with ``params`` it fully determines the world,
        #: which is what lets engine jobs rebuild it in worker processes
        self.start = _as_timestamp(start)
        self.world = World(self.params, self.start)
        self.engine = PropagationEngine(self.world.graph, self.world.transit_policies)

    # ------------------------------------------------------------------

    def advance_to(self, when: TimeLike) -> None:
        """Advance the world to ``when`` (growth + churn)."""
        self.world.advance_to(_as_timestamp(when))

    def rib_records(self, when: TimeLike, family: int = AF_INET) -> Iterator[RouteRecord]:
        """Advance to ``when`` and stream the RIB dump of all peers."""
        moment = _as_timestamp(when)
        self.world.advance_to(moment)
        return render_rib_records(self.world, self.engine, family, moment)

    def rib_snapshot(self, when: TimeLike, family: int = AF_INET) -> RIBSnapshot:
        """Advance to ``when`` and materialise the cross-peer snapshot."""
        moment = _as_timestamp(when)
        self.world.advance_to(moment)
        return render_snapshot(self.world, self.engine, family, moment)

    def update_records(
        self,
        start: TimeLike,
        hours: float = 4.0,
        family: int = AF_INET,
        config: Optional[UpdateStreamConfig] = None,
    ) -> List[RouteRecord]:
        """Advance to ``start`` and generate the following update stream."""
        moment = _as_timestamp(start)
        self.world.advance_to(moment)
        return generate_update_records(
            self.world, self.engine, moment, hours, family, config
        )

    # ------------------------------------------------------------------

    @property
    def current_time(self) -> int:
        return self.world.current_time

    def __repr__(self) -> str:
        return f"SimulatedInternet({self.world!r})"
