"""BGP UPDATE stream generation.

The paper analyses the four hours of updates following each quarterly
snapshot (§2.4.1) to measure how often an atom's prefixes travel in one
UPDATE message (§3.3, §4.2).  This generator produces that stream from
the world's routing state:

* *unit events* — a policy unit's route changes somewhere, so every
  affected vantage point re-announces the unit's prefixes; the prefixes
  are packed into one record (case 2, "seen in full") or split across
  records (case 3, partial), with a packing probability that declines
  mildly with unit size;
* *prefix flaps* — single-prefix noise, usually visible at one vantage
  point, which keeps multi-prefix ASes from ever being seen in full;
* *session resets* — rare full-table re-announcements from one peer.

Volatile units (the same ones driving snapshot churn) flap more often,
keeping the update stream and the stability analysis consistent.

Events are not pure refreshes: with :attr:`UpdateStreamConfig.path_change_prob`
a shared-fate event announces an *altered* AS path (an extra origin
prepend) and restores the original shortly after, and with
:attr:`UpdateStreamConfig.flap_withdraw_prob` a prefix flap is a
withdraw-then-reannounce pair.  Consumers that track selected paths —
``repro live``, :mod:`repro.core.incremental` — therefore see real
best-path changes and nonzero per-window churn, not just timestamps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.net.aspath import ASPath
from repro.net.prefix import AF_INET, Prefix
from repro.simulation.routing import PropagationEngine, Route
from repro.simulation.snapshot import _vp_tables
from repro.topology.world import PeerSpec, World
from repro.util.dates import HOUR
from repro.util.determinism import derive_rng


@dataclass
class UpdateStreamConfig:
    """Rates of the update generator (per hour unless noted)."""

    unit_event_rate_volatile: float = 0.060
    unit_event_rate_stable: float = 0.012
    prefix_flap_rate: float = 0.0015
    session_reset_prob: float = 0.01  # per peer, per window
    #: probability a global (all-VP) rather than localized event
    global_event_prob: float = 0.55
    #: base probability a unit's prefixes are packed into one record
    pack_full_base: float = 0.75
    #: per-extra-prefix decay of the packing probability
    pack_full_decay: float = 0.03
    pack_full_floor: float = 0.25
    #: probability a shared-fate event announces an altered AS path
    #: (extra origin prepend) before restoring the original — this is
    #: what makes the stream change selected paths, not just refresh
    path_change_prob: float = 0.35
    #: probability a single-prefix flap withdraws before re-announcing
    flap_withdraw_prob: float = 0.4

    @classmethod
    def for_year(cls, year: float) -> "UpdateStreamConfig":
        """Packing discipline loosens over the years (Fig. 3: the 2024
        atom curve sits below the 2004 one)."""
        drift = max(0.0, min(1.0, (year - 2004.0) / 20.0))
        return cls(pack_full_base=0.86 - 0.14 * drift)

    def pack_probability(self, size: int) -> float:
        """Probability a ``size``-prefix group travels in one record."""
        return max(
            self.pack_full_floor,
            self.pack_full_base - self.pack_full_decay * max(0, size - 2),
        )


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's method; fine for the small rates used here."""
    if lam <= 0:
        return 0
    level = 2.718281828459045 ** (-lam)
    count = 0
    product = rng.random()
    while product > level:
        count += 1
        product *= rng.random()
    return count


def _announcement(peer: PeerSpec, prefix: Prefix, route: Route) -> RouteElement:
    path = ASPath.from_asns((peer.asn,) + route.path)
    return RouteElement(ElementType.ANNOUNCEMENT, prefix, PathAttributes(path))


def _withdrawal(prefix: Prefix) -> RouteElement:
    return RouteElement(ElementType.WITHDRAWAL, prefix, None)


def _prepended(route: Route) -> Route:
    """The same route with one extra origin prepend (a longer AS path)."""
    return Route(route.pref_class, route.length + 1,
                 route.path + (route.path[-1],))


def _event_groups(world: World, tables, family: int,
                  peers: Sequence[PeerSpec]):
    """Path-vector equivalence classes of prefixes (atom precursors).

    Yields (prefixes, volatile): prefixes sharing the same AS path at
    every vantage point, flagged volatile when any contributing policy
    unit is volatile.
    """
    prefix_volatile: Dict[Prefix, bool] = {}
    for asn, policy in world.origins(family).items():
        for unit in policy.units:
            meta = world._unit_meta.get((family, asn, unit.unit_id))
            volatile = bool(meta and meta.volatile)
            for prefix in unit.prefixes:
                if volatile:
                    prefix_volatile[prefix] = True
                else:
                    prefix_volatile.setdefault(prefix, False)

    ordered_tables = [tables[peer.asn] for peer in peers]
    universe = set()
    for table in ordered_tables:
        universe.update(table)
    groups: Dict[tuple, list] = {}
    for prefix in universe:
        key = tuple(
            entry[0].path if (entry := table.get(prefix)) is not None else None
            for table in ordered_tables
        )
        groups.setdefault(key, []).append(prefix)
    for members in groups.values():
        volatile = any(prefix_volatile.get(prefix, False) for prefix in members)
        yield members, volatile


def generate_update_records(
    world: World,
    engine: PropagationEngine,
    start: int,
    hours: float = 4.0,
    family: int = AF_INET,
    config: Optional[UpdateStreamConfig] = None,
) -> List[RouteRecord]:
    """Generate the update stream for ``hours`` after ``start``.

    The world state is not advanced; transient events are drawn on top
    of the current routing state.  Records are returned time-sorted.
    """
    if config is None:
        config = UpdateStreamConfig.for_year(world.profile.year)
    rng = derive_rng(world.params.seed, "updates", start, family)
    tables = _vp_tables(world, engine, family)
    peers = [p for p in world.layout.peers if p.asn in tables]
    if not peers:
        return []
    window = int(hours * HOUR)
    records: List[RouteRecord] = []

    def emit(peer: PeerSpec, when: int, prefixes: Sequence[Prefix],
             altered: bool = False, withdraw: bool = False) -> None:
        """Append one update record for ``peer`` covering ``prefixes``."""
        table = tables[peer.asn]
        if withdraw:
            elements = [
                _withdrawal(prefix) for prefix in prefixes if prefix in table
            ]
        else:
            elements = [
                _announcement(
                    peer,
                    prefix,
                    _prepended(table[prefix][0]) if altered else table[prefix][0],
                )
                for prefix in prefixes
                if prefix in table
            ]
        if elements:
            records.append(
                RouteRecord(
                    "update",
                    peer.project,
                    peer.collector,
                    peer.asn,
                    peer.address,
                    when,
                    elements,
                )
            )

    # ---- shared-fate events ---------------------------------------------
    # A route change somewhere upstream hits every prefix that shares the
    # changed path — i.e. a whole path-vector equivalence class (a policy
    # atom), which may span several policy units that merged.  Firing per
    # *unit* would systematically split merged atoms across records and
    # erase the correlation the paper measures.
    for prefixes, volatile in _event_groups(world, tables, family, peers):
        rate = (
            config.unit_event_rate_volatile
            if volatile
            else config.unit_event_rate_stable
        )
        for _ in range(_poisson(rng, rate * hours)):
            when = start + rng.randrange(window)
            if rng.random() < config.global_event_prob:
                affected = peers
            else:
                count = max(1, int(len(peers) * rng.uniform(0.05, 0.4)))
                affected = rng.sample(peers, count)
            # An actual path change: the event announces a prepended
            # path, held for a short time, then restores the original.
            # Both legs hit the same peers so every consumer converges
            # back to the snapshot state by end of window.
            changed = rng.random() < config.path_change_prob
            hold = rng.randrange(30, 120) if changed else 0
            for peer in affected:
                carried = [
                    prefix for prefix in prefixes if prefix in tables[peer.asn]
                ]
                if not carried:
                    continue
                jitter = rng.randrange(0, 20)
                if (
                    len(carried) == 1
                    or rng.random() < config.pack_probability(len(carried))
                ):
                    emit(peer, when + jitter, carried, altered=changed)
                else:
                    split = rng.randrange(1, len(carried))
                    shuffled = carried[:]
                    rng.shuffle(shuffled)
                    emit(peer, when + jitter, shuffled[:split], altered=changed)
                    emit(peer, when + jitter + rng.randrange(1, 40),
                         shuffled[split:], altered=changed)
                if changed:
                    emit(peer, when + jitter + hold, carried)

    # ---- single-prefix flaps --------------------------------------------
    all_prefixes: List[Prefix] = []
    for policy in world.origins(family).values():
        all_prefixes.extend(policy.all_prefixes())
    flap_count = _poisson(rng, config.prefix_flap_rate * hours * len(all_prefixes))
    for _ in range(flap_count):
        prefix = rng.choice(all_prefixes)
        when = start + rng.randrange(window)
        witnesses = (
            peers
            if rng.random() < 0.1
            else rng.sample(peers, max(1, len(peers) // 20))
        )
        # A real flap: the route vanishes, then comes back.  Without
        # the withdrawal leg the "flap" would be a no-op refresh.
        flap_down = rng.random() < config.flap_withdraw_prob
        back = rng.randrange(10, 60) if flap_down else 0
        for peer in witnesses:
            if prefix in tables[peer.asn]:
                offset = rng.randrange(0, 10)
                if flap_down:
                    emit(peer, when + offset, [prefix], withdraw=True)
                    emit(peer, when + offset + back, [prefix])
                else:
                    emit(peer, when + offset, [prefix])

    # ---- session resets --------------------------------------------------
    for peer in peers:
        if rng.random() >= config.session_reset_prob:
            continue
        when = start + rng.randrange(window)
        carried = sorted(tables[peer.asn])
        for chunk_start in range(0, len(carried), 200):
            emit(peer, when + chunk_start // 200, carried[chunk_start : chunk_start + 200])

    records.sort(key=lambda record: record.timestamp)
    return records
