"""Discrete-event BGP convergence engine.

The equilibrium renderer (:mod:`repro.simulation.routing`) computes the
fixed point of Gao-Rexford route selection directly.  This module runs
the *process* that reaches it: per-AS routers exchange timed
announcements and withdrawals over a priority-queue event loop, with
per-neighbor Adj-RIB-Ins, MRAI batching, deterministic link latencies,
BGP session resets, and scheduled perturbations (flap storms, route
leaks, multihoming failover).  Mid-run, the routing state can be
rendered into collector RIB records at any sim time — capturing the
transients an equilibrium snapshot can never show.

Three properties make the engine useful for measurement experiments:

* **Determinism.**  Events are ordered by ``(time, sequence)`` with a
  globally unique sequence number, link latencies are constant per link
  and drawn from :func:`~repro.util.determinism.derive_rng`, and every
  state iteration that affects behavior walks keys in sorted order.
  Two runs of the same seeded world and scenario produce identical
  event counts, messages, and snapshots.

* **Quiescence parity.**  Routers select by ``(preference class, path
  length, path)`` — exactly the total order of
  :meth:`~repro.simulation.routing.Route.rank`.  The centralized BFS
  breaks same-length ties by lowest sender, which equals
  path-lexicographic order because competing paths differ at their
  first hop.  Gao-Rexford preferences admit a unique stable solution,
  so once the event queue drains (MRAI deadlines are passive: a send is
  only scheduled while pending updates exist, hence an empty queue
  means no pending timers), the rendered tables are value-identical to
  the equilibrium renderer's — :func:`quiescence_parity` checks this
  record for record.

* **Snapshot reuse.**  :class:`EventPropagationView` adapts router
  Loc-RIBs to the :class:`~repro.simulation.routing.RouteSource`
  interface, so :func:`~repro.simulation.snapshot.render_rib_records`
  is reused wholesale — MOAS resolution, partial feeds, and collector
  artifacts behave identically in both modes, and snapshots feed
  directly into ``compute_atoms``, ``repro.core.incremental``, and
  ``LivePipeline``.

See ``docs/simulation.md`` for the event model and scenario taxonomy.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.bgp.attributes import Community, PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.net.aspath import ASPath
from repro.net.prefix import AF_INET, Prefix
from repro.obs import get_tracer
from repro.simulation import artifacts as art
from repro.simulation.routing import (
    CLASS_CUSTOMER,
    CLASS_PEER,
    CLASS_PROVIDER,
    PropagationEngine,
    PropagationResult,
    Route,
)
from repro.simulation.snapshot import render_rib_records
from repro.topology.model import Relationship
from repro.topology.policies import OriginPolicy, PolicyUnit
from repro.topology.world import PeerSpec, World
from repro.util.determinism import derive_rng

#: One routed object: ``(origin ASN, policy-unit id)``.  Announcements
#: carry whole units (their prefixes share one configuration), matching
#: how the equilibrium engine groups messages.
NLRI = Tuple[int, int]

#: What one router advertised to one neighbor: ``(as_path, TE tag)``.
#: Paths are receiver-side table entries ``(sender, ..., origin)``.
Advert = Tuple[Tuple[int, ...], Optional[Community]]

#: Default MRAI (minimum route advertisement interval), sim seconds.
DEFAULT_MRAI = 30.0

# Event kinds; only (time, seq) participate in heap ordering.
_EV_MESSAGE = 0
_EV_SEND = 1
_EV_ACTION = 2


class ConvergenceError(RuntimeError):
    """The event loop exceeded its safety budget without quiescing."""


class SimRouter:
    """Per-AS BGP speaker state.

    Attributes
    ----------
    asn:
        The router's AS number.
    neighbor_class:
        Preference class of routes learned *from* each neighbor
        (customer < peer < provider).
    customers / providers / peers:
        Neighbor sets by business relationship.
    adj_in:
        Per-neighbor Adj-RIB-In: ``{neighbor: {nlri: (path, tag)}}``.
    loc_rib:
        Selected best routes: ``{nlri: (Route, tag)}``.
    sent:
        Advert memory per neighbor, diffed on every send so updates are
        emitted only on change and withdrawals exactly on retraction.
    pending:
        NLRIs whose advertisement toward a neighbor must be re-evaluated
        at the next send opportunity.
    mrai_ready:
        Earliest sim time the next UPDATE toward each neighbor may leave.
    suppressed:
        Locally originated unit ids currently withdrawn by a scenario.
    leak_to:
        Neighbors toward which valley-free export is (mis)configured off
        — the route-leak perturbation.
    """

    __slots__ = (
        "asn",
        "neighbor_class",
        "customers",
        "providers",
        "peers",
        "adj_in",
        "loc_rib",
        "sent",
        "pending",
        "mrai_ready",
        "send_scheduled",
        "suppressed",
        "leak_to",
        "local_units",
    )

    def __init__(self, asn: int, neighbors: Dict[int, Relationship]):
        self.asn = asn
        self.neighbor_class: Dict[int, int] = {}
        customers: Set[int] = set()
        providers: Set[int] = set()
        peers: Set[int] = set()
        for neighbor, rel in neighbors.items():
            if rel == Relationship.CUSTOMER:
                customers.add(neighbor)
                self.neighbor_class[neighbor] = CLASS_CUSTOMER
            elif rel == Relationship.PEER:
                peers.add(neighbor)
                self.neighbor_class[neighbor] = CLASS_PEER
            else:
                providers.add(neighbor)
                self.neighbor_class[neighbor] = CLASS_PROVIDER
        self.customers = frozenset(customers)
        self.providers = frozenset(providers)
        self.peers = frozenset(peers)
        self.adj_in: Dict[int, Dict[NLRI, Advert]] = {}
        self.loc_rib: Dict[NLRI, Tuple[Route, Optional[Community]]] = {}
        self.sent: Dict[int, Dict[NLRI, Advert]] = {}
        self.pending: Dict[int, Set[NLRI]] = {}
        self.mrai_ready: Dict[int, float] = {}
        self.send_scheduled: Set[int] = set()
        self.suppressed: Set[int] = set()
        self.leak_to: Set[int] = set()
        self.local_units: Dict[int, PolicyUnit] = {}

    def neighbors(self) -> FrozenSet[int]:
        """All neighbor ASNs regardless of relationship."""
        return self.customers | self.providers | self.peers

    def __repr__(self) -> str:
        return (
            f"SimRouter(AS{self.asn}, {len(self.neighbor_class)} neighbors, "
            f"{len(self.loc_rib)} routes)"
        )


class EventPropagationView:
    """Adapts router Loc-RIBs to the snapshot renderer's interface.

    Implements :class:`~repro.simulation.routing.RouteSource` by
    indexing every vantage-point router's selected routes per origin,
    cached on the run's mutation counter so consecutive renders of an
    unchanged state reuse the index.
    """

    def __init__(self, run: "ConvergenceRun"):
        self._run = run
        self._stamp: Optional[Tuple[int, FrozenSet[int]]] = None
        self._index: Dict[int, PropagationResult] = {}

    def routes(self, policy: OriginPolicy, targets: FrozenSet[int]) -> PropagationResult:
        """Selected routes of one origin's units at the target ASes."""
        run = self._run
        stamp = (run.mutations, targets)
        if stamp != self._stamp:
            index: Dict[int, PropagationResult] = {}
            for vp_asn in sorted(targets):
                router = run.routers.get(vp_asn)
                if router is None:
                    continue
                for (origin, unit_id), (route, _tag) in router.loc_rib.items():
                    index.setdefault(origin, {}).setdefault(vp_asn, {})[unit_id] = route
            self._index = index
            self._stamp = stamp
        return self._index.get(policy.asn, {})


class ConvergenceRun:
    """One discrete-event convergence experiment over a frozen world.

    The world is not advanced during the run; sim time is seconds
    relative to ``world.current_time``.  Typical flow::

        run = ConvergenceRun(world)
        run.settle()                  # origins start announcing
        run.run_to_quiescence()       # initial convergence
        run.schedule(run.now + 60, run.withdraw_unit, asn, unit_id)
        run.run_until(run.now + 90)   # ... mid-convergence snapshots ...
        run.run_to_quiescence()

    Perturbation primitives (:meth:`withdraw_unit`,
    :meth:`announce_unit`, :meth:`set_session`, :meth:`reset_session`,
    :meth:`start_leak`, :meth:`stop_leak`) may be called directly or
    via :meth:`schedule`; the scenario taxonomy in
    :mod:`repro.simulation.scenario` composes them.
    """

    def __init__(
        self,
        world: World,
        family: int = AF_INET,
        mrai: float = DEFAULT_MRAI,
        seed: Optional[int] = None,
        record_updates: bool = False,
    ):
        self.world = world
        self.family = family
        self.mrai = float(mrai)
        self.seed = world.params.seed if seed is None else seed
        self.start_ts = world.current_time
        self.now = 0.0
        #: sim time the scenario (if any) started; set by the facade
        self.scenario_start = 0.0
        #: narration lines describing the applied scenario
        self.narration: List[str] = []
        self.record_updates = record_updates
        self.recording = False
        #: bumped on every Loc-RIB change; the render index caches on it
        self.mutations = 0
        self._seq = 0
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._latency_cache: Dict[Tuple[int, int], float] = {}
        self._session_epoch: Dict[Tuple[int, int], int] = {}
        self._down_links: Set[Tuple[int, int]] = set()
        self._update_log: List[RouteRecord] = []
        self._settled = False
        self._transit = world.transit_policies
        self.view = EventPropagationView(self)

        tracer = get_tracer()
        with tracer.span("sim.build", family=family):
            graph = world.graph
            self.routers: Dict[int, SimRouter] = {
                asn: SimRouter(asn, graph.neighbors(asn))
                for asn in sorted(graph.nodes)
            }
            self._units: Dict[NLRI, PolicyUnit] = {}
            for asn, policy in sorted(world.origins(family).items()):
                router = self.routers.get(asn)
                if router is None:
                    continue
                for unit in policy.units:
                    self._units[(asn, unit.unit_id)] = unit
                    router.local_units[unit.unit_id] = unit
            self._vp_peers: Dict[int, PeerSpec] = {}
            for peer in world.layout.peers:
                self._vp_peers.setdefault(peer.asn, peer)
            tracer.count("sim.routers", len(self.routers))

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    @property
    def is_quiescent(self) -> bool:
        """True when no event (hence no MRAI deadline) is outstanding."""
        return not self._heap

    def _push(self, when: float, kind: int, payload: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, kind, payload))

    def schedule(self, when: float, action: Callable[..., None], *args: Any) -> None:
        """Run ``action(*args)`` at sim time ``when`` (>= now)."""
        self._push(max(when, self.now), _EV_ACTION, (action, args))

    def _latency(self, a: int, b: int) -> float:
        key = (a, b) if a < b else (b, a)
        latency = self._latency_cache.get(key)
        if latency is None:
            # Constant per link: the session is FIFO (as over TCP), so
            # consecutive UPDATEs can never overtake each other.
            rng = derive_rng(self.seed, "sim.latency", key[0], key[1])
            latency = rng.uniform(0.01, 0.2)
            self._latency_cache[key] = latency
        return latency

    def _link_key(self, a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def _link_down(self, a: int, b: int) -> bool:
        return self._link_key(a, b) in self._down_links

    def _epoch(self, a: int, b: int) -> int:
        return self._session_epoch.get(self._link_key(a, b), 0)

    def _bump_epoch(self, a: int, b: int) -> None:
        key = self._link_key(a, b)
        self._session_epoch[key] = self._session_epoch.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Routing core
    # ------------------------------------------------------------------

    def _desired_advert(self, router: SimRouter, neighbor: int,
                        nlri: NLRI) -> Optional[Advert]:
        """What ``router`` should currently advertise to ``neighbor``.

        ``None`` means nothing (a withdrawal if something was sent
        before).  Mirrors the equilibrium engine exactly: origins
        announce only to providers and peers per the unit's
        announcement set and prepending; learned customer routes export
        everywhere, peer/provider routes to customers only (unless a
        leak is configured); transit tag filters apply at every
        non-origin export; exports never face the origin or an AS
        already on the path.
        """
        if self._link_down(router.asn, neighbor):
            return None
        origin, unit_id = nlri
        if router.asn == origin:
            unit = router.local_units.get(unit_id)
            if unit is None or unit_id in router.suppressed:
                return None
            if neighbor not in router.providers and neighbor not in router.peers:
                return None
            if not unit.announces_to(neighbor):
                return None
            path = (origin,) * (1 + unit.prepend_for(neighbor))
            return (path, unit.tag)
        entry = router.loc_rib.get(nlri)
        if entry is None:
            return None
        route, tag = entry
        if neighbor == origin or neighbor in route.path:
            return None
        if (
            route.pref_class != CLASS_CUSTOMER
            and neighbor not in router.customers
            and neighbor not in router.leak_to
        ):
            return None
        policy = self._transit.get(router.asn)
        if policy is not None and policy.blocks(tag, neighbor):
            return None
        return ((router.asn,) + route.path, tag)

    def _reselect(self, router: SimRouter, nlri: NLRI) -> bool:
        """Recompute the best route for one NLRI; True if it changed.

        Candidates never tie: same-class same-length offers from
        different neighbors differ at ``path[0]``, so ``Route.rank()``
        is a strict total order over them.
        """
        best: Optional[Route] = None
        best_tag: Optional[Community] = None
        for neighbor, table in router.adj_in.items():
            entry = table.get(nlri)
            if entry is None:
                continue
            path, tag = entry
            route = Route(router.neighbor_class[neighbor], len(path), path)
            if best is None or route.rank() < best.rank():
                best, best_tag = route, tag
        old = router.loc_rib.get(nlri)
        new = None if best is None else (best, best_tag)
        if new == old:
            return False
        if new is None:
            del router.loc_rib[nlri]
        else:
            router.loc_rib[nlri] = new
        self.mutations += 1
        return True

    def _mark_pending(self, router: SimRouter, nlris: Set[NLRI]) -> None:
        """Queue NLRIs for (re-)advertisement toward every live neighbor."""
        if not nlris:
            return
        for neighbor in sorted(router.neighbor_class):
            if self._link_down(router.asn, neighbor):
                continue
            router.pending.setdefault(neighbor, set()).update(nlris)
            self._schedule_send(router, neighbor)

    def _schedule_send(self, router: SimRouter, neighbor: int) -> None:
        if neighbor in router.send_scheduled:
            return
        ready = router.mrai_ready.get(neighbor, 0.0)
        when = self.now
        if ready > when:
            when = ready
            get_tracer().count("sim.mrai_deferred")
        router.send_scheduled.add(neighbor)
        self._push(when, _EV_SEND, (router.asn, neighbor))

    def _do_send(self, asn: int, neighbor: int) -> None:
        router = self.routers[asn]
        router.send_scheduled.discard(neighbor)
        pending = router.pending.get(neighbor)
        if not pending:
            return
        if self._link_down(asn, neighbor):
            pending.clear()
            return
        announcements: List[Tuple[NLRI, Advert]] = []
        withdrawals: List[NLRI] = []
        sent = router.sent.setdefault(neighbor, {})
        for nlri in sorted(pending):
            desired = self._desired_advert(router, neighbor, nlri)
            previous = sent.get(nlri)
            if desired == previous:
                continue
            if desired is None:
                del sent[nlri]
                withdrawals.append(nlri)
            else:
                sent[nlri] = desired
                announcements.append((nlri, desired))
        pending.clear()
        if not announcements and not withdrawals:
            return
        tracer = get_tracer()
        tracer.count("sim.messages")
        if announcements:
            tracer.count("sim.announcements", len(announcements))
        if withdrawals:
            tracer.count("sim.withdrawals", len(withdrawals))
        router.mrai_ready[neighbor] = self.now + self.mrai
        self._push(
            self.now + self._latency(asn, neighbor),
            _EV_MESSAGE,
            (neighbor, asn, self._epoch(asn, neighbor),
             tuple(announcements), tuple(withdrawals)),
        )

    def _deliver(
        self,
        receiver: int,
        sender: int,
        epoch: int,
        announcements: Tuple[Tuple[NLRI, Advert], ...],
        withdrawals: Tuple[NLRI, ...],
    ) -> None:
        if epoch != self._epoch(receiver, sender):
            # The session dropped (or reset) while the message was in
            # flight; a real TCP teardown would have discarded it too.
            get_tracer().count("sim.messages_dropped")
            return
        router = self.routers[receiver]
        adj = router.adj_in.setdefault(sender, {})
        touched: Set[NLRI] = set()
        for nlri, advert in announcements:
            adj[nlri] = advert
            touched.add(nlri)
        for nlri in withdrawals:
            if adj.pop(nlri, None) is not None:
                touched.add(nlri)
        changed = {nlri for nlri in touched if self._reselect(router, nlri)}
        if not changed:
            return
        get_tracer().count("sim.best_changes", len(changed))
        self._mark_pending(router, changed)
        if self.recording and receiver in self._vp_peers:
            self._log_updates(router, changed)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def _pump(self, until: Optional[float],
              max_events: Optional[int] = None) -> int:
        processed = 0
        heap = self._heap
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                break
            _, _, kind, payload = heapq.heappop(heap)
            if when > self.now:
                self.now = when
            processed += 1
            if kind == _EV_MESSAGE:
                self._deliver(*payload)
            elif kind == _EV_SEND:
                self._do_send(*payload)
            else:
                action, args = payload
                action(*args)
            if max_events is not None and processed >= max_events and heap:
                raise ConvergenceError(
                    f"no quiescence after {processed} events "
                    f"(sim time {self.now:.1f}s)"
                )
        if until is not None and until > self.now:
            self.now = until
        if processed:
            get_tracer().count("sim.events", processed)
        return processed

    def settle(self) -> None:
        """Schedule every origin's initial announcements (idempotent)."""
        if self._settled:
            return
        self._settled = True
        for asn in sorted(self.routers):
            router = self.routers[asn]
            if router.local_units:
                self._mark_pending(
                    router,
                    {(asn, unit_id) for unit_id in router.local_units},
                )

    def run_until(self, when: float) -> int:
        """Process every event up to sim time ``when``; returns count."""
        with get_tracer().span("sim.run", until=when) as span:
            processed = self._pump(until=when)
            span.set(events=processed, sim_time=self.now)
        return processed

    def run_to_quiescence(self, max_events: Optional[int] = 50_000_000) -> float:
        """Drain the event queue completely; returns the final sim time.

        An empty queue *is* the quiescence condition: MRAI deadlines are
        passive (send events exist only while pending updates do), so no
        events outstanding means no pending timers.  ``max_events``
        bounds runaway scenarios with a :class:`ConvergenceError`.
        """
        with get_tracer().span("sim.run") as span:
            processed = self._pump(until=None, max_events=max_events)
            span.set(events=processed, sim_time=self.now)
        return self.now

    # ------------------------------------------------------------------
    # Perturbation primitives
    # ------------------------------------------------------------------

    def withdraw_unit(self, origin: int, unit_id: int) -> None:
        """Withdraw one locally originated policy unit everywhere."""
        router = self.routers[origin]
        if unit_id in router.suppressed or unit_id not in router.local_units:
            return
        router.suppressed.add(unit_id)
        get_tracer().count("sim.unit_flaps")
        self._mark_pending(router, {(origin, unit_id)})

    def announce_unit(self, origin: int, unit_id: int) -> None:
        """Re-announce a previously withdrawn policy unit."""
        router = self.routers[origin]
        if unit_id not in router.suppressed:
            return
        router.suppressed.discard(unit_id)
        self._mark_pending(router, {(origin, unit_id)})

    def _session_resync(self, router: SimRouter, neighbor: int) -> None:
        """Queue a full re-advertisement toward ``neighbor``."""
        candidates: Set[NLRI] = set(router.loc_rib)
        candidates.update((router.asn, uid) for uid in router.local_units)
        if candidates:
            router.pending.setdefault(neighbor, set()).update(candidates)
            self._schedule_send(router, neighbor)

    def _session_clear(self, a: int, b: int) -> None:
        """Drop session state on both ends of the ``a``–``b`` link."""
        self._bump_epoch(a, b)
        for here, there in ((a, b), (b, a)):
            router = self.routers[here]
            router.sent.pop(there, None)
            router.pending.pop(there, None)
            stale = router.adj_in.pop(there, None)
            if stale:
                changed = {
                    nlri for nlri in sorted(stale) if self._reselect(router, nlri)
                }
                if changed:
                    get_tracer().count("sim.best_changes", len(changed))
                    self._mark_pending(router, changed)
                    if self.recording and here in self._vp_peers:
                        self._log_updates(router, changed)

    def set_session(self, a: int, b: int, up: bool) -> None:
        """Take the BGP session on the ``a``–``b`` link down or up.

        Going down clears both Adj-RIB-Ins and advert memory (routes
        via the link are withdrawn from the rest of the topology as the
        reselection propagates); coming up triggers a full resync, like
        a session re-establishment.
        """
        key = self._link_key(a, b)
        if up:
            if key not in self._down_links:
                return
            self._down_links.discard(key)
            for here, there in ((a, b), (b, a)):
                self._session_resync(self.routers[here], there)
        else:
            if key in self._down_links:
                return
            self._down_links.add(key)
            self._session_clear(a, b)
        get_tracer().count("sim.session_events")

    def reset_session(self, a: int, b: int) -> None:
        """Hard-reset the ``a``–``b`` session: flush state, full resync."""
        if self._link_down(a, b):
            return
        self._session_clear(a, b)
        for here, there in ((a, b), (b, a)):
            self._session_resync(self.routers[here], there)
        get_tracer().count("sim.session_resets")

    def start_leak(self, asn: int, neighbor: int) -> None:
        """Misconfigure ``asn`` to export peer/provider routes to
        ``neighbor`` — a classic route leak (valley-free violation)."""
        router = self.routers[asn]
        if neighbor in router.leak_to:
            return
        router.leak_to.add(neighbor)
        get_tracer().count("sim.leaks")
        if router.loc_rib:
            router.pending.setdefault(neighbor, set()).update(router.loc_rib)
            self._schedule_send(router, neighbor)

    def stop_leak(self, asn: int, neighbor: int) -> None:
        """Retract a leak: stale exports are withdrawn by the diff."""
        router = self.routers[asn]
        if neighbor not in router.leak_to:
            return
        router.leak_to.discard(neighbor)
        stale: Set[NLRI] = set(router.sent.get(neighbor, ()))
        stale.update(router.loc_rib)
        if stale:
            router.pending.setdefault(neighbor, set()).update(stale)
            self._schedule_send(router, neighbor)

    # ------------------------------------------------------------------
    # Rendering and update emission
    # ------------------------------------------------------------------

    def rib_records(self, when: Optional[float] = None) -> Iterator[RouteRecord]:
        """Render the collector RIB dump of the current routing state.

        ``when`` is a sim time used only for the record timestamps (and
        the artifact windows keyed on them); it does **not** advance the
        run — call :meth:`run_until` first for a mid-convergence view.
        """
        moment = self.start_ts + int(self.now if when is None else when)
        get_tracer().count("sim.snapshots")
        return render_rib_records(self.world, self.view, self.family, moment)

    def snapshot(self, when: Optional[float] = None) -> RIBSnapshot:
        """Materialise :meth:`rib_records` into a :class:`RIBSnapshot`."""
        with get_tracer().span("sim.render"):
            return RIBSnapshot.from_records(self.rib_records(when))

    def start_recording(self) -> None:
        """Begin logging vantage-point route changes as update records."""
        self.record_updates = True
        self.recording = True

    def update_records(self) -> List[RouteRecord]:
        """Update records logged since :meth:`start_recording`.

        The list is time-ordered and, together with a RIB dump rendered
        at recording start, forms a stream ``repro live`` can consume.
        """
        return list(self._update_log)

    def _log_updates(self, router: SimRouter, nlris: Set[NLRI]) -> None:
        peer = self._vp_peers[router.asn]
        elements: List[RouteElement] = []
        for nlri in sorted(nlris):
            unit = self._units.get(nlri)
            if unit is None:
                continue
            entry = router.loc_rib.get(nlri)
            for prefix in sorted(unit.prefixes, key=Prefix.key):
                if not peer.full_feed:
                    if art.stable_fraction(prefix, peer.asn) >= peer.partial_fraction:
                        continue
                if entry is None:
                    elements.append(
                        RouteElement(ElementType.WITHDRAWAL, prefix, None)
                    )
                else:
                    route, tag = entry
                    path = ASPath.from_asns((peer.asn,) + route.path)
                    communities = (tag,) if tag is not None else ()
                    elements.append(
                        RouteElement(
                            ElementType.ANNOUNCEMENT,
                            prefix,
                            PathAttributes(path, communities=communities),
                        )
                    )
        if elements:
            self._update_log.append(
                RouteRecord(
                    "update",
                    peer.project,
                    peer.collector,
                    peer.asn,
                    peer.address,
                    self.start_ts + int(self.now),
                    elements,
                )
            )
            get_tracer().count("sim.update_records")


def quiescence_parity(
    run: ConvergenceRun,
    engine: Optional[PropagationEngine] = None,
) -> List[str]:
    """Differences between the run's tables and the equilibrium ones.

    Renders both the event engine's state and the centralized
    equilibrium fixed point at the same instant and compares the record
    streams field for field (paths, attributes, artifacts, ordering —
    hence atom ids too, since atoms are a pure function of the
    records).  Returns human-readable difference lines; empty means
    parity holds.  Call only at quiescence — mid-convergence state is
    *supposed* to differ.
    """
    problems: List[str] = []
    if not run.is_quiescent:
        problems.append("event queue is not drained; run_to_quiescence() first")
        return problems
    if engine is None:
        engine = PropagationEngine(run.world.graph, run.world.transit_policies)
    moment = run.start_ts + int(run.now)
    ours = list(render_rib_records(run.world, run.view, run.family, moment))
    reference = list(render_rib_records(run.world, engine, run.family, moment))
    if len(ours) != len(reference):
        problems.append(
            f"record count differs: event engine {len(ours)}, "
            f"equilibrium {len(reference)}"
        )
    for index, (left, right) in enumerate(zip(ours, reference)):
        header_left = (left.project, left.collector, left.peer_asn,
                       left.peer_address, left.timestamp, left.corrupt_warning)
        header_right = (right.project, right.collector, right.peer_asn,
                        right.peer_address, right.timestamp,
                        right.corrupt_warning)
        if header_left != header_right:
            problems.append(f"record {index}: header differs "
                            f"{header_left} != {header_right}")
            continue
        if left.elements != right.elements:
            detail = ""
            for position, (a, b) in enumerate(zip(left.elements, right.elements)):
                if a != b:
                    detail = f" (first at element {position}: {a!r} != {b!r})"
                    break
            problems.append(
                f"record {index} ({left.collector}/AS{left.peer_asn}): "
                f"elements differ{detail}"
            )
        if len(problems) >= 20:
            problems.append("... further differences suppressed")
            break
    return problems
