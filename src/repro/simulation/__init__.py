"""BGP routing simulation over a :class:`~repro.topology.world.World`.

``routing`` computes the valley-free routes every vantage point selects;
``snapshot`` renders them into collector RIB records; ``updates``
generates the post-snapshot UPDATE stream; ``artifacts`` corrupts the
data the way real collectors do; ``scenario`` ties it together behind a
single ``SimulatedInternet`` facade.
"""

from repro.simulation.routing import PropagationEngine, Route, propagate
from repro.simulation.scenario import SimulatedInternet
from repro.simulation.snapshot import render_rib_records, render_snapshot
from repro.simulation.updates import UpdateStreamConfig, generate_update_records

__all__ = [
    "PropagationEngine",
    "Route",
    "SimulatedInternet",
    "UpdateStreamConfig",
    "generate_update_records",
    "propagate",
    "render_rib_records",
    "render_snapshot",
]
