"""BGP routing simulation over a :class:`~repro.topology.world.World`.

``routing`` computes the valley-free routes every vantage point selects;
``snapshot`` renders them into collector RIB records; ``updates``
generates the post-snapshot UPDATE stream; ``events`` runs the
discrete-event convergence engine (timed announcements, MRAI timers,
session resets, scheduled perturbations); ``artifacts`` corrupts the
data the way real collectors do; ``scenario`` ties it together behind a
single ``SimulatedInternet`` facade and hosts the convergence scenario
taxonomy.
"""

from repro.simulation.events import (
    ConvergenceError,
    ConvergenceRun,
    EventPropagationView,
    quiescence_parity,
)
from repro.simulation.routing import (
    PropagationEngine,
    Route,
    RouteSource,
    propagate,
)
from repro.simulation.scenario import (
    SCENARIOS,
    ConvergenceScenario,
    SimulatedInternet,
    apply_scenario,
)
from repro.simulation.snapshot import render_rib_records, render_snapshot
from repro.simulation.updates import UpdateStreamConfig, generate_update_records

__all__ = [
    "SCENARIOS",
    "ConvergenceError",
    "ConvergenceRun",
    "ConvergenceScenario",
    "EventPropagationView",
    "PropagationEngine",
    "Route",
    "RouteSource",
    "SimulatedInternet",
    "UpdateStreamConfig",
    "apply_scenario",
    "generate_update_records",
    "propagate",
    "quiescence_parity",
    "render_rib_records",
    "render_snapshot",
]
