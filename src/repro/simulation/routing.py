"""Valley-free (Gao-Rexford) route propagation.

For one origin's policy units, computes the route every vantage point
selects, honouring:

* business relationships — prefer customer over peer over provider
  routes, then shorter paths, then the lower next-hop ASN;
* valley-free export — customer routes go everywhere, peer/provider
  routes only to customers;
* the origin's per-unit announcement sets and prepending;
* transit selective-export rules keyed on the unit's TE community.

Units that are treated identically travel together in grouped messages,
so the cost per origin is close to one graph traversal regardless of
unit count; groups split only where a policy actually distinguishes
units — exactly where atoms split.

Two structural optimisations keep snapshots fast at scale:

* adjacency is flattened once per graph version into plain dicts of
  tuples (:class:`GraphView`);
* peer- and provider-class routes only matter if they can flow *down*
  to a vantage point, so those phases are pruned to the VP customer
  cone's ancestor set.

Paths are stored as the receiving AS's table entry: ``(next_hop, ...,
origin)`` including origin prepending.  Vantage-point rendering prepends
the peer's own ASN, matching what collectors log.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Protocol,
    Set,
    Tuple,
)

from repro.topology.model import ASGraph, Relationship
from repro.topology.policies import OriginPolicy, PolicyUnit, TransitPolicy

# Preference classes, lower is better.
CLASS_CUSTOMER = 0
CLASS_PEER = 1
CLASS_PROVIDER = 2


class Route(NamedTuple):
    """One selected route: preference class, path length, and the path."""

    pref_class: int
    length: int
    path: Tuple[int, ...]

    def rank(self) -> Tuple[int, int, Tuple[int, ...]]:
        """Total order used to break ties deterministically (also across
        origins, for MOAS prefixes)."""
        return (self.pref_class, self.length, self.path)


#: {asn: {unit_id: Route}}
PropagationResult = Dict[int, Dict[int, Route]]


class RouteSource(Protocol):
    """Anything that answers per-origin route queries at a target set.

    Implemented by :class:`PropagationEngine` (the equilibrium fixed
    point) and by ``repro.simulation.events.EventPropagationView`` (the
    discrete-event engine's live state), so the snapshot renderer works
    identically over both.
    """

    def routes(self, policy: OriginPolicy, targets: FrozenSet[int]) -> PropagationResult:
        """Routes for one origin's units at the target ASes."""
        ...


class GraphView:
    """Flattened adjacency plus the vantage-point ancestor cone.

    ``cone`` contains every AS from which some target is reachable by
    walking provider->customer links (including the targets themselves).
    Peer/provider routes settled outside the cone can never reach a
    target, so propagation skips them.
    """

    def __init__(self, graph: ASGraph, targets: FrozenSet[int]):
        self.version = graph.version
        self.targets = targets
        self.providers: Dict[int, Tuple[int, ...]] = {}
        self.customers: Dict[int, Tuple[int, ...]] = {}
        self.peers: Dict[int, Tuple[int, ...]] = {}
        for asn in graph.nodes:
            neighbors = graph.neighbors(asn)
            self.providers[asn] = tuple(
                n for n, rel in neighbors.items() if rel == Relationship.PROVIDER
            )
            self.customers[asn] = tuple(
                n for n, rel in neighbors.items() if rel == Relationship.CUSTOMER
            )
            self.peers[asn] = tuple(
                n for n, rel in neighbors.items() if rel == Relationship.PEER
            )
        cone: Set[int] = set(targets)
        frontier = list(targets)
        while frontier:
            asn = frontier.pop()
            for provider in self.providers.get(asn, ()):
                if provider not in cone:
                    cone.add(provider)
                    frontier.append(provider)
        self.cone = cone


def _filtered(policy: Optional[TransitPolicy], units: Tuple[PolicyUnit, ...],
              neighbor: int) -> Tuple[PolicyUnit, ...]:
    """Units of a grouped message that survive the exporter's filters."""
    if policy is None or not policy.rules:
        return units
    return tuple(u for u in units if not policy.blocks(u.tag, neighbor))


def propagate(
    graph: ASGraph,
    policy: OriginPolicy,
    transit_policies: Dict[int, TransitPolicy],
    targets: Optional[Set[int]] = None,
    view: Optional[GraphView] = None,
) -> PropagationResult:
    """Compute selected routes for every unit of one origin.

    Returns routes at ``targets`` (default: every AS that selected one;
    in that case no cone pruning is applied).  The origin itself never
    appears in the result.
    """
    origin = policy.asn
    units = tuple(policy.units)
    if not units:
        return {}

    if view is None or view.version != graph.version:
        effective_targets = frozenset(targets) if targets is not None else frozenset(graph.nodes)
        view = GraphView(graph, effective_targets)
    providers_of = view.providers
    customers_of = view.customers
    peers_of = view.peers
    cone = view.cone

    unit_by_id = {unit.unit_id: unit for unit in units}

    # ---- Phase C: customer routes ------------------------------------
    # Level-synchronous BFS up provider links; within a level, offers are
    # resolved per receiver by lowest sender ASN.
    # levels[length] -> list of (sender, receiver, path, units)
    levels: Dict[int, List[Tuple[int, int, Tuple[int, ...], Tuple[PolicyUnit, ...]]]] = defaultdict(list)

    def seed_groups(neighbor: int) -> Dict[int, List[PolicyUnit]]:
        """Units announced to ``neighbor``, grouped by prepend count."""
        groups: Dict[int, List[PolicyUnit]] = defaultdict(list)
        for unit in units:
            if unit.announces_to(neighbor):
                groups[unit.prepend_for(neighbor)].append(unit)
        return groups

    for provider in providers_of.get(origin, ()):
        for prepend, group in seed_groups(provider).items():
            path = (origin,) * (1 + prepend)
            levels[len(path)].append((origin, provider, path, tuple(group)))

    customer_routes: Dict[int, Dict[int, Route]] = defaultdict(dict)
    length = min(levels) if levels else 0
    max_level = (max(levels) if levels else 0) + len(graph.nodes) + 2
    while levels and length <= max_level:
        batch = levels.pop(length, None)
        if batch is None:
            length += 1
            continue
        # Resolve per receiver: lowest sender ASN wins ties at this level.
        batch.sort(key=lambda offer: (offer[1], offer[0]))
        for sender, receiver, path, group in batch:
            table = customer_routes[receiver]
            fresh = tuple(u for u in group if u.unit_id not in table)
            if not fresh:
                continue
            route = Route(CLASS_CUSTOMER, length, path)
            for unit in fresh:
                table[unit.unit_id] = route
            export_path = (receiver,) + path
            receiver_policy = transit_policies.get(receiver)
            has_rules = receiver_policy is not None and receiver_policy.rules
            for provider in providers_of.get(receiver, ()):
                if provider == origin or provider in path:
                    continue
                allowed = _filtered(receiver_policy, fresh, provider) if has_rules else fresh
                if allowed:
                    levels[length + 1].append(
                        (receiver, provider, export_path, allowed)
                    )
        length += 1

    # ---- Phase P: peer routes ----------------------------------------
    peer_routes: Dict[int, Dict[int, Route]] = defaultdict(dict)

    def offer_peer(receiver: int, sender: int, path: Tuple[int, ...],
                   group: Iterable[PolicyUnit]) -> None:
        """Offer a peer route to ``receiver`` unless a customer route wins."""
        table = peer_routes[receiver]
        customer_table = customer_routes.get(receiver)
        route = Route(CLASS_PEER, len(path), path)
        for unit in group:
            if customer_table and unit.unit_id in customer_table:
                continue
            current = table.get(unit.unit_id)
            if current is None or (route.length, sender) < (
                current.length,
                current.path[0],
            ):
                table[unit.unit_id] = route

    for peer in peers_of.get(origin, ()):
        if peer not in cone and not customers_of.get(peer):
            continue
        for prepend, group in seed_groups(peer).items():
            path = (origin,) * (1 + prepend)
            offer_peer(peer, origin, path, group)

    for asn, table in customer_routes.items():
        asn_peers = peers_of.get(asn, ())
        if not asn_peers:
            continue
        by_route: Dict[Route, List[PolicyUnit]] = defaultdict(list)
        for unit_id, route in table.items():
            by_route[route].append(unit_by_id[unit_id])
        asn_policy = transit_policies.get(asn)
        for route, group in by_route.items():
            export_path = (asn,) + route.path
            group_tuple = tuple(group)
            for peer in asn_peers:
                # A peer route is only useful at a target or somewhere it
                # can flow down toward one.
                if peer == origin or peer not in cone or peer in route.path:
                    continue
                allowed = _filtered(asn_policy, group_tuple, peer)
                if allowed:
                    offer_peer(peer, asn, export_path, allowed)

    # ---- Phase D: provider routes ------------------------------------
    provider_routes: Dict[int, Dict[int, Route]] = defaultdict(dict)
    levels = defaultdict(list)

    def seed_down(asn: int, table: Dict[int, Route]) -> None:
        """Export ``asn``'s selected routes down to its customers."""
        by_route: Dict[Route, List[PolicyUnit]] = defaultdict(list)
        for unit_id, route in table.items():
            by_route[route].append(unit_by_id[unit_id])
        asn_policy = transit_policies.get(asn)
        has_rules = asn_policy is not None and asn_policy.rules
        for route, group in by_route.items():
            export_path = (asn,) + route.path
            group_tuple = tuple(group)
            for customer in customers_of.get(asn, ()):
                if customer == origin or customer not in cone or customer in route.path:
                    continue
                allowed = _filtered(asn_policy, group_tuple, customer) if has_rules else group_tuple
                if allowed:
                    levels[route.length + 1].append(
                        (asn, customer, export_path, allowed)
                    )

    for asn, table in customer_routes.items():
        seed_down(asn, table)
    for asn, table in peer_routes.items():
        if table:
            seed_down(asn, table)

    length = min(levels) if levels else 0
    max_level = (max(levels) if levels else 0) + len(graph.nodes) + 2
    while levels and length <= max_level:
        batch = levels.pop(length, None)
        if batch is None:
            length += 1
            continue
        batch.sort(key=lambda offer: (offer[1], offer[0]))
        for sender, receiver, path, group in batch:
            customer_table = customer_routes.get(receiver)
            peer_table = peer_routes.get(receiver)
            table = provider_routes[receiver]
            fresh = tuple(
                u
                for u in group
                if (not customer_table or u.unit_id not in customer_table)
                and (not peer_table or u.unit_id not in peer_table)
                and u.unit_id not in table
            )
            if not fresh:
                continue
            route = Route(CLASS_PROVIDER, length, path)
            for unit in fresh:
                table[unit.unit_id] = route
            export_path = (receiver,) + path
            receiver_policy = transit_policies.get(receiver)
            has_rules = receiver_policy is not None and receiver_policy.rules
            for customer in customers_of.get(receiver, ()):
                if customer == origin or customer not in cone or customer in path:
                    continue
                allowed = _filtered(receiver_policy, fresh, customer) if has_rules else fresh
                if allowed:
                    levels[length + 1].append(
                        (receiver, customer, export_path, allowed)
                    )
        length += 1

    # ---- Combine ------------------------------------------------------
    result: PropagationResult = {}
    wanted = targets if targets is not None else (
        set(customer_routes) | set(peer_routes) | set(provider_routes)
    )
    for asn in wanted:
        if asn == origin:
            continue
        combined: Dict[int, Route] = {}
        for source in (customer_routes, peer_routes, provider_routes):
            table = source.get(asn)
            if table:
                for unit_id, route in table.items():
                    if unit_id not in combined:
                        combined[unit_id] = route
        if combined:
            result[asn] = combined
    return result


class PropagationEngine:
    """Caching front-end over :func:`propagate`.

    Results are memoised per (family, origin) and invalidated whenever
    the graph, the origin's policy, any transit rule, or the target set
    changes — so consecutive snapshots only recompute churned origins.
    """

    def __init__(self, graph: ASGraph, transit_policies: Dict[int, TransitPolicy]):
        self.graph = graph
        self.transit_policies = transit_policies
        self._cache: Dict[Tuple[int, int], Tuple[Tuple, PropagationResult]] = {}
        self._view: Optional[GraphView] = None
        self.hits = 0
        self.misses = 0

    def _view_for(self, targets: FrozenSet[int]) -> GraphView:
        view = self._view
        if view is None or view.version != self.graph.version or view.targets != targets:
            view = GraphView(self.graph, targets)
            self._view = view
        return view

    def routes(self, policy: OriginPolicy, targets: FrozenSet[int]) -> PropagationResult:
        """Routes for one origin at the target ASes, cached.

        Invariant relied upon for cache correctness: transit rules are
        keyed by per-unit TE tags, so a rule change can only affect the
        origin owning the tag — whose ``policy.version`` changes with
        it.  Call :meth:`invalidate` after editing transit rules by hand.
        """
        key = (policy.family, policy.asn)
        stamp = (self.graph.version, policy.version, targets)
        cached = self._cache.get(key)
        if cached is not None and cached[0] == stamp:
            self.hits += 1
            return cached[1]
        self.misses += 1
        view = self._view_for(targets)
        result = propagate(self.graph, policy, self.transit_policies, set(targets), view)
        self._cache[key] = (stamp, result)
        return result

    def invalidate(self) -> None:
        """Drop every cached propagation result."""
        self._cache.clear()
        self._view = None
