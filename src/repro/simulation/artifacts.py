"""Collector data artifacts (paper A8.3).

Real BGP collection is noisy; the sanitization pipeline only earns its
keep if the input contains the problems it targets.  This module
implements the corruptions the paper documents:

* ADD-PATH incompatible peers: records flagged with BGPStream-style
  warnings, with garbled AS paths mixed into the feed;
* a misconfigured peer that leaks a private ASN (AS65000) into most of
  its paths, inflating atom counts;
* peers that resend a large share of duplicate prefixes;
* stuck routes: phantom prefixes visible at a single collector.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.net.aspath import ASPath, PathSegment, SegmentType
from repro.net.prefix import AF_INET, Prefix

#: BGPStream warning fingerprints of ADD-PATH parsing failures (A8.3.1).
ADDPATH_WARNINGS = (
    "unknown BGP4MP record subtype 9",
    "Duplicate Path Attribute",
    "Invalid MP(UN)REACH NLRI",
)

#: The private ASN the misconfigured peer leaks (A8.3.2).
LEAKED_PRIVATE_ASN = 65000

#: Deterministic cheap hash for per-prefix decisions (stable across runs,
#: unlike ``hash()``).
def stable_fraction(prefix: Prefix, salt: int) -> float:
    """Deterministic per-(prefix, salt) value in [0, 1)."""
    value = (prefix.network * 2654435761 + prefix.length * 97 + salt * 40503)
    return ((value >> 7) & 0xFFFFF) / float(0x100000)


def addpath_warning_for(record_index: int) -> str:
    """One of the ADD-PATH warning fingerprints, rotating."""
    return ADDPATH_WARNINGS[record_index % len(ADDPATH_WARNINGS)]


def garble_path(path: ASPath, salt: int) -> ASPath:
    """A plausibly-corrupt path: duplicated attribute data shows up as a
    repeated leading ASN plus a bogus hop spliced into the middle."""
    asns = list(path.asns())
    if not asns:
        return path
    middle = len(asns) // 2
    bogus = 23456  # AS_TRANS, the classic parsing casualty
    garbled = asns[:1] + asns[: middle + 1] + [bogus] + asns[middle + 1 :]
    return ASPath.from_asns(garbled)


def inject_private_asn(path: ASPath) -> ASPath:
    """Insert AS65000 right after the peer's own ASN (A8.3.2)."""
    asns = list(path.asns())
    if not asns:
        return path
    return ASPath.from_asns(asns[:1] + [LEAKED_PRIVATE_ASN] + asns[1:])


def maybe_as_set_path(path: ASPath, prefix: Prefix, origin_in_set: bool,
                      salt: int) -> Optional[ASPath]:
    """Convert the path tail into an aggregated AS_SET form.

    Returns None when the path is too short to aggregate.  ~60 % of the
    produced sets are singletons (which the sanitizer expands); the rest
    are two-element sets (which it drops).
    """
    asns = list(path.asns())
    if len(asns) < 3:
        return None
    singleton = stable_fraction(prefix, salt + 1) < 0.6
    if singleton:
        head, tail = asns[:-1], asns[-1:]
    else:
        head, tail = asns[:-2], asns[-2:]
    segments = [
        PathSegment(SegmentType.AS_SEQUENCE, head),
        PathSegment(SegmentType.AS_SET, tail),
    ]
    return ASPath(segments)


def stuck_route_prefixes(rng: random.Random, count: int) -> List[Prefix]:
    """Phantom prefixes from shared address space (100.64.0.0/10) that no
    origin actually announces — visible only at one collector."""
    base = Prefix.parse("100.64.0.0/10")
    prefixes: List[Prefix] = []
    for _ in range(count):
        offset = rng.randrange(1 << 14)  # /24s inside the /10
        network = base.network + (offset << 8)
        prefixes.append(Prefix(AF_INET, network, 24))
    return prefixes


def stuck_route_path(rng: random.Random, peer_asn: int) -> ASPath:
    """A stale-looking path for a stuck route."""
    hops = [peer_asn] + [rng.randrange(100, 5000) for _ in range(3)]
    return ASPath.from_asns(hops)
