"""Render the world's routing state into collector RIB records.

For every collector peer (vantage point), the renderer asks the
propagation engine for the routes the peer's AS selected, expands policy
units into per-prefix table entries, resolves MOAS conflicts by route
preference, applies partial-feed subsetting, and injects the configured
data artifacts.  The output is a stream of ``RouteRecord`` objects — the
same shape a BGPStream RIB dump would yield.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.bgp.attributes import Community, PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.net.aspath import ASPath
from repro.net.prefix import AF_INET, Prefix
from repro.simulation import artifacts as art
from repro.simulation.routing import Route, RouteSource
from repro.topology.world import PeerSpec, World
from repro.util.determinism import derive_rng

#: RIB records pack roughly this many elements per record, like MRT
#: table-dump chunks.
RIB_RECORD_CHUNK = 1000


def _vp_tables(
    world: World,
    engine: RouteSource,
    family: int,
) -> Dict[int, Dict[Prefix, Tuple[Route, Optional[Community]]]]:
    """Best route per (vantage-point AS, prefix), MOAS resolved."""
    targets = frozenset(world.layout.vantage_asns())
    tables: Dict[int, Dict[Prefix, Tuple[Route, Optional[Community]]]] = defaultdict(dict)
    for policy in world.origins(family).values():
        routes = engine.routes(policy, targets)
        if not routes:
            continue
        unit_by_id = {unit.unit_id: unit for unit in policy.units}
        for vp_asn, unit_routes in routes.items():
            table = tables[vp_asn]
            for unit_id, route in unit_routes.items():
                unit = unit_by_id.get(unit_id)
                if unit is None:
                    continue
                for prefix in unit.prefixes:
                    current = table.get(prefix)
                    if current is None or route.rank() < current[0].rank():
                        table[prefix] = (route, unit.tag)
    return tables


class _AttributeFactory:
    """Builds RIB elements for one peer, sharing attribute objects.

    Most prefixes of a unit share the same recorded path, so the
    ``PathAttributes`` bundle is cached per (path, tag); per-prefix
    mutations (AS_SET tails, artifact corruption) bypass the cache.
    """

    def __init__(self, peer: PeerSpec, world: World, when: int):
        self.peer = peer
        self.world = world
        self.when = when
        self.artifact = peer.artifact if peer.artifact_active(when) else ""
        self._cache: Dict[Tuple[Tuple[int, ...], Optional[Community]], PathAttributes] = {}

    def element(self, prefix: Prefix, route: Route,
                tag: Optional[Community]) -> RouteElement:
        """Build one RIB element, applying the peer's artifact quirks."""
        peer = self.peer
        origin_asn = route.path[-1]
        mutate_as_set = (
            origin_asn in self.world.as_set_origins
            and art.stable_fraction(prefix, origin_asn) < 0.3
        )
        mutate_artifact = self.artifact in ("private_asn", "addpath")

        if not mutate_as_set and not mutate_artifact:
            key = (route.path, tag)
            attributes = self._cache.get(key)
            if attributes is None:
                recorded = ASPath.from_asns((peer.asn,) + route.path)
                communities = (tag,) if tag is not None else ()
                attributes = PathAttributes(recorded, communities=communities)
                self._cache[key] = attributes
            return RouteElement(ElementType.RIB, prefix, attributes)

        recorded = ASPath.from_asns((peer.asn,) + route.path)
        if mutate_as_set:
            as_set_path = art.maybe_as_set_path(recorded, prefix, True, origin_asn)
            if as_set_path is not None:
                recorded = as_set_path
        if self.artifact == "private_asn" and art.stable_fraction(prefix, 65000) < 0.7:
            recorded = art.inject_private_asn(recorded)
        elif self.artifact == "addpath" and art.stable_fraction(prefix, 9) < 0.15:
            recorded = art.garble_path(recorded, peer.asn)
        communities = (tag,) if tag is not None else ()
        return RouteElement(
            ElementType.RIB, prefix, PathAttributes(recorded, communities=communities)
        )


def render_rib_records(
    world: World,
    engine: RouteSource,
    family: int = AF_INET,
    when: Optional[int] = None,
) -> Iterator[RouteRecord]:
    """Yield the RIB dump of every collector peer at the current instant."""
    moment = world.current_time if when is None else when
    tables = _vp_tables(world, engine, family)

    # One address-ordered prefix universe shared by all peers: sorting
    # per peer would redo millions of Prefix comparisons.
    universe: set = set()
    for table in tables.values():
        universe.update(table)
    ordered_universe = sorted(universe, key=Prefix.key)

    for peer in world.layout.peers:
        table = tables.get(peer.asn)
        if not table:
            continue
        duplicates_active = (
            peer.artifact == "duplicates" and peer.artifact_active(moment)
        )
        addpath_active = peer.artifact == "addpath" and peer.artifact_active(moment)
        factory = _AttributeFactory(peer, world, moment)

        elements: List[RouteElement] = []
        for prefix in ordered_universe:
            entry = table.get(prefix)
            if entry is None:
                continue
            if not peer.full_feed:
                if art.stable_fraction(prefix, peer.asn) >= peer.partial_fraction:
                    continue
            route, tag = entry
            element = factory.element(prefix, route, tag)
            elements.append(element)
            if duplicates_active and art.stable_fraction(prefix, 777) < 0.15:
                elements.append(element)

        record_index = 0
        for start in range(0, len(elements), RIB_RECORD_CHUNK):
            chunk = elements[start : start + RIB_RECORD_CHUNK]
            warning = ""
            if addpath_active and record_index % 4 == 0:
                warning = art.addpath_warning_for(record_index)
            yield RouteRecord(
                "rib",
                peer.project,
                peer.collector,
                peer.asn,
                peer.address,
                moment,
                chunk,
                corrupt_warning=warning,
            )
            record_index += 1

    # Stuck routes: phantom prefixes at a single collector (v4 only).
    if family == AF_INET and world.params.inject_artifacts:
        yield from _stuck_route_records(world, moment)


def _stuck_route_records(world: World, moment: int) -> Iterator[RouteRecord]:
    rng = derive_rng(world.params.seed, "stuck", moment // (86400 * 30))
    if rng.random() > 0.4 or not world.layout.collectors:
        return
    project, collector = world.layout.collectors[
        rng.randrange(len(world.layout.collectors))
    ]
    victims = [
        peer
        for peer in world.layout.peers
        if peer.collector == collector and peer.full_feed
    ]
    if not victims:
        return
    phantom = art.stuck_route_prefixes(rng, rng.randint(1, 4))
    for peer in victims:
        elements = [
            RouteElement(
                ElementType.RIB,
                prefix,
                PathAttributes(art.stuck_route_path(rng, peer.asn)),
            )
            for prefix in phantom
        ]
        yield RouteRecord(
            "rib", project, collector, peer.asn, peer.address, moment, elements
        )


def render_snapshot(
    world: World,
    engine: RouteSource,
    family: int = AF_INET,
    when: Optional[int] = None,
) -> RIBSnapshot:
    """Materialise the rendered records into a :class:`RIBSnapshot`."""
    return RIBSnapshot.from_records(render_rib_records(world, engine, family, when))
