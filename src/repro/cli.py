"""Command-line interface.

Four subcommands mirror the measurement workflow:

* ``repro simulate`` — render a simulated snapshot (and optionally the
  following update stream) into an on-disk archive;
* ``repro atoms``    — compute policy atoms from an archive or directly
  from a fresh simulation, printing the statistics and the
  sanitization report;
* ``repro trend``    — run a quick longitudinal sweep and print the
  per-year atom trends (``--store-dir`` persists the sweep as a
  memory-mapped columnar atom store);
* ``repro store``    — ``build`` / ``info`` / ``query`` on-disk atom
  stores (see ``docs/data-format.md``);
* ``repro serve``    — long-running HTTP/JSON atom query service over
  an on-disk store (see ``docs/serving.md``);
* ``repro live``     — streaming atom maintenance over an archived
  update feed: sharded incremental workers, windowed churn metrics,
  checkpoint/resume and an optional growing-store sink (see
  ``docs/streaming.md``);
* ``repro converge`` — run the discrete-event convergence engine over a
  named scenario (flap storms, route leaks, multihoming failover) with
  mid-convergence snapshots and a quiescence-parity check against the
  equilibrium renderer (see ``docs/simulation.md``);
* ``repro profile``  — render the per-stage wall-time/counter rollup of
  a trace written by ``--trace`` (see ``docs/observability.md``).

Commands that open a store (``store info/query``, ``serve``) exit with
code 2 and a one-line ``store error:`` message when the store is
missing or corrupt — never a traceback.

``repro atoms`` and ``repro trend`` accept ``--trace FILE.jsonl`` to
record a structured trace of the run; output is byte-identical with or
without it.  Run ``python -m repro <command> --help`` for the options.
"""

from __future__ import annotations

import argparse
import json
import sys
from itertools import chain
from pathlib import Path
from typing import List, Optional

from repro.analysis.longitudinal import (
    LongitudinalStudy,
    trend_results_from_store,
)
from repro.core.formation import formation_distances
from repro.core.pipeline import compute_policy_atoms
from repro.core.statistics import general_stats
from repro.engine.cache import ResultCache
from repro.engine.checkpoint import CheckpointLog
from repro.engine.jobs import SnapshotJob
from repro.engine.metrics import progress_hook
from repro.engine.scheduler import ExecutionEngine
from repro.net.prefix import AF_INET, AF_INET6
from repro.obs import (
    Tracer,
    counter_rows,
    load_trace,
    profile_rows,
    use_tracer,
    validate_spans,
)
from repro.reporting.tables import render_table
from repro.serve.app import ServeApp
from repro.serve.cache import DEFAULT_MAX_ENTRIES
from repro.simulation.events import ConvergenceError, quiescence_parity
from repro.simulation.scenario import SCENARIOS, SimulatedInternet
from repro.store import AtomStore, StoreError
from repro.store import FORMAT_VERSION as STORE_FORMAT_VERSION
from repro.stream.archive import RecordArchive
from repro.stream.bgpstream import BGPStream
from repro.stream.live import LiveConfig, LiveError, LivePipeline
from repro.stream.windows import render_window_table
from repro.topology.evolution import WorldParams
from repro.util.dates import parse_utc


def _world_params(args: argparse.Namespace) -> WorldParams:
    scale = 1.0 / args.scale
    return WorldParams(
        seed=args.seed,
        as_scale=scale,
        prefix_scale=scale,
        peer_scale=args.peer_scale,
        collector_scale=0.3,
        min_fullfeed_peers=8,
    )


def _add_world_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=int, default=200,
                        help="world scale divisor (default: 1/200 of the Internet)")
    parser.add_argument("--seed", type=int, default=20250701)
    parser.add_argument("--peer-scale", type=float, default=0.04, dest="peer_scale")
    parser.add_argument("--family", type=int, choices=(4, 6), default=4)


def _positive_int(value: str) -> int:
    """Argparse type for counts that must be at least 1."""
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return count


def _add_engine_options(parser: argparse.ArgumentParser,
                        with_checkpoint: bool = False) -> None:
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--batch", type=_positive_int, default=1,
                        help="jobs per pool task on parallel runs "
                             "(default: 1); batching amortizes per-task "
                             "pickling without changing results")
    parser.add_argument("--progress", action="store_true",
                        help="narrate per-job progress and a metrics "
                             "summary on stderr")
    parser.add_argument("--cache-dir", type=Path, default=None, dest="cache_dir",
                        help="content-addressed result cache directory "
                             "(repeat runs skip recomputation)")
    parser.add_argument("--incremental", action="store_true",
                        help="maintain atoms across each quarter's "
                             "snapshots incrementally (identical results, "
                             "separate cache key)")
    parser.add_argument("--trace", type=Path, default=None,
                        help="write a JSONL span/counter trace of the run "
                             "to this file (see docs/observability.md); "
                             "output is unchanged")
    parser.add_argument("--exchange", choices=("json", "columnar"),
                        default="json",
                        help="worker result transport on parallel runs: "
                             "json (default) or the zero-copy columnar "
                             "plane over shared memory / spool files "
                             "(identical results)")
    parser.add_argument("--exchange-dir", type=Path, default=None,
                        dest="exchange_dir",
                        help="spool columnar result segments through this "
                             "directory instead of shared memory")
    parser.add_argument("--world-checkpoint-dir", type=Path, default=None,
                        dest="world_checkpoint_dir",
                        help="persist world-lineage checkpoints here; "
                             "freshly forked workers resume from the "
                             "nearest checkpoint instead of replaying "
                             "the world from birth")
    if with_checkpoint:
        parser.add_argument("--checkpoint", type=Path, default=None,
                            help="completion log; a killed sweep resumes "
                                 "from the last finished quarter")


def _add_trend_range_options(parser: argparse.ArgumentParser) -> None:
    """Year-range options shared by ``trend`` and ``store build``."""
    parser.add_argument("--first-year", type=int, default=2004, dest="first_year")
    parser.add_argument("--last-year", type=int, default=2024, dest="last_year")
    parser.add_argument("--step", type=int, default=4)
    parser.add_argument("--no-stability", action="store_true", dest="no_stability")


def _build_engine(args: argparse.Namespace) -> ExecutionEngine:
    """An :class:`ExecutionEngine` configured from the CLI flags."""
    return ExecutionEngine(
        jobs=args.jobs,
        batch=args.batch,
        cache=(
            ResultCache(args.cache_dir, binary=args.exchange == "columnar")
            if args.cache_dir
            else None
        ),
        checkpoint=(
            CheckpointLog(args.checkpoint)
            if getattr(args, "checkpoint", None)
            else None
        ),
        hooks=(progress_hook(sys.stderr),) if args.progress else (),
        exchange=args.exchange,
        exchange_dir=args.exchange_dir,
        world_checkpoint_dir=args.world_checkpoint_dir,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    """Handle ``repro simulate``."""
    params = _world_params(args)
    stamp = parse_utc(args.start)
    family = AF_INET if args.family == 4 else AF_INET6
    internet = SimulatedInternet(params, start=stamp)
    archive = RecordArchive(args.archive)
    rib_files = archive.write_dump(
        internet.rib_records(stamp, family=family), dump_timestamp=stamp
    )
    print(f"wrote {len(rib_files)} RIB dump files to {args.archive}")
    if args.update_hours > 0:
        update_files = archive.write_dump(
            internet.update_records(stamp, hours=args.update_hours, family=family),
            dump_timestamp=stamp,
        )
        print(f"wrote {len(update_files)} update dump files "
              f"({args.update_hours:g} h window)")
    return 0


def _print_atom_report(source: str, report: dict, stats_rows,
                       formation_shares) -> None:
    """Shared rendering of the ``repro atoms`` output."""
    print(f"source: {source}")
    print(f"vantage points: {report['fullfeed_peers']} full-feed "
          f"({report['partial_peers']} partial excluded)")
    if report["removed_peers"]:
        removals = ", ".join(
            f"AS{asn} ({reason})"
            for asn, reason in sorted(report["removed_peers"].items())
        )
        print(f"abnormal peers removed: {removals}")
    print(f"prefixes: {report['prefixes_kept']:,} kept / "
          f"{report['prefixes_total']:,} seen")
    print()
    print(render_table(["metric", "value"], stats_rows,
                       title="Policy atom statistics"))
    if formation_shares is not None:
        print()
        print(render_table(
            ["distance", "share of atoms"],
            [(d, f"{s:.1%}") for d, s in sorted(formation_shares.items())],
            title="Formation distance",
        ))


def cmd_atoms(args: argparse.Namespace) -> int:
    """Handle ``repro atoms``."""
    family = AF_INET if args.family == 4 else AF_INET6
    if args.archive:
        # Archive-sourced snapshots stream straight through the
        # pipeline; the engine only covers simulated worlds.
        stream = BGPStream(RecordArchive(args.archive), record_type="rib")
        result = compute_policy_atoms(stream.records())
        report = result.report
        shares = (
            formation_distances(result.atoms).distance_shares()
            if args.formation
            else None
        )
        _print_atom_report(
            str(args.archive),
            {
                "fullfeed_peers": report.fullfeed_peers,
                "partial_peers": report.partial_peers,
                "removed_peers": report.removed_peers,
                "prefixes_kept": report.prefixes_kept,
                "prefixes_total": report.prefixes_total,
            },
            general_stats(result.atoms).rows(),
            shares,
        )
        return 0

    params = _world_params(args)
    stamp = parse_utc(args.start)
    engine = _build_engine(args)
    job = SnapshotJob(
        params=params,
        start=stamp,
        warmup=(),
        times=(stamp,),
        family=family,
        incremental=args.incremental,
        label=f"atoms@{args.start}",
    )
    quarter = engine.run([job])[0]
    _print_atom_report(
        f"simulation @ {args.start}",
        quarter.report,
        quarter.stats.rows(),
        quarter.formation_shares if args.formation else None,
    )
    if args.progress:
        print(engine.metrics.render(), file=sys.stderr)
    return 0


def _render_trend_table(results) -> str:
    """The ``repro trend`` table for a list of ``YearResult`` rows."""
    rows = []
    for result in results:
        stats = result.stats
        year = int(result.year) if float(result.year).is_integer() else result.year
        row: List[object] = [
            year,
            f"{stats.n_prefixes:,}",
            f"{stats.n_atoms:,}",
            f"{stats.mean_atom_size:.2f}",
            f"{result.formation_shares.get(1, 0):.0%}",
            f"{result.formation_shares.get(3, 0):.0%}",
        ]
        if result.stability:
            row.append(f"{result.stability['8h'][0]:.1%}")
        rows.append(row)
    headers = ["year", "prefixes", "atoms", "mean size", "formed@1", "formed@3"]
    if results and results[0].stability:
        headers.append("CAM 8h")
    return render_table(headers, rows, title="Longitudinal atom trend")


def _run_trend_sweep(args: argparse.Namespace):
    """The shared sweep behind ``repro trend`` and ``repro store build``."""
    params = _world_params(args)
    family = AF_INET if args.family == 4 else AF_INET6
    years = list(range(args.first_year, args.last_year + 1, args.step))
    internet = SimulatedInternet(params, start=f"{years[0]}-01-01")
    engine = _build_engine(args)
    study = LongitudinalStudy(
        internet,
        family=family,
        engine=engine,
        incremental=args.incremental,
        store_dir=getattr(args, "store_dir", None),
    )
    results = study.run_years(years, with_stability=not args.no_stability)
    return results, engine


def cmd_trend(args: argparse.Namespace) -> int:
    """Handle ``repro trend``."""
    results, engine = _run_trend_sweep(args)
    print(_render_trend_table(results))
    if args.store_dir:
        with AtomStore(args.store_dir, verify=False) as store:
            print(f"store: {args.store_dir} ({len(store.snapshots())} "
                  f"snapshots, {store.total_bytes():,} segment bytes)")
    if args.progress:
        print(engine.metrics.render(), file=sys.stderr)
    return 0


def cmd_store_build(args: argparse.Namespace) -> int:
    """Handle ``repro store build``: run a sweep, persist the store."""
    results, engine = _run_trend_sweep(args)
    with AtomStore(args.store_dir, verify=False) as store:
        entries = store.snapshots()
        print(f"built atom store at {args.store_dir}")
        print(f"  snapshots: {len(entries)} across {len(results)} quarter(s)")
        print(f"  segment bytes: {store.total_bytes():,}")
        print(f"  interned paths: {store.pool_options.get('path_count', 0):,}")
    if args.progress:
        print(engine.metrics.render(), file=sys.stderr)
    return 0


def cmd_store_info(args: argparse.Namespace) -> int:
    """Handle ``repro store info``: summarize a store's manifest."""
    try:
        with AtomStore(args.store_dir, verify=args.check) as store:
            if args.check:
                checked = store.verify_segments()
                print(f"integrity: {checked} segment(s) verified")
            entries = store.snapshots()
            print(f"store: {args.store_dir}")
            print(f"  format: repro-atom-store v{STORE_FORMAT_VERSION}")
            print(f"  segment bytes: {store.total_bytes():,}")
            print(f"  interned paths: {store.pool_options.get('path_count', 0):,}")
            rows = [
                (
                    entry.key,
                    entry.role,
                    f"{entry.prefixes:,}",
                    f"{entry.atom_count:,}",
                    len(entry.vantage_points),
                    len(entry.shards),
                )
                for entry in entries
            ]
            print()
            print(render_table(
                ["snapshot", "role", "prefixes", "atoms", "VPs", "shards"],
                rows,
                title="Snapshots",
            ))
            if args.trend:
                # Recompute the trend table purely from the store —
                # byte-identical to what the sweep printed.
                print()
                print(_render_trend_table(trend_results_from_store(store)))
    except StoreError as error:
        print(f"store error: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_store_query(args: argparse.Namespace) -> int:
    """Handle ``repro store query``: locate one prefix's atom."""
    try:
        with AtomStore(args.store_dir, verify=False) as store:
            found = store.query(args.prefix, key=args.snapshot)
            if found is None:
                print(f"{args.prefix}: not in snapshot universe")
                return 1
            print(f"prefix: {found.prefix}")
            print(f"snapshot: {found.key}")
            print(f"atom id: {found.atom_id}")
            print(f"shard: {found.shard} (row {found.row})")
            entry = store.snapshot(found.key)
            for peer, path in zip(entry.vantage_points, found.paths):
                collector, asn, address = peer
                seen = "(not seen)" if path is None else str(path)
                print(f"  {collector} AS{asn} {address}: {seen}")
    except StoreError as error:
        print(f"store error: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Handle ``repro serve``: run the atom query service."""
    try:
        # Opening the store validates the manifest up front, so a
        # missing or corrupt store fails here — one line, no socket.
        app = ServeApp(
            str(args.store_dir),
            host=args.host,
            port=args.port,
            cache_entries=args.cache_entries,
            verify=args.check,
        )
    except StoreError as error:
        print(f"store error: {error}", file=sys.stderr)
        return 2
    return app.run(announce=print)


def cmd_live(args: argparse.Namespace) -> int:
    """Handle ``repro live``: stream an archive through the pipeline."""
    archive = RecordArchive(args.archive)
    records = chain(
        BGPStream(archive, record_type="rib").records(),
        BGPStream(archive, record_type="update").records(),
    )
    family = None
    if args.family is not None:
        family = AF_INET if args.family == 4 else AF_INET6
    config = LiveConfig(
        window_seconds=args.window,
        shards=args.shards,
        queue_depth=args.queue_depth,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        store_dir=args.store_dir,
        store_merge_every=args.store_merge_every,
        parity=args.parity,
        max_windows=args.max_windows,
        family=family,
    )

    def narrate(window) -> None:
        print(
            f"window {window.index} closed @ {window.end}: "
            f"{window.records} records, {window.dirty} dirty, "
            f"{window.atoms} atoms "
            f"(+{window.created}/-{window.removed})",
            file=sys.stderr,
        )

    pipeline = LivePipeline(records, config)
    try:
        run = pipeline.run(on_window=narrate if args.progress else None)
    except LiveError as error:
        print(f"live error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(run.as_dict(), indent=1, sort_keys=True))
        return 0
    if run.resumed:
        print(f"resumed from checkpoint at window {run.resumed_from} "
              f"({run.skipped:,} records already consumed)")
    print(f"primed with {run.prime_records} RIB record(s), "
          f"{len(run.vantage_points)} vantage points")
    if run.windows:
        print()
        print(render_window_table(run.windows))
    else:
        print("no windows closed (stream exhausted before a boundary)")
    summary = [f"{run.records:,} records in {len(run.windows)} window(s)"]
    if run.parity_checks:
        summary.append(f"parity verified at {run.parity_checks} boundaries")
    if run.checkpoints:
        summary.append(f"{run.checkpoints} checkpoint(s)")
    if run.store_keys:
        summary.append(f"store has {len(run.store_keys)} window snapshot(s)")
    print()
    print("; ".join(summary))
    if run.stopped_early:
        print(f"stopped after --max-windows {config.max_windows}; "
              "resume from the checkpoint to continue")
    return 0


def cmd_converge(args: argparse.Namespace) -> int:
    """Handle ``repro converge``: run the discrete-event engine."""
    params = _world_params(args)
    family = AF_INET if args.family == 4 else AF_INET6
    sim = SimulatedInternet(params, start=args.start)
    record_updates = args.archive is not None
    try:
        run = sim.converge(
            args.start,
            scenario=args.scenario,
            family=family,
            mrai=args.mrai,
            record_updates=record_updates,
        )
    except (ValueError, ConvergenceError) as error:
        print(f"converge error: {error}", file=sys.stderr)
        return 2
    for line in run.narration:
        print(line)
    baseline = list(run.rib_records()) if record_updates else None

    try:
        for offset in sorted(set(args.snapshot_at or [])):
            run.run_until(run.scenario_start + offset)
            records = list(run.rib_records())
            computation = compute_policy_atoms(records)
            print(
                f"snapshot at t+{offset:.0f}s: {len(records)} records, "
                f"{len(computation.atoms)} atoms"
            )
        if args.max_events is not None:
            final = run.run_to_quiescence(max_events=args.max_events)
        else:
            final = run.run_to_quiescence()
    except ConvergenceError as error:
        print(f"converge error: {error}", file=sys.stderr)
        return 2
    print(f"quiescent at sim t={final:.1f}s "
          f"({final - run.scenario_start:.1f}s after the scenario began)")

    if args.parity:
        problems = quiescence_parity(run, sim.engine)
        if problems:
            print("quiescence parity FAILED:", file=sys.stderr)
            for problem in problems[:10]:
                print(f"  {problem}", file=sys.stderr)
            return 1
        final_records = list(run.rib_records())
        print(f"quiescence parity ok: {len(final_records)} records "
              "value-identical to the equilibrium renderer")

    if args.archive is not None:
        archive = RecordArchive(args.archive)
        written = archive.write_dump(baseline or [])
        updates = run.update_records()
        written += archive.write_dump(updates)
        print(f"archived {len(baseline or [])} RIB record(s) and "
              f"{len(updates)} update record(s) in {len(written)} dump(s) "
              f"under {args.archive} (replay with `repro live`)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Handle ``repro profile``: roll up a ``--trace`` JSONL file."""
    try:
        trace = load_trace(args.trace_file)
    except (OSError, ValueError) as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2
    problems = validate_spans(trace.spans)
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    meta = trace.meta
    print(
        f"trace: {len(trace.spans)} span(s), {len(trace.counters)} "
        f"counter(s), schema v{meta.get('version', '?')}"
    )
    print()
    print(render_table(
        ["stage", "spans", "total s", "self s"],
        profile_rows(trace),
        title="Per-stage wall time",
    ))
    rows = counter_rows(trace)
    if rows:
        print()
        print(render_table(["counter", "value"], rows, title="Counters"))
    if problems and args.check:
        return 1
    return 0


def run_handler(args: argparse.Namespace) -> int:
    """Dispatch to the subcommand, tracing it when ``--trace`` was given."""
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return args.handler(args)
    tracer = Tracer()
    with use_tracer(tracer):
        code = args.handler(args)
    tracer.export(trace_path)
    return code


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Policy-atom replication toolkit (IMC 2025)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="render a simulated snapshot into an archive"
    )
    _add_world_options(simulate)
    simulate.add_argument("--start", default="2024-10-15 08:00")
    simulate.add_argument("--archive", type=Path, required=True)
    simulate.add_argument("--update-hours", type=float, default=0.0,
                          dest="update_hours")
    simulate.set_defaults(handler=cmd_simulate)

    atoms = commands.add_parser(
        "atoms", help="compute policy atoms and print statistics"
    )
    _add_world_options(atoms)
    _add_engine_options(atoms)
    atoms.add_argument("--archive", type=Path, default=None,
                       help="read records from this archive instead of simulating")
    atoms.add_argument("--start", default="2024-10-15 08:00")
    atoms.add_argument("--formation", action="store_true",
                       help="also print the formation-distance distribution")
    atoms.set_defaults(handler=cmd_atoms)

    trend = commands.add_parser(
        "trend", help="run a quick longitudinal sweep"
    )
    _add_world_options(trend)
    _add_engine_options(trend, with_checkpoint=True)
    _add_trend_range_options(trend)
    trend.add_argument("--store-dir", type=Path, default=None, dest="store_dir",
                       help="persist the sweep as a memory-mapped columnar "
                            "atom store at this directory (reopen with "
                            "`repro store info/query`)")
    trend.set_defaults(handler=cmd_trend)

    store = commands.add_parser(
        "store", help="build / inspect / query on-disk atom stores"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)

    build = store_commands.add_parser(
        "build", help="run a sweep and persist it as an atom store"
    )
    build.add_argument("store_dir", type=Path,
                       help="directory the store is written to")
    _add_world_options(build)
    _add_engine_options(build, with_checkpoint=True)
    _add_trend_range_options(build)
    build.set_defaults(handler=cmd_store_build)

    info = store_commands.add_parser(
        "info", help="summarize a store's manifest and snapshots"
    )
    info.add_argument("store_dir", type=Path)
    info.add_argument("--check", action="store_true",
                      help="verify every segment's SHA-256 digest")
    info.add_argument("--trend", action="store_true",
                      help="also recompute and print the trend table "
                           "from the stored columns")
    info.set_defaults(handler=cmd_store_info)

    query = store_commands.add_parser(
        "query", help="locate one prefix's atom inside a store"
    )
    query.add_argument("store_dir", type=Path)
    query.add_argument("prefix", help="prefix to look up, e.g. 10.1.0.0/16")
    query.add_argument("--snapshot", default=None,
                       help="snapshot key (default: the first snapshot)")
    query.set_defaults(handler=cmd_store_query)

    serve = commands.add_parser(
        "serve", help="serve atom queries over HTTP from an on-disk store"
    )
    serve.add_argument("store_dir", type=Path,
                       help="atom store directory (see `repro store build`)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--cache-entries", type=_positive_int,
                       default=DEFAULT_MAX_ENTRIES, dest="cache_entries",
                       help="response-cache capacity (LRU entries)")
    serve.add_argument("--check", action="store_true",
                       help="verify every segment's SHA-256 on first map")
    serve.set_defaults(handler=cmd_serve)

    live = commands.add_parser(
        "live", help="stream an archived update feed through the live "
                     "atom-maintenance pipeline"
    )
    live.add_argument("--archive", type=Path, required=True,
                      help="record archive holding the RIB dump and the "
                           "update feed (see `repro simulate`)")
    live.add_argument("--window", type=_positive_int, default=900,
                      help="window width in seconds (default: 900)")
    live.add_argument("--shards", type=_positive_int, default=1,
                      help="shard worker threads (default: 1)")
    live.add_argument("--queue-depth", type=_positive_int, default=256,
                      dest="queue_depth",
                      help="bounded per-shard queue depth; the coordinator "
                           "blocks (backpressure) when a shard falls behind")
    live.add_argument("--checkpoint-dir", type=Path, default=None,
                      dest="checkpoint_dir",
                      help="save window-boundary checkpoints here; a killed "
                           "run resumes from the last boundary")
    live.add_argument("--checkpoint-every", type=_positive_int, default=1,
                      dest="checkpoint_every",
                      help="checkpoint every N closed windows (default: 1)")
    live.add_argument("--store-dir", type=Path, default=None, dest="store_dir",
                      help="append per-window atom snapshots to this store "
                           "(queryable with `repro serve` while growing)")
    live.add_argument("--store-merge-every", type=int, default=0,
                      dest="store_merge_every",
                      help="fold window parts into the queryable store every "
                           "N windows (default: only at end of stream)")
    live.add_argument("--parity", choices=("off", "window"), default="window",
                      help="verify the streamed partition against a cold "
                           "recompute at every window boundary (default)")
    live.add_argument("--max-windows", type=_positive_int, default=None,
                      dest="max_windows",
                      help="stop after closing this many windows")
    live.add_argument("--family", type=int, choices=(4, 6), default=None,
                      help="restrict to one address family (default: both)")
    live.add_argument("--trace", type=Path, default=None,
                      help="write a JSONL span/counter trace of the run "
                           "(live.* counters; see docs/observability.md)")
    live.add_argument("--progress", action="store_true",
                      help="narrate each closed window on stderr")
    live.add_argument("--json", action="store_true",
                      help="print the run summary as JSON")
    live.set_defaults(handler=cmd_live)

    converge = commands.add_parser(
        "converge", help="run the discrete-event convergence engine over "
                         "one scenario"
    )
    _add_world_options(converge)
    converge.add_argument("--start", default="2004-01-15 00:00")
    converge.add_argument("--scenario", choices=sorted(SCENARIOS),
                          default="quiet",
                          help="perturbation schedule to apply after the "
                               "initial convergence (see docs/simulation.md)")
    converge.add_argument("--mrai", type=float, default=30.0,
                          help="per-neighbor MRAI hold time in sim seconds "
                               "(default: 30)")
    converge.add_argument("--snapshot-at", type=float, action="append",
                          dest="snapshot_at", metavar="SECONDS",
                          help="render a mid-convergence RIB snapshot this "
                               "many sim seconds after the scenario starts "
                               "(repeatable)")
    converge.add_argument("--archive", type=Path, default=None,
                          help="write the converged RIB baseline plus the "
                               "recorded update stream to this archive "
                               "(replay with `repro live`)")
    converge.add_argument("--parity", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="compare the quiescent tables against the "
                               "equilibrium renderer (default: on)")
    converge.add_argument("--max-events", type=int, default=None,
                          dest="max_events",
                          help="abort if quiescence needs more than this "
                               "many events")
    converge.add_argument("--trace", type=Path, default=None,
                          help="write a JSONL span/counter trace of the run "
                               "(sim.* counters; see docs/observability.md)")
    converge.set_defaults(handler=cmd_converge)

    profile = commands.add_parser(
        "profile", help="render the per-stage rollup of a --trace file"
    )
    profile.add_argument("trace_file", type=Path,
                         help="JSONL trace written by --trace")
    profile.add_argument("--check", action="store_true",
                         help="exit non-zero if the trace has structural "
                              "problems (unclosed or escaping spans)")
    profile.set_defaults(handler=cmd_profile)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return run_handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
