"""Spans, counters, and the tracer they land on.

One :class:`Tracer` instance observes one pipeline run.  Instrumented
code asks :func:`repro.obs.get_tracer` for the current tracer and

* opens a :meth:`~Tracer.span` around a timed stage (a context
  manager; spans nest, forming the run's call tree),
* bumps named :meth:`~Tracer.count` counters (cheap integers —
  records decoded, cache hits, prefixes dropped), or
* :meth:`~Tracer.record_span`-s a stage that was timed elsewhere
  (e.g. inside a pool worker that only shipped the duration home).

The default tracer is the :class:`NullTracer` singleton: every
operation is a no-op, so untraced runs pay one attribute lookup and a
call per instrumentation point and produce byte-identical output.

Timing uses a single monotonic clock (``time.perf_counter``) anchored
at tracer creation, so span intervals are mutually comparable; the
export carries the wall-clock anchor separately.  See
``docs/observability.md`` for the JSONL schema.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, Iterator, List, Optional, Union

#: Schema version of the JSONL export; bump on breaking changes.
TRACE_VERSION = 1


@dataclass
class SpanRecord:
    """One completed (or still open) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    #: counter increments attributed to this span while it was innermost
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_json(self) -> Dict[str, object]:
        """The span as a JSON-safe dict (one ``span`` JSONL line)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "attrs": self.attrs,
            "counters": self.counters,
        }


class Span:
    """Handle for an open span: a context manager with attribute setters."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self._record = record

    def set(self, **attrs: object) -> "Span":
        """Attach attributes to the span (merged into existing ones)."""
        self._record.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._close(self._record)


class _NullSpan:
    """Shared no-op stand-in for :class:`Span`."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: observes nothing, costs (almost) nothing."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        """No-op; returns the shared null span."""
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        """No-op."""
        return None

    def record_span(self, name: str, seconds: float, **attrs: object) -> None:
        """No-op."""
        return None


#: Module-level singleton; ``repro.obs.get_tracer`` hands it out.
NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: collects spans and counters for one run."""

    enabled = True

    def __init__(self) -> None:
        self.created_unix = time.time()
        self._origin = time.perf_counter()
        #: completed spans, in close order
        self.spans: List[SpanRecord] = []
        #: global counter totals
        self.counters: Dict[str, int] = {}
        self._stack: List[SpanRecord] = []
        self._next_id = 1

    # -- clock ----------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        """Open a nested span; close it by exiting the context."""
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start=self._now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(record)
        return Span(self, record)

    def _close(self, record: SpanRecord) -> None:
        record.end = self._now()
        # Spans close LIFO in straight-line code; a generator-held span
        # abandoned mid-iteration may close late, so tolerate any
        # stack position instead of asserting the top.
        try:
            self._stack.remove(record)
        except ValueError:
            pass
        self.spans.append(record)

    def record_span(self, name: str, seconds: float, **attrs: object) -> SpanRecord:
        """Record an already-timed stage as a completed span.

        The span is parented to the currently open span and placed so
        that it *ends* now — the shape parallel workers need when only
        the duration crossed the process boundary.
        """
        end = self._now()
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start=end - max(0.0, seconds),
            end=end,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(record)
        return record

    # -- counters -------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (and to the innermost span's)."""
        self.counters[name] = self.counters.get(name, 0) + n
        if self._stack:
            span_counters = self._stack[-1].counters
            span_counters[name] = span_counters.get(name, 0) + n

    # -- export ---------------------------------------------------------

    def lines(self) -> Iterator[Dict[str, object]]:
        """The export, as JSON-safe dicts (one per JSONL line)."""
        yield {
            "type": "meta",
            "version": TRACE_VERSION,
            "created_unix": self.created_unix,
            "spans": len(self.spans),
            "counters": len(self.counters),
        }
        for record in sorted(self.spans, key=lambda r: (r.start, r.span_id)):
            yield record.to_json()
        for name in sorted(self.counters):
            yield {"type": "counter", "name": name, "value": self.counters[name]}

    def export(self, target: Union[str, os.PathLike, IO[str]]) -> None:
        """Write the JSONL export to a path or an open text stream."""
        if hasattr(target, "write"):
            stream: IO[str] = target  # type: ignore[assignment]
            for line in self.lines():
                stream.write(json.dumps(line, separators=(",", ":")) + "\n")
            return
        with open(os.fspath(target), "w", encoding="utf-8") as handle:
            for line in self.lines():
                handle.write(json.dumps(line, separators=(",", ":")) + "\n")


TracerLike = Union[Tracer, NullTracer]

# ----------------------------------------------------------------------
# Current-tracer management
# ----------------------------------------------------------------------

_current: TracerLike = NULL_TRACER

#: Per-thread tracer overrides.  A worker thread that must not write to
#: the (single-threaded) global tracer installs its own here — either a
#: private recording tracer whose counters are merged back at a barrier,
#: or the NullTracer to silence instrumentation entirely.  The main
#: thread normally never sets one, so ``get_tracer`` stays one
#: attribute lookup for untraced code.
_thread_local = threading.local()


def get_tracer() -> TracerLike:
    """The tracer instrumented code should report to.

    A thread-local tracer (see :func:`set_thread_tracer`) wins over the
    process-wide one; with neither installed this is the NullTracer.
    """
    override: Optional[TracerLike] = getattr(_thread_local, "tracer", None)
    if override is not None:
        return override
    return _current


def set_tracer(tracer: TracerLike) -> TracerLike:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _current
    previous = _current
    _current = tracer
    return previous


def set_thread_tracer(tracer: Optional[TracerLike]) -> Optional[TracerLike]:
    """Install ``tracer`` for the calling thread only (None removes it).

    Returns the thread's previous override (None when there was none).
    Worker threads use this so concurrent ``count()`` calls cannot race
    the shared tracer's read-modify-write counter updates; the owner
    merges the private counters back deterministically at a barrier.
    """
    previous: Optional[TracerLike] = getattr(_thread_local, "tracer", None)
    _thread_local.tracer = tracer
    return previous


class use_tracer:
    """Context manager installing a tracer for the enclosed block."""

    def __init__(self, tracer: TracerLike):
        self.tracer = tracer
        self._previous: Optional[TracerLike] = None

    def __enter__(self) -> TracerLike:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info: object) -> None:
        set_tracer(self._previous if self._previous is not None else NULL_TRACER)


# ----------------------------------------------------------------------
# Ingest helper
# ----------------------------------------------------------------------

def traced_records(
    records: Iterable,
    source: str,
    tracer: Optional[TracerLike] = None,
) -> Iterator:
    """Wrap a route-record iterable in a ``mrt-decode`` stage span.

    The span opens lazily on first consumption and closes when the
    iterable is exhausted (or the generator is discarded), counting
    ``decode.records`` and ``decode.corrupt_records`` on the way
    through.  With the NullTracer current this adds one truthiness
    check per record and yields the records unchanged.
    """
    active = tracer if tracer is not None else get_tracer()
    if not active.enabled:
        yield from records
        return
    produced = 0
    corrupt = 0
    with active.span("mrt-decode", source=source) as span:
        try:
            for record in records:
                produced += 1
                if getattr(record, "is_corrupt", False):
                    corrupt += 1
                yield record
        finally:
            span.set(records=produced, corrupt_records=corrupt)
            active.count("decode.records", produced)
            if corrupt:
                active.count("decode.corrupt_records", corrupt)
