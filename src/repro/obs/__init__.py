"""Pipeline-wide observability: tracing spans, counters, JSONL export.

``repro.obs`` is dependency-free (stdlib only) and sits below every
other subsystem: the MRT decoder, the sanitizer, atom computation, the
incremental index and the execution engine all report to the *current
tracer* (:func:`get_tracer`).  By default that is :data:`NULL_TRACER`,
whose operations are no-ops — untraced runs stay byte-identical and pay
one call per instrumentation point.

Typical use::

    from repro import obs

    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        run_pipeline()
    tracer.export("trace.jsonl")

``repro trend --trace trace.jsonl`` does exactly this around a sweep,
and ``repro profile trace.jsonl`` renders the per-stage rollup.  The
JSONL schema is documented in ``docs/observability.md``; CI's
counter-regression gate consumes the same files.
"""

from repro.obs.profile import (
    StageRollup,
    TraceData,
    counter_rows,
    load_trace,
    profile_rows,
    stage_rollups,
    validate_spans,
)
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_VERSION,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    TracerLike,
    get_tracer,
    set_thread_tracer,
    set_tracer,
    traced_records,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "TRACE_VERSION",
    "NullTracer",
    "Span",
    "SpanRecord",
    "StageRollup",
    "TraceData",
    "Tracer",
    "TracerLike",
    "counter_rows",
    "get_tracer",
    "load_trace",
    "profile_rows",
    "set_thread_tracer",
    "set_tracer",
    "stage_rollups",
    "traced_records",
    "use_tracer",
    "validate_spans",
]
