"""Trace-file analysis: load, validate, and roll up exported traces.

The functions here consume the JSONL files :meth:`repro.obs.Tracer.export`
writes (see ``docs/observability.md``) and power both the
``repro profile`` command and the CI counter-regression gate — which is
why everything returns plain data structures rather than rendered text.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, List, Optional, Tuple, Union


@dataclass
class TraceData:
    """One parsed trace export."""

    meta: Dict[str, object] = field(default_factory=dict)
    spans: List[Dict[str, object]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)


def load_trace(source: Union[str, os.PathLike, IO[str]]) -> TraceData:
    """Parse a JSONL trace export; raises ValueError on malformed input."""
    if hasattr(source, "read"):
        lines = list(source)  # type: ignore[arg-type]
    else:
        with open(os.fspath(source), "r", encoding="utf-8") as handle:
            lines = list(handle)
    trace = TraceData()
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {number}: not JSON ({error})") from error
        kind = entry.get("type")
        if kind == "meta":
            trace.meta = entry
        elif kind == "span":
            trace.spans.append(entry)
        elif kind == "counter":
            trace.counters[str(entry["name"])] = int(entry["value"])
        else:
            raise ValueError(f"line {number}: unknown entry type {kind!r}")
    return trace


def validate_spans(spans: Iterable[Dict[str, object]]) -> List[str]:
    """Structural checks on exported spans; returns a list of problems.

    A well-formed trace has: every span closed (``end`` set), durations
    non-negative, every ``parent`` id resolving to a real span, each
    child's interval contained in its parent's (parents close after
    children).
    """
    problems: List[str] = []
    by_id: Dict[int, Dict[str, object]] = {}
    for span in spans:
        by_id[int(span["id"])] = span
    for span in by_id.values():
        label = f"span {span['id']} ({span['name']})"
        if span.get("end") is None:
            problems.append(f"{label}: never closed")
            continue
        start, end = float(span["start"]), float(span["end"])
        if end < start:
            problems.append(f"{label}: ends before it starts")
        parent_id = span.get("parent")
        if parent_id is None:
            continue
        parent = by_id.get(int(parent_id))
        if parent is None:
            problems.append(f"{label}: dangling parent {parent_id}")
            continue
        if parent.get("end") is None:
            continue  # already reported on the parent
        if float(parent["start"]) > start or float(parent["end"]) < end:
            problems.append(
                f"{label}: escapes parent span {parent['id']} "
                f"({parent['name']})"
            )
    return problems


@dataclass
class StageRollup:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    #: total minus time spent in child spans (any name)
    self_seconds: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)


def stage_rollups(spans: Iterable[Dict[str, object]]) -> List[StageRollup]:
    """Per-stage wall-time/counter aggregation, largest total first.

    Self time charges each span for its own interval minus the summed
    intervals of its direct children, so nested stages (decode inside
    sanitize inside an engine job) don't double-count.
    """
    spans = [span for span in spans if span.get("end") is not None]
    child_seconds: Dict[int, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_seconds[int(parent)] = (
                child_seconds.get(int(parent), 0.0) + float(span["seconds"])
            )
    rollups: Dict[str, StageRollup] = {}
    for span in spans:
        name = str(span["name"])
        rollup = rollups.setdefault(name, StageRollup(name))
        seconds = float(span["seconds"])
        rollup.count += 1
        rollup.total_seconds += seconds
        child_time = child_seconds.get(int(span["id"]), 0.0)
        rollup.self_seconds += max(0.0, seconds - child_time)
        for counter, value in (span.get("counters") or {}).items():
            rollup.counters[counter] = rollup.counters.get(counter, 0) + int(value)
    return sorted(rollups.values(), key=lambda r: (-r.total_seconds, r.name))


def profile_rows(trace: TraceData) -> List[Tuple[object, ...]]:
    """``repro profile`` stage-table rows: one per span name."""
    rows: List[Tuple[object, ...]] = []
    for rollup in stage_rollups(trace.spans):
        rows.append(
            (
                rollup.name,
                rollup.count,
                f"{rollup.total_seconds:.3f}",
                f"{rollup.self_seconds:.3f}",
            )
        )
    return rows


def counter_rows(
    trace: TraceData, prefix: Optional[str] = None
) -> List[Tuple[str, str]]:
    """``repro profile`` counter-table rows, sorted by name."""
    return [
        (name, f"{value:,}")
        for name, value in sorted(trace.counters.items())
        if prefix is None or name.startswith(prefix)
    ]
