"""Vantage-point reliability scoring (paper §7.1).

The paper's discussion: many atom splits are visible to a single VP and
reflect that VP's own policy environment, not a routing event.  This
module turns the split-observer data into a per-VP reliability score so
studies can "select VPs that are less likely to break atom stability".

Scores are in [0, 1]: 1 means the VP never solo-observed a split; the
score decays with the share of all split events the VP alone observed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bgp.rib import PeerId
from repro.core.splits import SplitEvent


@dataclass(frozen=True)
class VPReliability:
    """Reliability verdict for one vantage point."""

    peer: PeerId
    solo_splits: int
    shared_splits: int
    score: float

    @property
    def suspicious(self) -> bool:
        return self.score < 0.5


def score_vantage_points(
    events: Sequence[SplitEvent],
    vantage_points: Sequence[PeerId],
) -> List[VPReliability]:
    """Score every VP from a window of split events.

    A solo-observed split counts fully against a VP (the split exists
    only from its perspective); a shared observation counts 1/n.  The
    score is ``1 / (1 + weighted_splits / mean_weighted_splits)``
    normalised so that an average VP scores 0.5 and a silent VP 1.0.
    """
    solo: Counter = Counter()
    shared: Counter = Counter()
    weighted: Dict[PeerId, float] = {peer: 0.0 for peer in vantage_points}
    for event in events:
        observers = event.observers
        if not observers:
            continue
        if len(observers) == 1:
            solo[observers[0]] += 1
        for observer in observers:
            shared[observer] += 1
            if observer in weighted:
                weighted[observer] += 1.0 / len(observers)

    values = [value for value in weighted.values()]
    mean = (sum(values) / len(values)) if values else 0.0
    results = []
    for peer in vantage_points:
        load = weighted.get(peer, 0.0)
        if mean > 0:
            score = 1.0 / (1.0 + load / mean)
        else:
            score = 1.0
        results.append(
            VPReliability(
                peer=peer,
                solo_splits=solo.get(peer, 0),
                shared_splits=shared.get(peer, 0) - solo.get(peer, 0),
                score=score,
            )
        )
    results.sort(key=lambda r: r.score)
    return results


def select_reliable(
    events: Sequence[SplitEvent],
    vantage_points: Sequence[PeerId],
    drop_fraction: float = 0.2,
) -> Tuple[List[PeerId], List[PeerId]]:
    """Split VPs into (keep, drop) by reliability.

    ``drop_fraction`` of the VPs with the lowest scores — those whose
    own policy churn most often masquerades as atom splits — are
    recommended for exclusion when studying *global* routing policy.
    """
    ranked = score_vantage_points(events, vantage_points)
    drop_count = int(len(ranked) * drop_fraction)
    dropped = [entry.peer for entry in ranked[:drop_count]]
    kept = [entry.peer for entry in ranked[drop_count:]]
    return kept, dropped
