"""Prefix-filter threshold sensitivity (A8.5, Table 7).

For a grid of (minimum collectors, minimum peer ASes) thresholds, count
the prefixes that would survive filtering — demonstrating the paper's
point that the counts are stable around the adopted (>= 2, >= 4) cell.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bgp.rib import RIBSnapshot


def threshold_sensitivity(
    snapshot: RIBSnapshot,
    collector_thresholds: Sequence[int] = (1, 2, 3),
    peer_thresholds: Sequence[int] = (1, 2, 3, 4, 5),
    max_length: Dict[int, int] = None,
) -> Dict[Tuple[int, int], int]:
    """{(min collectors, min peer ASes): surviving prefix count}."""
    if max_length is None:
        max_length = {4: 24, 6: 48}
    visibility = snapshot.prefix_visibility()
    grid: Dict[Tuple[int, int], int] = {
        (c, p): 0 for c in collector_thresholds for p in peer_thresholds
    }
    for prefix, (collectors, peer_ases) in visibility.items():
        limit = max_length.get(prefix.family)
        if limit is not None and prefix.length > limit:
            continue
        n_collectors = len(collectors)
        n_peers = len(peer_ases)
        for c in collector_thresholds:
            if n_collectors < c:
                continue
            for p in peer_thresholds:
                if n_peers >= p:
                    grid[(c, p)] += 1
    return grid


def sensitivity_rows(
    grid: Dict[Tuple[int, int], int],
    collector_thresholds: Sequence[int] = (1, 2, 3),
    peer_thresholds: Sequence[int] = (1, 2, 3, 4, 5),
) -> List[List[object]]:
    """Table 7 layout: one row per collector threshold."""
    rows: List[List[object]] = []
    for c in collector_thresholds:
        row: List[object] = [c]
        for p in peer_thresholds:
            row.append(grid.get((c, p), 0))
        rows.append(row)
    return rows
