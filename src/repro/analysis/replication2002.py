"""Reproducing Afek et al. (§3): the 2002-01-15 RRC00 snapshot.

The paper reverse-engineers the original setup: one globally-scoped
collector (RRC00) with exactly 13 full-feed peers, the 2002-01-15 8am
UTC snapshot, and *no* prefix filtering (§3.1).  This module builds the
matching simulated dataset and reruns the original analyses:

* general statistics (≈ 12.5K ASes / 115K prefixes / 26K atoms at full
  scale; scaled by the world factor here) and the Figure 14 CDFs;
* update-record correlation over the following 4 hours (Figure 15);
* stability over 8 hours / 1 day / 1 week (Table 6), compared against
  the numbers the original paper reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.atoms import AtomSet
from repro.core.pipeline import AtomComputation, compute_policy_atoms
from repro.core.sanitize import SanitizationConfig
from repro.core.stability import stability_pair
from repro.core.statistics import (
    GeneralStats,
    atoms_per_as_distribution,
    cdf,
    general_stats,
    prefixes_per_as_distribution,
    prefixes_per_atom_distribution,
)
from repro.core.update_correlation import UpdateCorrelation, update_correlation
from repro.net.prefix import AF_INET
from repro.simulation.scenario import SimulatedInternet
from repro.topology.evolution import WorldParams
from repro.util.dates import DAY, HOUR, WEEK, utc_timestamp

#: Afek et al.'s stability numbers, for the Table 6 comparison.
ORIGINAL_STABILITY = {
    "8h": (0.953, 0.977),
    "1d": (0.916, 0.970),
    "1w": (0.775, 0.860),
}

SNAPSHOT_2002 = utc_timestamp(2002, 1, 15, 8)


def replication_world_params(
    seed: int = 20020115, scale: float = 1.0 / 100.0
) -> WorldParams:
    """A world shaped like early-2002 collection: a single collector
    whose 13 peers all share full tables."""
    return WorldParams(
        seed=seed,
        as_scale=scale,
        prefix_scale=scale,
        peer_scale=0.0,       # only the minimum applies
        collector_scale=0.0,  # only the minimum applies
        min_fullfeed_peers=13,
        min_collectors=1,
        inject_artifacts=False,  # the 2002 feed predates these artifacts
    )


def replication_sanitization() -> SanitizationConfig:
    """Afek et al.'s methodology: all prefixes, any routing table."""
    return SanitizationConfig(
        min_collectors=1,
        min_peer_ases=1,
        keep_all_lengths=True,
    )


@dataclass
class ReplicationResult:
    """Everything §3 reports."""

    base: AtomComputation
    stats: GeneralStats
    stability: Dict[str, Tuple[float, float]]
    updates: Optional[UpdateCorrelation] = None
    update_record_count: int = 0

    @property
    def atoms(self) -> AtomSet:
        return self.base.atoms

    def stability_comparison(self) -> List[Tuple[str, float, float, float, float]]:
        """Rows of Table 6: (span, original CAM, original MPM, ours...)"""
        rows = []
        for span in ("8h", "1d", "1w"):
            original = ORIGINAL_STABILITY[span]
            ours = self.stability.get(span, (float("nan"), float("nan")))
            rows.append((span, original[0], original[1], ours[0], ours[1]))
        return rows

    def distribution_cdfs(self) -> Dict[str, List[Tuple[int, float]]]:
        """Figure 14: CDFs of atoms/AS, prefixes/atom, prefixes/AS."""
        return {
            "atoms_per_as": cdf(atoms_per_as_distribution(self.atoms)),
            "prefixes_per_atom": cdf(prefixes_per_atom_distribution(self.atoms)),
            "prefixes_per_as": cdf(prefixes_per_as_distribution(self.atoms)),
        }


class Replication2002:
    """Builds the 2002 dataset and replays the original analyses."""

    def __init__(self, seed: int = 20020115, scale: float = 1.0 / 100.0):
        self.params = replication_world_params(seed, scale)
        self.simulator = SimulatedInternet(self.params, start=SNAPSHOT_2002)
        self.sanitization = replication_sanitization()

    def _compute(self, when: int) -> AtomComputation:
        records = self.simulator.rib_records(when, family=AF_INET)
        return compute_policy_atoms(records, config=self.sanitization)

    def run(self, with_updates: bool = True) -> ReplicationResult:
        """Compute the 2002 atoms, stability horizons and update correlation."""
        base = self._compute(SNAPSHOT_2002)
        updates_result = None
        record_count = 0
        if with_updates:
            records = self.simulator.update_records(SNAPSHOT_2002, hours=4.0)
            record_count = len(records)
            updates_result = update_correlation(base.atoms, records, max_size=7)
        stability: Dict[str, Tuple[float, float]] = {}
        for label, delta in (("8h", 8 * HOUR), ("1d", DAY), ("1w", WEEK)):
            later = self._compute(SNAPSHOT_2002 + delta)
            stability[label] = stability_pair(base.atoms, later.atoms)
        return ReplicationResult(
            base=base,
            stats=general_stats(base.atoms),
            stability=stability,
            updates=updates_result,
            update_record_count=record_count,
        )
