"""IPv4/IPv6 sibling-atom mapping (paper §7.3).

The paper proposes using the *structure* of policy atoms — their counts,
sizes, and formation distances within one AS — to identify "sibling
prefixes": IPv4 and IPv6 prefixes serving the same purpose.  This
module implements that proposal: for every AS originating in both
families, v4 atoms are matched to v6 atoms by structural similarity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.formation import FormationResult, formation_distances


@dataclass(frozen=True)
class SiblingCandidate:
    """A matched (v4 atom, v6 atom) pair within one origin AS."""

    origin: int
    v4_atom: PolicyAtom
    v6_atom: PolicyAtom
    similarity: float

    def prefix_pairs(self) -> List[Tuple[str, str]]:
        """Cross product of member prefixes (the candidate siblings)."""
        v4 = sorted(str(p) for p in self.v4_atom.prefixes)
        v6 = sorted(str(p) for p in self.v6_atom.prefixes)
        return [(a, b) for a in v4 for b in v6]


def _atom_signature(
    atom: PolicyAtom,
    formation: FormationResult,
    max_size: int,
) -> Tuple[float, float, float]:
    """Structural fingerprint: relative size, formation distance,
    visibility share."""
    size = min(1.0, atom.size / max(1, max_size))
    distance = formation.distances.get(atom.atom_id, 1) / 5.0
    visibility = len(atom.visible_at()) / max(1, len(atom.paths))
    return (size, distance, visibility)


def _similarity(a: Tuple[float, float, float], b: Tuple[float, float, float]) -> float:
    distance = sum((x - y) ** 2 for x, y in zip(a, b)) ** 0.5
    return 1.0 / (1.0 + distance)


def match_sibling_atoms(
    v4_atoms: AtomSet,
    v6_atoms: AtomSet,
    min_similarity: float = 0.5,
) -> List[SiblingCandidate]:
    """Match v4 and v6 atoms of dual-stack origins by structure.

    Greedy per-origin matching on the structural fingerprint (relative
    size, formation distance, vantage-point visibility).  Returns pairs
    above ``min_similarity``, best matches first.
    """
    v4_formation = formation_distances(v4_atoms)
    v6_formation = formation_distances(v6_atoms)
    v4_by_origin = v4_atoms.atoms_by_origin()
    v6_by_origin = v6_atoms.atoms_by_origin()

    candidates: List[SiblingCandidate] = []
    for origin in sorted(set(v4_by_origin) & set(v6_by_origin)):
        v4_list = v4_by_origin[origin]
        v6_list = v6_by_origin[origin]
        max_v4 = max(atom.size for atom in v4_list)
        max_v6 = max(atom.size for atom in v6_list)
        scored: List[Tuple[float, PolicyAtom, PolicyAtom]] = []
        for v4_atom in v4_list:
            sig4 = _atom_signature(v4_atom, v4_formation, max_v4)
            for v6_atom in v6_list:
                sig6 = _atom_signature(v6_atom, v6_formation, max_v6)
                scored.append((_similarity(sig4, sig6), v4_atom, v6_atom))
        scored.sort(key=lambda item: (-item[0], item[1].atom_id, item[2].atom_id))
        used_v4: set = set()
        used_v6: set = set()
        for similarity, v4_atom, v6_atom in scored:
            if similarity < min_similarity:
                break
            if v4_atom.atom_id in used_v4 or v6_atom.atom_id in used_v6:
                continue
            used_v4.add(v4_atom.atom_id)
            used_v6.add(v6_atom.atom_id)
            candidates.append(
                SiblingCandidate(
                    origin=origin,
                    v4_atom=v4_atom,
                    v6_atom=v6_atom,
                    similarity=similarity,
                )
            )
    candidates.sort(key=lambda c: -c.similarity)
    return candidates


def dual_stack_origins(v4_atoms: AtomSet, v6_atoms: AtomSet) -> List[int]:
    """Origins announcing in both families."""
    return sorted(
        set(v4_atoms.atoms_by_origin()) & set(v6_atoms.atoms_by_origin())
    )
