"""Vantage-point split study (§4.4.1, Figures 6, 7 and 16).

Processes one snapshot per day over a window, flags atom splits across
each (t, t+1, t+2) triple, and counts how many vantage points observe
each split.  The paper's findings: ~60 % of splits are visible to a
single VP and ~80 % to at most three, with single-observer splits
concentrated on a few VPs (often the VP's own provider change).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import AtomComputation, compute_policy_atoms
from repro.core.sanitize import SanitizationConfig
from repro.core.splits import (
    SplitEvent,
    detect_splits,
    observer_count_distribution,
    top_observer_breakdown,
)
from repro.net.prefix import AF_INET
from repro.simulation.scenario import SimulatedInternet
from repro.util.dates import DAY


@dataclass
class DailySplits:
    """Split events detected for one day's (t, t+1, t+2) triple."""

    timestamp: int
    events: List[SplitEvent]

    def breakdown(self) -> Dict[str, int]:
        """Single/multi-observer breakdown of this day's events (Fig. 7)."""
        return top_observer_breakdown(self.events)


@dataclass
class VantageStudyResult:
    days: List[DailySplits]

    def all_events(self) -> List[SplitEvent]:
        """Every split event across the window, flattened."""
        events: List[SplitEvent] = []
        for day in self.days:
            events.extend(day.events)
        return events

    def observer_cdf(self) -> List[Tuple[int, float]]:
        """Figure 6: cumulative share of events by observer count."""
        distribution = observer_count_distribution(self.all_events())
        total = sum(distribution.values())
        points: List[Tuple[int, float]] = []
        running = 0
        for count in sorted(distribution):
            running += distribution[count]
            points.append((count, running / total if total else 0.0))
        return points

    def share_single_observer(self) -> float:
        """Share of events visible to exactly one vantage point."""
        events = self.all_events()
        if not events:
            return 0.0
        return sum(1 for e in events if e.observer_count == 1) / len(events)

    def share_at_most(self, count: int) -> float:
        """Share of events visible to at most ``count`` vantage points."""
        events = self.all_events()
        if not events:
            return 0.0
        return sum(1 for e in events if e.observer_count <= count) / len(events)


class VantageStudy:
    """Daily-snapshot split detection over a time window."""

    def __init__(
        self,
        simulator: SimulatedInternet,
        family: int = AF_INET,
        sanitization: Optional[SanitizationConfig] = None,
    ):
        self.simulator = simulator
        self.family = family
        self.sanitization = sanitization

    def _compute(self, when: int) -> AtomComputation:
        records = self.simulator.rib_records(when, family=self.family)
        return compute_policy_atoms(records, config=self.sanitization)

    def run(self, start: int, days: int, hour: int = 8) -> VantageStudyResult:
        """Process ``days`` daily snapshots starting at ``start``.

        Each day contributes the triple (day, day+1, day+2); the result
        therefore covers ``days - 2`` event days.
        """
        if days < 3:
            raise ValueError("need at least 3 daily snapshots")
        snapshots: List[AtomComputation] = []
        results: List[DailySplits] = []
        for index in range(days):
            when = start + index * DAY
            snapshots.append(self._compute(when))
            if len(snapshots) >= 3:
                first, second, third = snapshots[-3], snapshots[-2], snapshots[-1]
                events = detect_splits(first.atoms, second.atoms, third.atoms)
                results.append(DailySplits(timestamp=when, events=events))
        return VantageStudyResult(days=results)
