"""Probing-target reduction via policy atoms (paper §5.5 / §6).

Netdiff and iPlane used policy atoms to cut active-measurement load:
probe one representative prefix per atom instead of every prefix, and
refresh the atom list periodically.  This module implements that
application and its accuracy accounting, so the trade-off the paper
cites ("considerably reduces the use of resources while maintaining
good levels of accuracy") can be measured against simulated drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.atoms import AtomSet
from repro.net.prefix import Prefix


@dataclass(frozen=True)
class ProbingPlan:
    """A per-atom probing target list derived from one atom set."""

    #: representative prefix per atom id
    representatives: Dict[int, Prefix]
    #: every prefix -> the atom id whose representative covers it
    covered_by: Dict[Prefix, int]
    total_prefixes: int

    @property
    def target_count(self) -> int:
        return len(self.representatives)

    @property
    def reduction_factor(self) -> float:
        """How many fewer probes than probing every prefix."""
        if not self.target_count:
            return 1.0
        return self.total_prefixes / self.target_count

    def targets(self) -> List[Prefix]:
        """The prefixes to probe, sorted."""
        return sorted(self.representatives.values(), key=Prefix.key)


def build_probing_plan(atom_set: AtomSet) -> ProbingPlan:
    """One representative prefix per atom (the lowest, for determinism)."""
    representatives: Dict[int, Prefix] = {}
    covered_by: Dict[Prefix, int] = {}
    for atom in atom_set:
        representative = min(atom.prefixes, key=Prefix.key)
        representatives[atom.atom_id] = representative
        for prefix in atom.prefixes:
            covered_by[prefix] = atom.atom_id
    return ProbingPlan(
        representatives=representatives,
        covered_by=covered_by,
        total_prefixes=atom_set.prefix_count(),
    )


def plan_accuracy(plan: ProbingPlan, later: AtomSet) -> float:
    """Share of prefixes the (possibly stale) plan still measures right.

    A prefix is *accurately covered* when, in the later snapshot, it
    shares an atom with its plan-time representative — probing the
    representative then observes the prefix's current paths exactly.
    Prefixes that drifted into another atom (or vanished) count against
    accuracy; new prefixes unknown to the plan are ignored, matching how
    a deployed target list behaves between refreshes.
    """
    checked = 0
    accurate = 0
    for prefix, atom_id in plan.covered_by.items():
        representative = plan.representatives[atom_id]
        current = later.atom_of(prefix)
        if current is None:
            checked += 1
            continue
        checked += 1
        if prefix == representative or representative in current.prefixes:
            accurate += 1
    return accurate / checked if checked else 1.0


def staleness_curve(
    plan: ProbingPlan, snapshots: List[Tuple[float, AtomSet]]
) -> List[Tuple[float, float]]:
    """Accuracy of one plan against successive snapshots.

    ``snapshots`` is a list of (age label, atom set); the result pairs
    each age with the plan's accuracy there — the decay that made iPlane
    refresh its atom list every two weeks.
    """
    return [(age, plan_accuracy(plan, atoms)) for age, atoms in snapshots]
