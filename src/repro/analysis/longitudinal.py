"""The longitudinal study (§4): quarterly/annual atom analyses 2004-2024.

For each analysed quarter the paper takes four RIB snapshots (15th 8am,
15th 4pm, 16th 8am, 22nd 8am) plus the 4-hour update stream after the
first one.  :class:`SnapshotSuite` computes atoms for all four and
derives every §4 metric; :class:`LongitudinalStudy` walks a year range
and collects the trend series behind Figures 4, 5, 12 and 13.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.atoms import AtomSet
from repro.core.formation import FormationResult, formation_distances
from repro.core.fullfeed import feed_summary
from repro.core.incremental import AtomIndex
from repro.core.intern import PathInternPool
from repro.core.pipeline import AtomComputation, compute_policy_atoms
from repro.core.sanitize import SanitizationConfig, sanitize
from repro.core.stability import stability_pair
from repro.core.statistics import GeneralStats, general_stats
from repro.core.update_correlation import UpdateCorrelation, update_correlation
from repro.net.prefix import AF_INET
from repro.obs import get_tracer, traced_records
from repro.reporting.series import Series
from repro.simulation.scenario import SimulatedInternet
from repro.util.dates import utc_timestamp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.scheduler import ExecutionEngine

#: (day, hour) of the four snapshots inside an analysed month.
SNAPSHOT_OFFSETS = ((15, 8), (15, 16), (16, 8), (22, 8))


@dataclass
class SnapshotSuite:
    """Atoms for one quarter's four snapshots plus derived metrics."""

    year: int
    month: int
    family: int
    base: AtomComputation
    after_8h: Optional[AtomComputation] = None
    after_24h: Optional[AtomComputation] = None
    after_week: Optional[AtomComputation] = None
    updates: Optional[UpdateCorrelation] = None
    update_record_count: int = 0
    #: dirty-set / key-recomputation counters when the suite was built
    #: incrementally (empty on the full-recomputation path)
    incremental_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def atoms(self) -> AtomSet:
        return self.base.atoms

    def stats(self) -> GeneralStats:
        """Table-1 statistics of the base snapshot."""
        return general_stats(self.base.atoms)

    def formation(self, **kwargs) -> FormationResult:
        """Formation distances of the base snapshot's atoms."""
        return formation_distances(self.base.atoms, **kwargs)

    def stability(self) -> Dict[str, Tuple[float, float]]:
        """{"8h"/"24h"/"1w": (CAM, MPM)} for available pairs."""
        pairs = {}
        for label, later in (
            ("8h", self.after_8h),
            ("24h", self.after_24h),
            ("1w", self.after_week),
        ):
            if later is not None:
                pairs[label] = stability_pair(self.base.atoms, later.atoms)
        return pairs

    def feed(self) -> Dict[str, object]:
        """Full-feed summary of the base snapshot (Fig. 12/13 input)."""
        return feed_summary(self.base.dataset.snapshot)


@dataclass
class YearResult:
    """One row of the longitudinal trend.

    ``suite`` holds the full in-memory computation on the legacy
    serial path; engine-backed runs return the persistable summary
    only, so ``suite`` is None there.
    """

    year: float
    suite: Optional[SnapshotSuite]
    stats: GeneralStats
    formation_shares: Dict[int, float]
    formation_shares_no_single: Dict[int, float]
    stability: Dict[str, Tuple[float, float]]
    feed: Dict[str, object]


class LongitudinalStudy:
    """Drives a simulator through the paper's snapshot cadence.

    The study object owns one evolving world, so consecutive quarters
    share topology and the propagation cache — the same economy the
    paper gets from processing its archive chronologically.
    """

    def __init__(
        self,
        simulator: SimulatedInternet,
        family: int = AF_INET,
        sanitization: Optional[SanitizationConfig] = None,
        engine: Optional["ExecutionEngine"] = None,
        incremental: bool = False,
        store_dir: Optional[str] = None,
    ):
        self.simulator = simulator
        self.family = family
        self.sanitization = sanitization
        #: when set, run_years/run_quarters build a job graph and
        #: submit it instead of computing inline
        self.engine = engine
        #: when set, every sweep job persists its snapshots as an
        #: atom-store part here and the sweep finalizes the merged
        #: store (requires ``engine``)
        self.store_dir = None if store_dir is None else str(store_dir)
        if self.store_dir is not None and engine is None:
            raise ValueError("store_dir persistence requires an engine")
        #: maintain atoms across a suite's instants via AtomIndex
        #: instead of recomputing from scratch (value-identical output)
        self.incremental = incremental
        self._index: Optional[AtomIndex] = None
        #: study-lifetime intern pool: consecutive snapshots share most
        #: of their paths, so each normalised path is interned (and
        #: hashed) once for the whole sweep
        self._pool: Optional[PathInternPool] = None

    def _ensure_pool(self) -> PathInternPool:
        if self._pool is None:
            self._pool = PathInternPool()
        return self._pool

    # ------------------------------------------------------------------
    # Engine submission
    # ------------------------------------------------------------------

    def _run_engine(
        self,
        quarters: Sequence[Tuple[int, int, float]],
        with_stability: bool,
        with_updates: bool,
    ) -> List[YearResult]:
        """Build the sweep's job graph and submit it to the engine.

        Jobs are self-contained (world params + advance cadence), so
        they require a pristine simulator: the cadence they replay
        starts at the simulator's birth instant.  With ``store_dir``
        set, workers persist per-job parts as they compute and the
        sweep ends by merging them into the final store — cached or
        checkpointed jobs whose part is missing are recomputed by the
        scheduler, so the merge never lacks columns.
        """
        from repro.engine.jobs import build_jobs

        assert self.engine is not None
        if self.simulator.current_time != self.simulator.start:
            raise ValueError(
                "engine-backed runs need a freshly built simulator; "
                "this one was already advanced past its start instant"
            )
        jobs = build_jobs(
            self.simulator.params,
            self.simulator.start,
            quarters,
            family=self.family,
            sanitization=self.sanitization,
            with_stability=with_stability,
            with_updates=with_updates,
            incremental=self.incremental,
            store_dir=self.store_dir,
        )
        quarters_out = self.engine.run(jobs)
        if self.store_dir is not None:
            from repro.engine.cache import job_digest
            from repro.store.writer import merge_parts

            merge_parts(self.store_dir, [job_digest(job) for job in jobs])
        return [result_from_quarter(q) for q in quarters_out]

    def _update_records(self, start: int, hours: float):
        """The post-snapshot update stream, as a traced ingest stage."""
        tracer = get_tracer()
        with tracer.span("mrt-decode", source="simulated-updates") as span:
            records = self.simulator.update_records(
                start, hours=hours, family=self.family
            )
            if tracer.enabled:
                span.set(records=len(records))
                tracer.count("decode.records", len(records))
        return records

    def _compute(self, when: int) -> AtomComputation:
        records = traced_records(
            self.simulator.rib_records(when, family=self.family),
            source="simulated",
        )
        return compute_policy_atoms(
            records, config=self.sanitization, pool=self._ensure_pool()
        )

    def _compute_incremental(self, when: int) -> Tuple[AtomComputation, str]:
        """One instant through the :class:`AtomIndex`.

        Sanitization still runs per instant (vantage points and the
        prefix universe legitimately move between snapshots); what the
        index saves is the O(prefixes x VPs) key recomputation.  A
        changed vantage-point list invalidates every key, so that case
        falls back to a full rebuild — seeded with the shared intern
        pool, which survives rebuilds.
        """
        records = traced_records(
            self.simulator.rib_records(when, family=self.family),
            source="simulated",
        )
        dataset = sanitize(records, self.sanitization)
        index = self._index
        if index is not None and index.vantage_points == dataset.vantage_points:
            index.sync_to(dataset.snapshot, prefixes=dataset.prefixes)
            mode = "incremental"
        else:
            # The index owns a copy: sync_to mutates it, and earlier
            # instants' datasets must stay pristine for their metrics.
            # Pool and stats carry over so interning work and counters
            # survive the rebuild.
            if index is not None:
                index.detach()
            index = AtomIndex(
                dataset.snapshot.copy(),
                vantage_points=dataset.vantage_points,
                prefixes=dataset.prefixes,
                pool=index.pool if index is not None else self._ensure_pool(),
                stats=index.stats if index is not None else None,
            )
            self._index = index
            mode = "rebuild"
        atoms = index.atoms()
        return AtomComputation(atoms=atoms, dataset=dataset), mode

    def snapshot_suite(
        self,
        year: int,
        month: int = 1,
        with_stability: bool = True,
        with_updates: bool = False,
        update_hours: float = 4.0,
    ) -> SnapshotSuite:
        """Compute one quarter's suite (timestamps per §2.4.1)."""
        times = [
            utc_timestamp(year, month, day, hour) for day, hour in SNAPSHOT_OFFSETS
        ]
        if not self.incremental:
            base = self._compute(times[0])
            suite = SnapshotSuite(
                year=year, month=month, family=self.family, base=base
            )
            if with_updates:
                records = self._update_records(times[0], update_hours)
                suite.update_record_count = len(records)
                suite.updates = update_correlation(base.atoms, records, max_size=7)
            if with_stability:
                suite.after_8h = self._compute(times[1])
                suite.after_24h = self._compute(times[2])
                suite.after_week = self._compute(times[3])
            return suite
        return self._incremental_suite(
            year, month, times, with_stability, with_updates, update_hours
        )

    def _incremental_suite(
        self,
        year: int,
        month: int,
        times: Sequence[int],
        with_stability: bool,
        with_updates: bool,
        update_hours: float,
    ) -> SnapshotSuite:
        """The within-quarter walk driven by the :class:`AtomIndex`."""
        key_base = (
            self._index.stats.key_recomputations if self._index else 0
        )
        dirty_base = len(self._index.stats.dirty_sizes) if self._index else 0
        timings: List[Tuple[str, float]] = []

        def step(when: int) -> AtomComputation:
            started = time.perf_counter()
            computation, mode = self._compute_incremental(when)
            timings.append((mode, time.perf_counter() - started))
            return computation

        base = step(times[0])
        suite = SnapshotSuite(year=year, month=month, family=self.family, base=base)
        if with_updates:
            records = self._update_records(times[0], update_hours)
            suite.update_record_count = len(records)
            suite.updates = update_correlation(base.atoms, records, max_size=7)
        if with_stability:
            suite.after_8h = step(times[1])
            suite.after_24h = step(times[2])
            suite.after_week = step(times[3])
        stats = self._index.stats
        suite.incremental_stats = {
            "steps": len(timings),
            "incremental_steps": sum(
                1 for mode, _ in timings if mode == "incremental"
            ),
            "rebuilds": sum(1 for mode, _ in timings if mode == "rebuild"),
            "key_recomputations": stats.key_recomputations - key_base,
            "dirty_sizes": stats.dirty_sizes[dirty_base:],
            "prefix_count": base.atoms.prefix_count(),
            "seconds_rebuild": sum(
                seconds for mode, seconds in timings if mode == "rebuild"
            ),
            "seconds_incremental": sum(
                seconds for mode, seconds in timings if mode == "incremental"
            ),
        }
        return suite

    def run_years(
        self,
        years: Sequence[int],
        month: int = 1,
        with_stability: bool = True,
        with_updates: bool = False,
    ) -> List[YearResult]:
        """One suite per year (the cadence behind Figures 4/5/12/13)."""
        if self.engine is not None:
            return self._run_engine(
                [(year, month, float(year)) for year in years],
                with_stability,
                with_updates,
            )
        results: List[YearResult] = []
        for year in years:
            suite = self.snapshot_suite(
                year, month, with_stability=with_stability, with_updates=with_updates
            )
            results.append(self._result_from_suite(year, suite, with_stability))
        return results

    def run_quarters(
        self,
        first_year: int,
        last_year: int,
        with_stability: bool = True,
        with_updates: bool = False,
    ) -> List[YearResult]:
        """The paper's full cadence: one suite per quarter (§2.4.1).

        Results carry fractional years (2004.0, 2004.25, ...) so trend
        series plot directly.
        """
        if self.engine is not None:
            return self._run_engine(
                [
                    (year, month, year + index / 4.0)
                    for year in range(first_year, last_year + 1)
                    for index, month in enumerate((1, 4, 7, 10))
                ],
                with_stability,
                with_updates,
            )
        results: List[YearResult] = []
        for year in range(first_year, last_year + 1):
            for index, month in enumerate((1, 4, 7, 10)):
                suite = self.snapshot_suite(
                    year,
                    month,
                    with_stability=with_stability,
                    with_updates=with_updates,
                )
                result = self._result_from_suite(year, suite, with_stability)
                result = YearResult(
                    year=year + index / 4.0,
                    suite=result.suite,
                    stats=result.stats,
                    formation_shares=result.formation_shares,
                    formation_shares_no_single=result.formation_shares_no_single,
                    stability=result.stability,
                    feed=result.feed,
                )
                results.append(result)
        return results

    def _result_from_suite(
        self, year: int, suite: SnapshotSuite, with_stability: bool
    ) -> YearResult:
        formation = suite.formation()
        return YearResult(
            year=year,
            suite=suite,
            stats=suite.stats(),
            formation_shares=formation.distance_shares(),
            formation_shares_no_single=formation.shares_excluding_single_origins(
                suite.atoms
            ),
            stability=suite.stability() if with_stability else {},
            feed=suite.feed(),
        )


def result_from_quarter(quarter) -> YearResult:
    """Adapt an engine :class:`~repro.engine.jobs.QuarterResult` to the
    trend-series row shape (``suite`` is not materialised)."""
    return YearResult(
        year=quarter.year,
        suite=None,
        stats=quarter.stats,
        formation_shares=quarter.formation_shares,
        formation_shares_no_single=quarter.formation_shares_no_single,
        stability=quarter.stability,
        feed=quarter.feed,
    )


def trend_results_from_store(store) -> List[YearResult]:
    """Recompute the trend rows from a persisted atom store.

    ``store`` is an open :class:`~repro.store.reader.AtomStore` built
    by a ``--store-dir`` sweep.  Every metric that derives from atoms
    — Table-1 stats, formation shares, CAM/MPM stability — is
    recomputed from the reconstructed :class:`AtomSet` values; the
    feed summary (which needs the raw snapshot) comes from the
    snapshot metadata persisted alongside the columns.  Because store
    reconstruction is value-identical to ``compute_atoms`` (atom ids
    and ordering included), the rows equal what the in-memory sweep
    produced (asserted in ``tests/store/test_store_pipeline.py``).
    """
    by_label: Dict[str, Dict[str, object]] = {}
    order: List[str] = []
    for entry in store.snapshots():
        group = by_label.setdefault(entry.label, {})
        if not group:
            order.append(entry.label)
        group[entry.role] = entry
    results: List[YearResult] = []
    for label in order:
        group = by_label[label]
        base_entry = group.get("base")
        if base_entry is None:
            raise ValueError(f"store quarter {label!r} has no base snapshot")
        base_atoms = store.atoms(base_entry.key)
        formation = formation_distances(base_atoms)
        stability: Dict[str, Tuple[float, float]] = {}
        for role in ("8h", "24h", "1w"):
            later = group.get(role)
            if later is not None:
                stability[role] = stability_pair(
                    base_atoms, store.atoms(later.key)
                )
        results.append(
            YearResult(
                year=base_entry.year,
                suite=None,
                stats=general_stats(base_atoms),
                formation_shares=formation.distance_shares(),
                formation_shares_no_single=(
                    formation.shares_excluding_single_origins(base_atoms)
                ),
                stability=stability,
                feed=dict(base_entry.feed or {}),
            )
        )
    return results


# ----------------------------------------------------------------------
# Trend series builders (Figures 4, 5, 12, 13 and their IPv6 twins)
# ----------------------------------------------------------------------

def formation_trend_series(
    results: Sequence[YearResult], max_distance: int = 5
) -> List[Series]:
    """Figure 4: % atoms formed at each distance, per year, with the
    single-atom-AS-excluded variant as dashed twins."""
    series: List[Series] = []
    for distance in range(1, max_distance + 1):
        solid = Series(f"distance {distance}")
        dashed = Series(f"distance {distance} (excl. single-atom ASes)")
        for result in results:
            solid.add(result.year, result.formation_shares.get(distance, 0.0) * 100)
            dashed.add(
                result.year,
                result.formation_shares_no_single.get(distance, 0.0) * 100,
            )
        series.append(solid)
        series.append(dashed)
    return series


def stability_trend_series(results: Sequence[YearResult]) -> List[Series]:
    """Figure 5: CAM/MPM after 8 hours and after a week, per year."""
    names = [
        ("8h", 0, "Complete atom match (after 8 hours)"),
        ("8h", 1, "Maximized prefix match (after 8 hours)"),
        ("1w", 0, "Complete atom match (after 1 week)"),
        ("1w", 1, "Maximized prefix match (after 1 week)"),
    ]
    series = []
    for key, index, label in names:
        line = Series(label)
        for result in results:
            pair = result.stability.get(key)
            line.add(result.year, pair[index] * 100 if pair else None)
        series.append(line)
    return series


def fullfeed_trend_series(results: Sequence[YearResult]) -> Tuple[Series, Series]:
    """Figures 12 and 13: the full-feed threshold (max unique prefixes)
    and the number of full-feed peers, per year."""
    threshold = Series("max unique prefixes per peer")
    peers = Series("full-feed peers")
    for result in results:
        threshold.add(result.year, float(result.feed["max_prefixes"]))
        peers.add(result.year, float(result.feed["full_feed"]))
    return threshold, peers
