"""The paper's analyses, assembled from the core pipeline.

* :mod:`longitudinal` — §4: the 2004-2024 study (general statistics,
  update correlation, formation distance, stability) at configurable
  cadence;
* :mod:`replication2002` — §3: reproducing Afek et al. on the
  2002-01-15 RRC00 snapshot with 13 full-feed peers;
* :mod:`ipv6` — §5: IPv6 atoms and the IPv4 comparison;
* :mod:`sensitivity` — A8.5: prefix-visibility threshold grid;
* :mod:`vantage` — §4.4.1: atom-split observer analysis over daily
  snapshots.
"""

from repro.analysis.ipv6 import IPv6Comparison, IPv6Study
from repro.analysis.reliability import (
    VPReliability,
    score_vantage_points,
    select_reliable,
)
from repro.analysis.siblings import (
    SiblingCandidate,
    dual_stack_origins,
    match_sibling_atoms,
)
from repro.analysis.probing import (
    ProbingPlan,
    build_probing_plan,
    plan_accuracy,
)
from repro.analysis.longitudinal import (
    LongitudinalStudy,
    SnapshotSuite,
    YearResult,
)
from repro.analysis.replication2002 import Replication2002, ReplicationResult
from repro.analysis.sensitivity import threshold_sensitivity
from repro.analysis.vantage import VantageStudy

__all__ = [
    "IPv6Comparison",
    "IPv6Study",
    "LongitudinalStudy",
    "ProbingPlan",
    "Replication2002",
    "ReplicationResult",
    "SiblingCandidate",
    "SnapshotSuite",
    "VPReliability",
    "VantageStudy",
    "YearResult",
    "build_probing_plan",
    "dual_stack_origins",
    "match_sibling_atoms",
    "plan_accuracy",
    "score_vantage_points",
    "select_reliable",
    "threshold_sensitivity",
]
