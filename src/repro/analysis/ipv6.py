"""IPv6 policy atoms (§5).

IPv6 reuses the whole pipeline with ``family=AF_INET6``; this module
adds the §5-specific assemblies: the IPv4/IPv6 comparison of Table 4
and Figure 8, and the IPv6 twins of the stability / update / formation
analyses (Figures 9-11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.longitudinal import LongitudinalStudy, SnapshotSuite, YearResult
from repro.core.sanitize import SanitizationConfig
from repro.core.statistics import (
    GeneralStats,
    atoms_per_as_distribution,
    cdf,
    prefixes_per_atom_distribution,
)
from repro.net.prefix import AF_INET, AF_INET6
from repro.simulation.scenario import SimulatedInternet


@dataclass
class IPv6Comparison:
    """The three columns of Table 4."""

    v4_recent: GeneralStats
    v6_recent: GeneralStats
    v6_early: GeneralStats
    recent_year: int
    early_year: int

    def rows(self) -> List[Tuple[str, str, str, str]]:
        """Rows of the Table-4 comparison, formatted for rendering."""
        def fmt(stats: GeneralStats) -> List[str]:
            return [
                f"{stats.n_prefixes:,}",
                f"{stats.n_ases:,}",
                f"{stats.n_ases_one_atom:,} ({stats.ases_one_atom_share:.1%})",
                f"{stats.n_atoms:,}",
                f"{stats.n_single_prefix_atoms:,} ({stats.single_prefix_atom_share:.1%})",
                f"{stats.mean_atom_size:.2f}",
                f"{stats.p99_atom_size}",
                f"{stats.max_atom_size:,}",
            ]

        labels = [
            "Number of prefixes",
            "Number of ASes",
            "# single-atom ASes",
            "Number of atoms",
            "# single-prefix atoms",
            "Mean atom size",
            "99th percentile of atom size",
            "Largest atom size",
        ]
        v4 = fmt(self.v4_recent)
        v6 = fmt(self.v6_recent)
        v6_early = fmt(self.v6_early)
        return [
            (label, v4[i], v6[i], v6_early[i]) for i, label in enumerate(labels)
        ]


class IPv6Study:
    """§5 analyses over one evolving simulator.

    Time in a simulator only moves forward, so call :meth:`comparison`
    (which needs the early-year snapshot) before running recent-year
    analyses — or use separate study instances.
    """

    def __init__(
        self,
        simulator: SimulatedInternet,
        sanitization: Optional[SanitizationConfig] = None,
    ):
        self.simulator = simulator
        self.sanitization = sanitization
        self._v4 = LongitudinalStudy(simulator, AF_INET, sanitization)
        self._v6 = LongitudinalStudy(simulator, AF_INET6, sanitization)

    def comparison(self, early_year: int = 2011, recent_year: int = 2024,
                   month: int = 10) -> IPv6Comparison:
        """Table 4: v4 vs v6 today, plus early v6."""
        early = self._v6.snapshot_suite(early_year, 1, with_stability=False)
        recent_v6 = self._v6.snapshot_suite(recent_year, month, with_stability=False)
        recent_v4 = self._v4.snapshot_suite(recent_year, month, with_stability=False)
        return IPv6Comparison(
            v4_recent=recent_v4.stats(),
            v6_recent=recent_v6.stats(),
            v6_early=early.stats(),
            recent_year=recent_year,
            early_year=early_year,
        )

    def distribution_cdfs(self, year: int = 2024, month: int = 10) -> Dict[str, List]:
        """Figure 8: atoms/AS and prefixes/atom CDFs for both families."""
        v4 = self._v4.snapshot_suite(year, month, with_stability=False).atoms
        v6 = self._v6.snapshot_suite(year, month, with_stability=False).atoms
        return {
            "v4_atoms_per_as": cdf(atoms_per_as_distribution(v4)),
            "v6_atoms_per_as": cdf(atoms_per_as_distribution(v6)),
            "v4_prefixes_per_atom": cdf(prefixes_per_atom_distribution(v4)),
            "v6_prefixes_per_atom": cdf(prefixes_per_atom_distribution(v6)),
        }

    def v6_trend(self, years: Sequence[int], with_stability: bool = True) -> List[YearResult]:
        """Figures 9 and 11: IPv6 stability and formation trends."""
        return self._v6.run_years(years, with_stability=with_stability)

    def v6_update_suite(self, year: int = 2024, month: int = 10) -> SnapshotSuite:
        """Figure 10: IPv6 update correlation for one snapshot."""
        return self._v6.snapshot_suite(
            year, month, with_stability=False, with_updates=True
        )
