"""A pybgpstream-shaped query API.

The paper's pipeline consumes BGP data through BGPStream; this class
reproduces the interface over either a :class:`RecordArchive` on disk
or a live :class:`~repro.simulation.scenario.SimulatedInternet`, so
analysis code is one ``data_source=`` away from running on real data.

Typical use::

    stream = BGPStream(
        source,
        record_type="rib",
        from_time="2024-10-15 08:00",
        until_time="2024-10-15 08:00",
        collectors=["rrc00"],
    )
    for record in stream.records():
        ...
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from repro.bgp.messages import RouteRecord
from repro.net.prefix import AF_INET
from repro.obs import traced_records
from repro.stream.archive import RecordArchive
from repro.util.dates import parse_utc

TimeLike = Union[int, str]


def _as_timestamp(when: Optional[TimeLike]) -> Optional[int]:
    if when is None:
        return None
    return parse_utc(when) if isinstance(when, str) else int(when)


class BGPStream:
    """Iterate route records from an archive or a simulator.

    Parameters mirror pybgpstream: ``record_type`` ("rib"/"update"),
    ``from_time``/``until_time`` (inclusive), plus optional project and
    collector filters.  ``family`` selects IPv4 or IPv6 when the source
    is a simulator (archives already store what was rendered).
    """

    def __init__(
        self,
        source,
        record_type: str = "rib",
        from_time: Optional[TimeLike] = None,
        until_time: Optional[TimeLike] = None,
        project: Optional[str] = None,
        collectors: Optional[Sequence[str]] = None,
        family: int = AF_INET,
    ):
        if record_type not in ("rib", "update"):
            raise ValueError(f"unknown record type {record_type!r}")
        self.source = source
        self.record_type = record_type
        self.from_time = _as_timestamp(from_time)
        self.until_time = _as_timestamp(until_time)
        self.project = project
        self.collectors = set(collectors) if collectors else None
        self.family = family

    # ------------------------------------------------------------------

    def _matches(self, record: RouteRecord) -> bool:
        if self.project and record.project != self.project:
            return False
        if self.collectors and record.collector not in self.collectors:
            return False
        return True

    def _from_archive(self, archive: RecordArchive) -> Iterator[RouteRecord]:
        for record in archive.records(
            project=self.project,
            record_type=self.record_type,
            from_time=self.from_time,
            until_time=self.until_time,
        ):
            if self._matches(record):
                yield record

    def _from_simulator(self, simulator) -> Iterator[RouteRecord]:
        if self.from_time is None:
            raise ValueError("from_time is required when reading a simulator")
        if self.record_type == "rib":
            for record in simulator.rib_records(self.from_time, family=self.family):
                if self._matches(record):
                    yield record
        else:
            until = self.until_time
            if until is None:
                raise ValueError("until_time is required for update streams")
            hours = max(0.0, (until - self.from_time) / 3600.0)
            for record in simulator.update_records(
                self.from_time, hours=hours, family=self.family
            ):
                if self._matches(record):
                    yield record

    def records(self) -> Iterator[RouteRecord]:
        """Stream matching records (a traced ``mrt-decode`` stage)."""
        if isinstance(self.source, RecordArchive):
            yield from traced_records(
                self._from_archive(self.source), source="archive"
            )
        elif hasattr(self.source, "rib_records"):
            yield from traced_records(
                self._from_simulator(self.source), source="simulated"
            )
        else:
            raise TypeError(
                f"unsupported source {type(self.source).__name__}; "
                "expected RecordArchive or SimulatedInternet"
            )

    def elements(self) -> Iterator[tuple]:
        """Stream (record, element) pairs, pybgpstream-style."""
        for record in self.records():
            for element in record.elements:
                yield record, element

    def __iter__(self) -> Iterator[RouteRecord]:
        return self.records()
