"""On-disk archive of route records.

Layout mirrors real MRT archives so paths are self-describing::

    <root>/<project>/<collector>/<type>/<YYYY>/<MM>/<timestamp>.jsonl.gz

Each file holds the records of one (collector, type, dump-instant).
"""

from __future__ import annotations

import gzip
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bgp.messages import RouteRecord
from repro.stream.serialize import record_from_json, record_to_json


class RecordArchive:
    """Write and query route-record dumps under one root directory."""

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def _dump_path(self, project: str, collector: str, record_type: str,
                   timestamp: int) -> Path:
        moment = datetime.fromtimestamp(timestamp, tz=timezone.utc)
        return (
            self.root
            / project
            / collector
            / record_type
            / f"{moment.year:04d}"
            / f"{moment.month:02d}"
            / f"{timestamp}.jsonl.gz"
        )

    def write_dump(self, records: Iterable[RouteRecord],
                   dump_timestamp: Optional[int] = None) -> List[Path]:
        """Persist records, grouped per (project, collector, type).

        ``dump_timestamp`` names the dump files; by default each group
        is named after its first record's timestamp.
        """
        groups: Dict[Tuple[str, str, str], List[RouteRecord]] = {}
        for record in records:
            key = (record.project, record.collector, record.record_type)
            groups.setdefault(key, []).append(record)
        written: List[Path] = []
        for (project, collector, record_type), group in groups.items():
            stamp = dump_timestamp if dump_timestamp is not None else group[0].timestamp
            path = self._dump_path(project, collector, record_type, stamp)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Write via a temp file + atomic rename: an interrupted run
            # must never leave a truncated dump that a later read (or an
            # engine cache build) would silently ingest.
            tmp = path.parent / f"{path.name}.tmp{os.getpid()}"
            try:
                with gzip.open(tmp, "wt", encoding="utf-8") as handle:
                    for record in group:
                        handle.write(record_to_json(record))
                        handle.write("\n")
                os.replace(tmp, path)
            finally:
                if tmp.exists():
                    try:
                        tmp.unlink()
                    except OSError:  # pragma: no cover - best effort
                        pass
            written.append(path)
        return written

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def read_file(self, path: os.PathLike) -> Iterator[RouteRecord]:
        """Stream the records of one dump file."""
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield record_from_json(line)

    def dumps(
        self,
        project: Optional[str] = None,
        collector: Optional[str] = None,
        record_type: Optional[str] = None,
    ) -> List[Tuple[str, str, str, int, Path]]:
        """Enumerate stored dumps as (project, collector, type, ts, path)."""
        found: List[Tuple[str, str, str, int, Path]] = []
        projects = [project] if project else sorted(
            p.name for p in self.root.iterdir() if p.is_dir()
        )
        for proj in projects:
            proj_dir = self.root / proj
            if not proj_dir.is_dir():
                continue
            collectors = [collector] if collector else sorted(
                c.name for c in proj_dir.iterdir() if c.is_dir()
            )
            for coll in collectors:
                coll_dir = proj_dir / coll
                if not coll_dir.is_dir():
                    continue
                types = [record_type] if record_type else sorted(
                    t.name for t in coll_dir.iterdir() if t.is_dir()
                )
                for rtype in types:
                    type_dir = coll_dir / rtype
                    if not type_dir.is_dir():
                        continue
                    self._sweep_stale_tmp(type_dir)
                    for path in sorted(type_dir.rglob("*.jsonl.gz")):
                        # Dump files are named <timestamp>.jsonl.gz;
                        # anything else (editor droppings, partial
                        # copies) is not a dump — skip, don't raise.
                        head = path.name.split(".")[0]
                        if not head.isdigit():
                            continue
                        found.append((proj, coll, rtype, int(head), path))
        found.sort(key=lambda item: (item[3], item[0], item[1]))
        return found

    @staticmethod
    def _sweep_stale_tmp(type_dir: Path) -> None:
        """Remove orphaned ``*.tmp<pid>`` files from killed writers.

        ``write_dump`` stages each dump as ``<name>.tmp<pid>`` before
        the atomic rename; a writer killed mid-write leaves that file
        behind forever.  A tmp file whose owning pid is no longer alive
        cannot be completed, so enumeration deletes it (a live pid's
        file is left alone — the writer may still rename it).
        """
        for tmp in type_dir.rglob("*.jsonl.gz.tmp*"):
            suffix = tmp.name.rpartition(".tmp")[2]
            if not suffix.isdigit():
                continue
            pid = int(suffix)
            try:
                alive = pid == os.getpid() or (os.kill(pid, 0) is None)
            except ProcessLookupError:
                alive = False
            except PermissionError:  # pragma: no cover - pid exists
                alive = True
            if not alive:
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass

    def records(
        self,
        project: Optional[str] = None,
        collector: Optional[str] = None,
        record_type: Optional[str] = None,
        from_time: Optional[int] = None,
        until_time: Optional[int] = None,
    ) -> Iterator[RouteRecord]:
        """Stream records matching the filters, in dump-time order.

        Dump-level pruning applies only to ``until_time``: a dump's
        name is its *first* record's timestamp, so a dump stamped
        before ``from_time`` can still contain in-range records (an
        update dump spanning the boundary).  ``from_time`` therefore
        filters per record only; a dump stamped *after* ``until_time``
        cannot contain earlier records and is skipped wholesale.
        """
        for _, _, _, stamp, path in self.dumps(project, collector, record_type):
            if until_time is not None and stamp > until_time:
                continue
            for record in self.read_file(path):
                if from_time is not None and record.timestamp < from_time:
                    continue
                if until_time is not None and record.timestamp > until_time:
                    continue
                yield record
