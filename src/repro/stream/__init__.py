"""BGPStream-like data access layer and the live maintenance pipeline.

``archive`` persists route records as compressed JSON-lines, organised
the way real MRT archives are (project/collector/type/date); ``bgpstream``
exposes the familiar iterator API over either an archive on disk or a
live :class:`~repro.simulation.scenario.SimulatedInternet`.  ``live``
consumes such a stream continuously, keeping the policy-atom partition
current with sharded incremental workers (``repro live``), and
``windows`` holds its per-window metric containers.
"""

from repro.stream.archive import RecordArchive
from repro.stream.bgpstream import BGPStream
from repro.stream.filters import RecordFilter, apply
from repro.stream.live import (
    LiveConfig,
    LiveError,
    LiveParityError,
    LivePipeline,
    LiveRun,
    PrefixSharder,
    ThreadSafeInternPool,
)
from repro.stream.mrt import MRTReader, MRTWriter, read_mrt
from repro.stream.windows import (
    WindowResult,
    render_window_table,
    window_churn,
    window_correlation,
    window_series,
)

__all__ = [
    "BGPStream",
    "LiveConfig",
    "LiveError",
    "LiveParityError",
    "LivePipeline",
    "LiveRun",
    "MRTReader",
    "MRTWriter",
    "PrefixSharder",
    "RecordArchive",
    "RecordFilter",
    "ThreadSafeInternPool",
    "WindowResult",
    "apply",
    "read_mrt",
    "render_window_table",
    "window_churn",
    "window_correlation",
    "window_series",
]
