"""BGPStream-like data access layer.

``archive`` persists route records as compressed JSON-lines, organised
the way real MRT archives are (project/collector/type/date); ``bgpstream``
exposes the familiar iterator API over either an archive on disk or a
live :class:`~repro.simulation.scenario.SimulatedInternet`.
"""

from repro.stream.archive import RecordArchive
from repro.stream.bgpstream import BGPStream
from repro.stream.filters import RecordFilter, apply
from repro.stream.mrt import MRTReader, MRTWriter, read_mrt

__all__ = [
    "BGPStream",
    "MRTReader",
    "MRTWriter",
    "RecordArchive",
    "RecordFilter",
    "apply",
    "read_mrt",
]
