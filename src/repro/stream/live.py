"""Streaming atom maintenance: keep an :class:`AtomIndex` current forever.

The offline pipeline recomputes atoms per snapshot; this module keeps
the partition *continuously* current against a BGPStream-shaped update
feed, the way an operational deployment of the paper's measurement
would run.  One coordinator thread consumes the record stream and fans
route elements out to **shard workers** over bounded queues:

* the prefix space is cut into contiguous ranges
  (:class:`PrefixSharder`, the same first/last-prefix routing the
  columnar store's shards use), one range per worker;
* each worker owns a shard-local :class:`~repro.bgp.rib.RIBSnapshot`
  plus its own :class:`~repro.core.incremental.AtomIndex` over the
  *global* vantage-point list, so every worker's interned keys are
  directly comparable — all workers share one thread-safe intern pool;
* bounded queues give natural backpressure: when a worker falls
  behind, the coordinator blocks on ``put`` instead of buffering the
  stream unboundedly (blocks are counted per window).

Time is cut into fixed, absolutely aligned windows (window ``k`` is
``[k*w, (k+1)*w)``).  At each boundary the coordinator barriers the
workers, collects each shard's **refresh delta** — only the prefixes
whose interned key moved — and replays the deltas into a merged
cross-shard view, so per-window merge work is proportional to churn,
not to table size.  The merged view emits an
:class:`~repro.core.atoms.AtomSet` that is value-identical — atom ids
and ordering included — to a cold
:func:`~repro.core.atoms.compute_atoms` over the equivalent replayed
RIB; ``parity="window"`` proves exactly that at every boundary against
an independently replayed snapshot and a fresh intern pool.

Crash safety comes from
:class:`~repro.engine.checkpoint.StreamCheckpoint`: every
``checkpoint_every`` boundaries the coordinator dumps the merged RIB
and the replay position atomically.  A killed pipeline resumes from
the last saved boundary by *position* (records consumed), not by
timestamp — out-of-order records across dump boundaries make
timestamp-based skipping diverge from an uninterrupted run, position
never does.

Worker threads never touch the process-wide tracer: each records onto
a private tracer (:func:`repro.obs.set_thread_tracer`) whose counters
the coordinator merges back in shard order at each barrier, so traced
runs stay deterministic and race-free.  See ``docs/streaming.md``.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import AdjRIBIn, PeerId, RIBSnapshot
from repro.core.atoms import AtomSet, PolicyAtom, compute_atoms
from repro.core.incremental import AtomIndex
from repro.core.intern import PathInternPool
from repro.engine.checkpoint import StreamCheckpoint
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs import NULL_TRACER, Tracer, TracerLike, get_tracer, set_thread_tracer
from repro.store.writer import MANIFEST_NAME, PARTS_DIR, merge_parts, write_part
from repro.stream.windows import (
    WindowResult,
    window_churn,
    window_correlation,
)

__all__ = [
    "LiveConfig",
    "LiveError",
    "LiveParityError",
    "LivePipeline",
    "LiveRun",
    "PrefixSharder",
    "ThreadSafeInternPool",
]


class LiveError(RuntimeError):
    """The live pipeline cannot continue."""


class LiveParityError(LiveError):
    """The streamed atom partition diverged from the cold recompute."""


class ThreadSafeInternPool(PathInternPool):
    """A :class:`PathInternPool` whose mutating lookups are locked.

    Shard workers intern concurrently into one shared pool so their
    vector keys stay pointer-comparable across shards; a single RLock
    around the four lookup methods keeps the internal dicts consistent
    without changing any result.
    """

    __slots__ = ("_lock",)

    def __init__(
        self,
        expand_singleton_sets: bool = True,
        strip_prepending: bool = False,
    ):
        super().__init__(expand_singleton_sets, strip_prepending)
        self._lock = threading.RLock()

    def path(self, raw: Optional[ASPath]) -> Optional[ASPath]:
        """Locked :meth:`PathInternPool.path`."""
        with self._lock:
            return super().path(raw)

    def vector(self, parts: Sequence[Optional[ASPath]]) -> Tuple:
        """Locked :meth:`PathInternPool.vector`."""
        with self._lock:
            return super().vector(parts)

    def path_id(self, raw: Optional[ASPath]) -> int:
        """Locked :meth:`PathInternPool.path_id`."""
        with self._lock:
            return super().path_id(raw)

    def id_for_path(self, path: Optional[ASPath]) -> int:
        """Locked :meth:`PathInternPool.id_for_path`."""
        with self._lock:
            return super().id_for_path(path)


class PrefixSharder:
    """Routes prefixes to contiguous shard ranges of the sorted space.

    The primed universe is sorted by :meth:`Prefix.key` and cut into
    ``shards`` near-equal ranges; prefixes first seen later (new
    announcements) fall into the nearest existing range, so routing is
    total and deterministic for any prefix.
    """

    __slots__ = ("shards", "_cuts")

    def __init__(self, prefixes: Iterable[Prefix], shards: int):
        self.shards = max(1, int(shards))
        ordered = sorted(set(prefixes), key=Prefix.key)
        count = min(self.shards, len(ordered))
        self._cuts: List[Tuple] = [
            Prefix.key(ordered[(index * len(ordered)) // count])
            for index in range(1, count)
        ]

    def route(self, prefix: Prefix) -> int:
        """The shard id owning ``prefix`` (0 .. shards-1)."""
        return bisect_right(self._cuts, Prefix.key(prefix))


@dataclass
class LiveConfig:
    """Tuning knobs of one :class:`LivePipeline` run."""

    #: window width in seconds; windows are absolutely aligned
    window_seconds: int = 900
    #: shard worker threads (prefix-range partitions)
    shards: int = 1
    #: bounded per-worker inbox depth (backpressure threshold)
    queue_depth: int = 256
    #: checkpoint directory (None disables checkpointing)
    checkpoint_dir: Optional[Path] = None
    #: save a checkpoint every N closed windows (and at end of stream)
    checkpoint_every: int = 1
    #: store root for per-window snapshot parts (None disables the sink)
    store_dir: Optional[Path] = None
    #: merge parts into the queryable store every N windows (0: at end)
    store_merge_every: int = 0
    #: "window" proves streamed == cold recompute at every boundary
    parity: str = "window"
    #: compute the per-window update correlation (Pr_full)
    correlation: bool = True
    correlation_max_size: Optional[int] = None
    #: stop after closing this many windows (None: run the stream out)
    max_windows: Optional[int] = None
    #: restrict to one address family (None: both)
    family: Optional[int] = None
    expand_singleton_sets: bool = True
    strip_prepending: bool = False

    def __post_init__(self) -> None:
        if self.window_seconds < 1:
            raise ValueError("window_seconds must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.parity not in ("off", "window"):
            raise ValueError(f"unknown parity mode {self.parity!r}")
        if self.checkpoint_dir is not None:
            self.checkpoint_dir = Path(self.checkpoint_dir)
        if self.store_dir is not None:
            self.store_dir = Path(self.store_dir)

    def payload(self) -> Dict[str, Any]:
        """The result-affecting knobs a resumed run must repeat.

        Shard count and queue depth are deliberately absent: results
        are shard-invariant, so a checkpoint written under 4 shards
        resumes fine under 1 (and vice versa).
        """
        return {
            "window_seconds": self.window_seconds,
            "family": self.family,
            "expand_singleton_sets": self.expand_singleton_sets,
            "strip_prepending": self.strip_prepending,
        }


@dataclass
class LiveRun:
    """What one :meth:`LivePipeline.run` produced."""

    windows: List[WindowResult]
    atoms: Optional[AtomSet]
    vantage_points: List[PeerId]
    #: stream records folded into windows (this run only)
    records: int = 0
    #: records that primed the initial RIB (source dump or checkpoint)
    prime_records: int = 0
    #: already-consumed records skipped while resuming
    skipped: int = 0
    resumed: bool = False
    #: window index of the checkpoint the run resumed from
    resumed_from: Optional[int] = None
    parity_checks: int = 0
    checkpoints: int = 0
    store_keys: List[str] = field(default_factory=list)
    #: True when max_windows stopped the run before the stream ended
    stopped_early: bool = False

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (the ``repro live --json`` payload)."""
        return {
            "windows": [w.as_dict(deterministic_only=True) for w in self.windows],
            "atoms": None if self.atoms is None else len(self.atoms),
            "prefixes": None if self.atoms is None else self.atoms.prefix_count(),
            "vantage_points": [list(vp) for vp in self.vantage_points],
            "records": self.records,
            "prime_records": self.prime_records,
            "skipped": self.skipped,
            "resumed": self.resumed,
            "resumed_from": self.resumed_from,
            "parity_checks": self.parity_checks,
            "checkpoints": self.checkpoints,
            "store_keys": list(self.store_keys),
            "stopped_early": self.stopped_early,
        }


# ----------------------------------------------------------------------
# Cross-shard merged view
# ----------------------------------------------------------------------


class _MergedAtomView:
    """Cross-shard key/group state, maintained from refresh deltas.

    Workers own disjoint prefix ranges, so replaying their deltas in
    any order yields the same state; the coordinator still applies
    them in shard order for reproducible traces.  Groups are emitted
    exactly like :meth:`AtomIndex.atoms` — sorted by first prefix — so
    the streamed :class:`AtomSet` carries the same atom ids a cold
    ``compute_atoms`` would assign.
    """

    __slots__ = ("_keys", "_groups")

    def __init__(self) -> None:
        self._keys: Dict[Prefix, Tuple] = {}
        self._groups: Dict[Tuple, Set[Prefix]] = {}

    def apply_delta(self, delta: Dict[Prefix, Optional[Tuple]]) -> None:
        keys = self._keys
        groups = self._groups
        for prefix, key in delta.items():
            old = keys.get(prefix)
            if old is key:
                continue
            if old is not None:
                members = groups[old]
                members.discard(prefix)
                if not members:
                    del groups[old]
            if key is None:
                keys.pop(prefix, None)
            else:
                keys[prefix] = key
                groups.setdefault(key, set()).add(prefix)

    @property
    def prefix_count(self) -> int:
        return len(self._keys)

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def atom_set(self, vantage_points: List[PeerId], timestamp: int) -> AtomSet:
        ordered = sorted(
            self._groups.items(),
            key=lambda item: Prefix.key(min(item[1], key=Prefix.key)),
        )
        atoms = [
            PolicyAtom(atom_id, frozenset(members), vector)
            for atom_id, (vector, members) in enumerate(ordered)
        ]
        return AtomSet(atoms, list(vantage_points), timestamp)


# ----------------------------------------------------------------------
# Shard workers
# ----------------------------------------------------------------------


class _ShardWorker(threading.Thread):
    """One prefix-range worker: shard-local RIB + AtomIndex.

    Consumes ``("apply", peer, elements)`` messages from its bounded
    inbox and answers coordinator barriers: ``("refresh",)`` replies
    with the shard's refresh delta, ``("dump",)`` with copies of its
    per-peer route tables, ``("stop",)`` acknowledges and exits.  All
    instrumentation lands on a private tracer whose counter increments
    are shipped home with each reply.
    """

    def __init__(
        self,
        shard_id: int,
        vantage_points: Sequence[PeerId],
        pool: PathInternPool,
        config: LiveConfig,
        outbox: "queue.Queue[Tuple]",
        traced: bool,
    ):
        super().__init__(name=f"live-shard-{shard_id}", daemon=True)
        self.shard_id = shard_id
        self.inbox: "queue.Queue[Tuple]" = queue.Queue(config.queue_depth)
        self._outbox = outbox
        self._tracer: TracerLike = Tracer() if traced else NULL_TRACER
        self._shipped: Dict[str, int] = {}
        self.snapshot = RIBSnapshot()
        self.index = AtomIndex(
            self.snapshot,
            vantage_points=list(vantage_points),
            expand_singleton_sets=config.expand_singleton_sets,
            strip_prepending=config.strip_prepending,
            pool=pool,
        )

    def _counter_delta(self) -> Dict[str, int]:
        if not self._tracer.enabled:
            return {}
        current = self._tracer.counters
        delta = {
            name: value - self._shipped.get(name, 0)
            for name, value in current.items()
            if value != self._shipped.get(name, 0)
        }
        self._shipped = dict(current)
        return delta

    def _apply(self, peer_id: PeerId, elements: Tuple[RouteElement, ...]) -> None:
        snapshot = self.snapshot
        for element in elements:
            if element.element_type == ElementType.WITHDRAWAL:
                snapshot.withdraw(peer_id, element.prefix)
            else:
                snapshot.announce(peer_id, element.prefix, element.attributes)

    def run(self) -> None:  # pragma: no branch - single loop
        set_thread_tracer(self._tracer)
        try:
            while True:
                message = self.inbox.get()
                kind = message[0]
                if kind == "apply":
                    self._apply(message[1], message[2])
                elif kind == "refresh":
                    dirty = self.index.dirty_count
                    delta = self.index.refresh_delta()
                    self._outbox.put(
                        (
                            "refresh",
                            self.shard_id,
                            dirty,
                            delta,
                            self._counter_delta(),
                        )
                    )
                elif kind == "dump":
                    tables = {
                        peer_id: dict(table._routes)
                        for peer_id, table in self.snapshot._tables.items()
                    }
                    self._outbox.put(("dump", self.shard_id, tables))
                elif kind == "stop":
                    self._outbox.put(("stop", self.shard_id, self._counter_delta()))
                    return
                else:  # pragma: no cover - coordinator never sends others
                    raise LiveError(f"unknown worker message {kind!r}")
        except BaseException:
            self._outbox.put(("error", self.shard_id, traceback.format_exc()))
        finally:
            set_thread_tracer(None)


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------

#: Seconds the coordinator waits on a worker reply before declaring the
#: pipeline wedged (generous: barriers are CPU-bound, not I/O-bound).
_BARRIER_TIMEOUT = 300.0


class LivePipeline:
    """Coordinator of the streaming atom-maintenance pipeline.

    ``records`` is any iterable of :class:`RouteRecord` in arrival
    order — a :class:`~repro.stream.bgpstream.BGPStream`, an archive
    reader, a list in tests.  Leading ``rib`` records prime the initial
    table (the BGPStream convention: a dump precedes the update feed);
    pass ``vantage_points`` explicitly to run without a leading dump.
    """

    def __init__(
        self,
        records: Iterable[RouteRecord],
        config: Optional[LiveConfig] = None,
        vantage_points: Optional[Sequence[PeerId]] = None,
    ):
        self.records = records
        self.config = config if config is not None else LiveConfig()
        self._explicit_vps = (
            [tuple(vp) for vp in vantage_points] if vantage_points else None
        )
        self._workers: List[_ShardWorker] = []
        self._outbox: "queue.Queue[Tuple]" = queue.Queue()
        self._vps: List[PeerId] = []
        self._projects: Dict[PeerId, str] = {}
        self._sharder: Optional[PrefixSharder] = None
        self._view = _MergedAtomView()
        self._consumed = 0
        self._backpressure = 0
        self._pool_instance: Optional[ThreadSafeInternPool] = None

    # -- worker plumbing ------------------------------------------------

    def _send(self, shard_id: int, message: Tuple) -> None:
        inbox = self._workers[shard_id].inbox
        try:
            inbox.put_nowait(message)
        except queue.Full:
            self._backpressure += 1
            while True:
                if not self._workers[shard_id].is_alive():
                    self._raise_pending_error()
                try:
                    inbox.put(message, timeout=1.0)
                    return
                except queue.Full:
                    continue

    def _raise_pending_error(self) -> None:
        """Surface a worker's death as a LiveError."""
        while True:
            try:
                reply = self._outbox.get_nowait()
            except queue.Empty:
                raise LiveError("shard worker died without reporting an error")
            if reply[0] == "error":
                raise LiveError(f"shard {reply[1]} failed:\n{reply[2]}")

    def _gather(self, kind: str) -> List[Tuple]:
        """One reply of ``kind`` per worker, ordered by shard id."""
        replies: Dict[int, Tuple] = {}
        while len(replies) < len(self._workers):
            try:
                reply = self._outbox.get(timeout=_BARRIER_TIMEOUT)
            except queue.Empty:
                raise LiveError(
                    f"timed out waiting for shard {kind!r} replies "
                    f"({len(replies)}/{len(self._workers)} received)"
                ) from None
            if reply[0] == "error":
                raise LiveError(f"shard {reply[1]} failed:\n{reply[2]}")
            if reply[0] != kind:  # pragma: no cover - protocol guard
                raise LiveError(
                    f"unexpected {reply[0]!r} reply during {kind!r} barrier"
                )
            replies[reply[1]] = reply
        return [replies[shard] for shard in sorted(replies)]

    def _merge_counters(
        self, tracer: TracerLike, deltas: Iterable[Dict[str, int]]
    ) -> None:
        if not tracer.enabled:
            return
        for delta in deltas:
            for name in sorted(delta):
                tracer.count(name, delta[name])

    def _stop_workers(self, tracer: TracerLike) -> None:
        alive = [worker for worker in self._workers if worker.is_alive()]
        for worker in alive:
            try:
                worker.inbox.put(("stop",), timeout=5.0)
            except queue.Full:  # pragma: no cover - wedged worker
                continue
        deadline = time.monotonic() + 30.0
        acknowledged: List[Dict[str, int]] = []
        pending = len(alive)
        while pending and time.monotonic() < deadline:
            try:
                reply = self._outbox.get(timeout=1.0)
            except queue.Empty:
                continue
            if reply[0] == "stop":
                acknowledged.append(reply[2])
                pending -= 1
            # late window/dump/error replies on the error path: discard
        self._merge_counters(tracer, acknowledged)
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []

    # -- routing --------------------------------------------------------

    def _route_elements(
        self, elements: Sequence[RouteElement]
    ) -> Dict[int, List[RouteElement]]:
        assert self._sharder is not None
        routed: Dict[int, List[RouteElement]] = {}
        family = self.config.family
        route = self._sharder.route
        for element in elements:
            if family is not None and element.prefix.family != family:
                continue
            routed.setdefault(route(element.prefix), []).append(element)
        return routed

    def _dispatch(self, record: RouteRecord) -> int:
        """Fan one record's elements out to the owning shards."""
        routed = self._route_elements(record.elements)
        peer_id = record.peer_id
        for shard_id in sorted(routed):
            self._send(shard_id, ("apply", peer_id, tuple(routed[shard_id])))
        return sum(len(batch) for batch in routed.values())

    # -- barriers -------------------------------------------------------

    def _refresh_barrier(self, tracer: TracerLike) -> Tuple[int, int]:
        """Refresh all shards; returns (dirty total, key changes)."""
        for shard_id in range(len(self._workers)):
            self._send(shard_id, ("refresh",))
        replies = self._gather("refresh")
        self._merge_counters(tracer, (reply[4] for reply in replies))
        dirty = 0
        changed = 0
        for reply in replies:
            dirty += reply[2]
            changed += len(reply[3])
            self._view.apply_delta(reply[3])
        return dirty, changed

    def _dump_barrier(self) -> Dict[PeerId, Dict[Prefix, PathAttributes]]:
        """Merged per-peer route tables across all shards.

        Every vantage point appears (empty when it carries no routes),
        so checkpoints preserve VP identity even for dried-up feeds.
        """
        for shard_id in range(len(self._workers)):
            self._send(shard_id, ("dump",))
        merged: Dict[PeerId, Dict[Prefix, PathAttributes]] = {
            vp: {} for vp in self._vps
        }
        for reply in self._gather("dump"):
            for peer_id, routes in reply[2].items():
                merged.setdefault(peer_id, {}).update(routes)
        return merged

    # -- parity ---------------------------------------------------------

    def _replayed_snapshot(
        self,
        tables: Dict[PeerId, Dict[Prefix, PathAttributes]],
        timestamp: int,
    ) -> RIBSnapshot:
        snapshot = RIBSnapshot(timestamp)
        for peer_id, routes in tables.items():
            table = AdjRIBIn(peer_id)
            table._routes = dict(routes)
            snapshot._tables[peer_id] = table
        return snapshot

    def _check_parity(
        self,
        streamed: AtomSet,
        tables: Dict[PeerId, Dict[Prefix, PathAttributes]],
        window_end: int,
        tracer: TracerLike,
    ) -> None:
        with tracer.span("live-parity", window_end=window_end) as span:
            replayed = self._replayed_snapshot(tables, window_end)
            cold = compute_atoms(
                replayed,
                vantage_points=self._vps,
                expand_singleton_sets=self.config.expand_singleton_sets,
                strip_prepending=self.config.strip_prepending,
            )
            problems = _diff_atom_sets(streamed, cold)
            if tracer.enabled:
                span.set(atoms=len(cold), mismatches=len(problems))
                tracer.count("live.parity_checks")
            if problems:
                shown = "\n  ".join(problems[:5])
                raise LiveParityError(
                    f"streamed atoms diverged from cold recompute at "
                    f"window end {window_end} "
                    f"({len(problems)} mismatch(es)):\n  {shown}"
                )

    # -- checkpoint / store ---------------------------------------------

    def _boundary_records(
        self,
        tables: Dict[PeerId, Dict[Prefix, PathAttributes]],
        window_end: int,
    ) -> List[RouteRecord]:
        records = []
        for peer_id in sorted(tables):
            collector, peer_asn, peer_address = peer_id
            elements = [
                RouteElement(ElementType.RIB, prefix, attributes)
                for prefix, attributes in sorted(
                    tables[peer_id].items(),
                    key=lambda item: Prefix.key(item[0]),
                )
            ]
            records.append(
                RouteRecord(
                    "rib",
                    self._projects.get(peer_id, "unknown"),
                    collector,
                    peer_asn,
                    peer_address,
                    window_end,
                    elements,
                )
            )
        return records

    def _save_checkpoint(
        self,
        checkpoint: StreamCheckpoint,
        tables: Dict[PeerId, Dict[Prefix, PathAttributes]],
        window_index: int,
        window_end: int,
        tracer: TracerLike,
    ) -> None:
        with tracer.span("live-checkpoint", window_index=window_index):
            checkpoint.save(
                window_index,
                window_end,
                self._boundary_records(tables, window_end),
                self.config.payload(),
                meta={
                    "records_consumed": self._consumed,
                    "vantage_points": [list(vp) for vp in self._vps],
                },
            )
            if tracer.enabled:
                tracer.count("live.checkpoints")

    def _write_store_window(
        self,
        atoms: AtomSet,
        window_index: int,
        window_end: int,
        tracer: TracerLike,
    ) -> str:
        assert self.config.store_dir is not None
        key = f"w{window_index:08d}"
        write_part(
            self.config.store_dir,
            key,
            [
                {
                    "key": key,
                    "atoms": atoms,
                    "label": str(window_end),
                    "role": "window",
                    "family": self.config.family or 0,
                },
            ],
        )
        if tracer.enabled:
            tracer.count("live.store_windows")
        return key

    def _merge_store(self, keys: Sequence[str], tracer: TracerLike) -> None:
        assert self.config.store_dir is not None
        merge_parts(self.config.store_dir, sorted(keys))
        if tracer.enabled:
            tracer.count("live.store_merges")

    def _existing_store_keys(self) -> List[str]:
        if self.config.store_dir is None:
            return []
        parts = Path(self.config.store_dir) / PARTS_DIR
        if not parts.is_dir():
            return []
        return sorted(
            entry.name
            for entry in parts.iterdir()
            if entry.name.startswith("w") and (entry / MANIFEST_NAME).is_file()
        )

    # -- the run --------------------------------------------------------

    def run(
        self,
        on_window: Optional[Callable[[WindowResult], None]] = None,
    ) -> LiveRun:
        """Consume the stream; returns the closed windows and final atoms.

        ``on_window`` is invoked after each window closes (checkpoint
        and store sink included) — raise from it to stop the pipeline
        at a boundary, which is exactly what the soak harness does to
        simulate a kill.
        """
        config = self.config
        tracer = get_tracer()
        checkpoint = (
            StreamCheckpoint(config.checkpoint_dir)
            if config.checkpoint_dir is not None
            else None
        )

        # The span is managed by hand (not ``with``) so the resume and
        # prime phases — which already consume the traced source — sit
        # inside it; lazily opened mrt-decode spans then nest properly.
        run_span = tracer.span("live-run", shards=config.shards).__enter__()
        try:
            # Resume or prime --------------------------------------------
            iterator = iter(self.records)
            prime: List[RouteRecord] = []
            pending: Optional[RouteRecord] = None
            skip = 0
            resumed = False
            resumed_from: Optional[int] = None
            prime_counts_consumed = False
            loaded = checkpoint.load(config=config.payload()) if checkpoint else None
            if loaded is not None:
                state, prime = loaded
                meta = state.get("meta", {})
                self._vps = [tuple(vp) for vp in meta.get("vantage_points", [])]
                skip = int(meta.get("records_consumed", 0))
                resumed = True
                resumed_from = int(state["window_index"])
                if self._explicit_vps and self._explicit_vps != self._vps:
                    raise LiveError(
                        "explicit vantage points disagree with the "
                        "checkpoint's"
                    )
            else:
                prime_counts_consumed = True
                for record in iterator:
                    if record.record_type != "rib":
                        pending = record
                        break
                    prime.append(record)
                if self._explicit_vps is not None:
                    self._vps = list(self._explicit_vps)
                else:
                    self._vps = sorted({record.peer_id for record in prime})
                if not self._vps:
                    raise LiveError(
                        "stream carries no leading RIB dump and no explicit "
                        "vantage points were given"
                    )
            vp_set = set(self._vps)
            for record in prime:
                if record.peer_id in vp_set:
                    self._projects[record.peer_id] = record.project

            universe: Set[Prefix] = set()
            for record in prime:
                for element in record.elements:
                    universe.add(element.prefix)
            self._sharder = PrefixSharder(universe, config.shards)

            run = LiveRun(
                windows=[],
                atoms=None,
                vantage_points=list(self._vps),
                resumed=resumed,
                resumed_from=resumed_from,
            )
            store_keys = self._existing_store_keys()
            run.store_keys = list(store_keys)
            unmerged = 0

            self._workers = [
                _ShardWorker(
                    shard_id,
                    self._vps,
                    self._pool,
                    config,
                    self._outbox,
                    tracer.enabled,
                )
                for shard_id in range(config.shards)
            ]
            for worker in self._workers:
                worker.start()
            try:
                # Prime the shards and take the initial partition.
                for record in prime:
                    if record.peer_id not in vp_set:
                        continue
                    self._dispatch(record)
                    run.prime_records += 1
                    if prime_counts_consumed:
                        self._consumed += 1
                if tracer.enabled and run.prime_records:
                    tracer.count("live.prime_records", run.prime_records)
                self._refresh_barrier(tracer)
                previous_atoms = self._view.atom_set(self._vps, 0)

                # Window state.
                window_start: Optional[int] = None
                window_end: Optional[int] = None
                stats = _WindowStats()
                stopped = False

                def close_window(boundary_end: int) -> None:
                    nonlocal previous_atoms, unmerged
                    assert window_start is not None
                    index = window_start // config.window_seconds
                    with tracer.span(
                        "live-window", index=index, end=boundary_end
                    ) as span:
                        began = time.perf_counter()
                        pressure_before = self._backpressure
                        dirty, changed = self._refresh_barrier(tracer)
                        atoms = self._view.atom_set(self._vps, boundary_end)
                        created, removed = window_churn(previous_atoms, atoms)
                        pr_full = (
                            window_correlation(
                                previous_atoms,
                                stats.update_records,
                                max_size=config.correlation_max_size,
                            )
                            if config.correlation
                            else None
                        )
                        result = WindowResult(
                            index=index,
                            start=window_start,
                            end=boundary_end,
                            records=stats.records,
                            elements=stats.elements,
                            announcements=stats.announcements,
                            withdrawals=stats.withdrawals,
                            late_records=stats.late,
                            dirty=dirty,
                            key_changes=changed,
                            atoms=len(atoms),
                            prefixes=self._view.prefix_count,
                            created=created,
                            removed=removed,
                            pr_full=pr_full,
                        )
                        tables = None
                        if config.parity == "window" or (
                            checkpoint is not None
                            and (len(run.windows) + 1) % config.checkpoint_every == 0
                        ):
                            tables = self._dump_barrier()
                        if config.parity == "window":
                            assert tables is not None
                            self._check_parity(atoms, tables, boundary_end, tracer)
                            run.parity_checks += 1
                        run.windows.append(result)
                        if config.store_dir is not None:
                            key = self._write_store_window(
                                atoms, index, boundary_end, tracer
                            )
                            store_keys.append(key)
                            run.store_keys.append(key)
                            unmerged += 1
                            if (
                                config.store_merge_every
                                and unmerged >= config.store_merge_every
                            ):
                                self._merge_store(store_keys, tracer)
                                unmerged = 0
                        if (
                            checkpoint is not None
                            and tables is not None
                            and len(run.windows) % config.checkpoint_every == 0
                        ):
                            self._save_checkpoint(
                                checkpoint, tables, index, boundary_end, tracer
                            )
                            run.checkpoints += 1
                        result.wall_seconds = time.perf_counter() - began
                        result.backpressure_waits = self._backpressure - pressure_before
                        if tracer.enabled:
                            span.set(
                                records=stats.records,
                                dirty=dirty,
                                key_changes=changed,
                                atoms=len(atoms),
                                churn_created=created,
                                churn_removed=removed,
                                wall_seconds=result.wall_seconds,
                                backpressure_waits=result.backpressure_waits,
                            )
                            tracer.count("live.windows")
                            tracer.count("live.records", stats.records)
                            tracer.count("live.elements", stats.elements)
                            tracer.count("live.announcements", stats.announcements)
                            tracer.count("live.withdrawals", stats.withdrawals)
                            if stats.late:
                                tracer.count("live.late_records", stats.late)
                            tracer.count("live.dirty", dirty)
                            tracer.count("live.key_changes", changed)
                            tracer.count("live.churn_created", created)
                            tracer.count("live.churn_removed", removed)
                        previous_atoms = atoms
                        run.atoms = atoms
                        stats.reset()
                        if on_window is not None:
                            on_window(result)

                # The stream proper.
                source: Iterator[RouteRecord] = iterator
                if pending is not None:
                    source = _chain_one(pending, iterator)
                for record in source:
                    if skip > 0:
                        skip -= 1
                        self._consumed += 1
                        run.skipped += 1
                        continue
                    if record.peer_id not in vp_set:
                        self._consumed += 1
                        if tracer.enabled:
                            tracer.count("live.foreign_records")
                        continue
                    timestamp = record.timestamp
                    if window_end is not None and timestamp >= window_end:
                        close_window(window_end)
                        window_start = None
                        window_end = None
                        if (
                            config.max_windows is not None
                            and len(run.windows) >= config.max_windows
                        ):
                            stopped = True
                            break
                    if window_end is None:
                        index = timestamp // config.window_seconds
                        window_start = index * config.window_seconds
                        window_end = window_start + config.window_seconds
                    self._projects.setdefault(record.peer_id, record.project)
                    applied = self._dispatch(record)
                    stats.fold(record, applied, window_start or 0)
                    run.records += 1
                    self._consumed += 1

                if not stopped and window_end is not None:
                    close_window(window_end)
                run.stopped_early = stopped

                if run.skipped and tracer.enabled:
                    tracer.count("live.replay_skipped", run.skipped)

                # Finalisation: a clean stop checkpoints the last
                # boundary (so resuming a finished stream is a no-op)
                # and merges any store parts not yet folded in.
                if checkpoint is not None and run.windows:
                    last = run.windows[-1]
                    if len(run.windows) % config.checkpoint_every != 0:
                        tables = self._dump_barrier()
                        self._save_checkpoint(
                            checkpoint, tables, last.index, last.end, tracer
                        )
                        run.checkpoints += 1
                if config.store_dir is not None and store_keys and unmerged:
                    self._merge_store(store_keys, tracer)
                elif (
                    config.store_dir is not None
                    and store_keys
                    and not config.store_merge_every
                ):
                    self._merge_store(store_keys, tracer)
                if tracer.enabled:
                    run_span.set(
                        windows=len(run.windows),
                        records=run.records,
                        backpressure_waits=self._backpressure,
                    )
            finally:
                self._stop_workers(tracer)
        finally:
            run_span.__exit__(None, None, None)
        if run.atoms is None and run.prime_records:
            run.atoms = previous_atoms
        return run

    @property
    def _pool(self) -> ThreadSafeInternPool:
        """The shared worker intern pool (created on first use)."""
        if self._pool_instance is None:
            self._pool_instance = ThreadSafeInternPool(
                self.config.expand_singleton_sets,
                self.config.strip_prepending,
            )
        return self._pool_instance


class _WindowStats:
    """Accumulators for the window currently being filled."""

    __slots__ = (
        "records",
        "elements",
        "announcements",
        "withdrawals",
        "late",
        "update_records",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.records = 0
        self.elements = 0
        self.announcements = 0
        self.withdrawals = 0
        self.late = 0
        self.update_records: List[RouteRecord] = []

    def fold(self, record: RouteRecord, applied: int, window_start: int) -> None:
        self.records += 1
        self.elements += applied
        for element in record.elements:
            if element.element_type == ElementType.WITHDRAWAL:
                self.withdrawals += 1
            else:
                self.announcements += 1
        if record.timestamp < window_start:
            self.late += 1
        if record.record_type == "update":
            self.update_records.append(record)


def _chain_one(
    first: RouteRecord, rest: Iterator[RouteRecord]
) -> Iterator[RouteRecord]:
    yield first
    yield from rest


def _diff_atom_sets(streamed: AtomSet, cold: AtomSet) -> List[str]:
    """Human-readable differences between two atom sets (empty: equal).

    Equality here is the strong form the parity gate promises: same
    vantage points, same atom count, and per index the same atom id,
    prefix set and path vector.
    """
    problems: List[str] = []
    if list(streamed.vantage_points) != list(cold.vantage_points):
        problems.append(
            f"vantage points differ: {streamed.vantage_points} "
            f"!= {cold.vantage_points}"
        )
        return problems
    if len(streamed) != len(cold):
        problems.append(
            f"atom count differs: streamed {len(streamed)} != cold {len(cold)}"
        )
    for mine, theirs in zip(streamed.atoms, cold.atoms):
        if mine.atom_id != theirs.atom_id:
            problems.append(
                f"atom id differs at position {theirs.atom_id}: "
                f"{mine.atom_id} != {theirs.atom_id}"
            )
        if mine.prefixes != theirs.prefixes:
            problems.append(
                f"atom {theirs.atom_id} prefixes differ "
                f"({len(mine.prefixes)} vs {len(theirs.prefixes)} members)"
            )
        if tuple(mine.paths) != tuple(theirs.paths):
            problems.append(f"atom {theirs.atom_id} path vector differs")
        if len(problems) >= 20:
            break
    return problems
