"""JSON (de)serialization of route records.

The wire format is one JSON object per record.  Paths are stored in
their textual dump form (``"1 2 {3,4}"``) and prefixes as strings, so
archives are greppable and diffable.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.bgp.attributes import Community, PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def element_to_dict(element: RouteElement) -> Dict[str, Any]:
    """Serialise one element to its JSON dict form."""
    payload: Dict[str, Any] = {
        "t": element.element_type.value,
        "p": str(element.prefix),
    }
    if element.attributes is not None:
        payload["path"] = str(element.attributes.as_path)
        if element.attributes.communities:
            payload["comm"] = sorted(
                str(c) for c in element.attributes.communities
            )
        if element.attributes.med:
            payload["med"] = element.attributes.med
    return payload


def element_from_dict(payload: Dict[str, Any]) -> RouteElement:
    """Parse one element from its JSON dict form."""
    attributes = None
    if "path" in payload:
        attributes = PathAttributes(
            ASPath.parse(payload["path"]),
            communities=[Community.parse(c) for c in payload.get("comm", ())],
            med=payload.get("med", 0),
        )
    return RouteElement(
        ElementType(payload["t"]), Prefix.parse(payload["p"]), attributes
    )


def record_to_json(record: RouteRecord) -> str:
    """Serialise a record to one JSON line."""
    payload = {
        "type": record.record_type,
        "project": record.project,
        "collector": record.collector,
        "peer_asn": record.peer_asn,
        "peer_addr": record.peer_address,
        "time": record.timestamp,
        "elements": [element_to_dict(e) for e in record.elements],
    }
    if record.corrupt_warning:
        payload["warning"] = record.corrupt_warning
    return json.dumps(payload, separators=(",", ":"))


def record_from_json(line: str) -> RouteRecord:
    """Parse a record from one JSON line."""
    payload = json.loads(line)
    return RouteRecord(
        payload["type"],
        payload["project"],
        payload["collector"],
        payload["peer_asn"],
        payload["peer_addr"],
        payload["time"],
        [element_from_dict(e) for e in payload["elements"]],
        corrupt_warning=payload.get("warning", ""),
    )
