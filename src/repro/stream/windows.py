"""Windowed metrics for the live atom-maintenance pipeline.

The streaming pipeline (:mod:`repro.stream.live`) cuts the update
stream into fixed-width, absolutely aligned time windows: window ``k``
covers ``[k * w, (k + 1) * w)`` seconds since the epoch.  At every
window boundary the pipeline refreshes the atom partition and emits one
:class:`WindowResult` — the streaming analogue of the paper's
per-quarter rows, reusing the same churn notions (atom prefix-set
creation/removal, as in :mod:`repro.core.stability`) and the
atoms-vs-updates correlation of §3.3 (:mod:`repro.core.update_correlation`)
evaluated over just that window's records.

Everything in a :class:`WindowResult` except the wall-clock fields is a
deterministic function of the replayed stream, which is what lets CI
gate the ``live.*`` counters exactly; ``wall_seconds`` /
``backpressure_waits`` describe the run, not the data, and are exported
as span attributes only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.bgp.messages import RouteRecord
from repro.core.atoms import AtomSet
from repro.core.update_correlation import (
    GROUP_ATOM,
    UpdateCorrelation,
    update_correlation,
)
from repro.reporting.series import Series
from repro.reporting.tables import render_table


@dataclass
class WindowResult:
    """One closed window of the live pipeline."""

    #: absolute window index (``end // window_seconds - 1`` aligned)
    index: int
    #: inclusive window start (seconds since the epoch)
    start: int
    #: exclusive window end — the boundary the refresh ran at
    end: int
    #: records folded into this window
    records: int
    #: route elements across those records
    elements: int
    announcements: int
    withdrawals: int
    #: records whose timestamp predates the window start (out-of-order
    #: arrivals across dump boundaries; folded in, flagged here)
    late_records: int
    #: unique prefixes the refresh recomputed at the boundary
    dirty: int
    #: prefixes whose interned key actually moved
    key_changes: int
    #: atom count after the boundary refresh
    atoms: int
    #: visible prefixes after the boundary refresh
    prefixes: int
    #: atoms whose prefix set did not exist at the previous boundary
    created: int
    #: previous-boundary atoms whose prefix set disappeared
    removed: int
    #: share of window records containing *all* prefixes of a touched
    #: atom (``Pr_full`` of §3.3 over this window; None when unobserved)
    pr_full: Optional[float]
    #: wall-clock seconds spent in the window (non-deterministic)
    wall_seconds: float = 0.0
    #: coordinator blocks on a full shard queue (non-deterministic)
    backpressure_waits: int = 0

    def as_dict(self, deterministic_only: bool = False) -> Dict[str, object]:
        """JSON-safe view; ``deterministic_only`` drops wall-clock noise."""
        payload: Dict[str, object] = {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "records": self.records,
            "elements": self.elements,
            "announcements": self.announcements,
            "withdrawals": self.withdrawals,
            "late_records": self.late_records,
            "dirty": self.dirty,
            "key_changes": self.key_changes,
            "atoms": self.atoms,
            "prefixes": self.prefixes,
            "created": self.created,
            "removed": self.removed,
            "pr_full": self.pr_full,
        }
        if not deterministic_only:
            payload["wall_seconds"] = self.wall_seconds
            payload["backpressure_waits"] = self.backpressure_waits
        return payload


def overall_pr_full(
    correlation: UpdateCorrelation, kind: str = GROUP_ATOM
) -> Optional[float]:
    """Aggregate ``Pr_full`` across all sizes of one group kind.

    The per-size curves feed the paper's Figure 3; a window wants one
    number, so full and partial appearances are pooled over every group
    observed in the window.  None when no group was touched at all.
    """
    n_all = 0
    n_total = 0
    for counts in correlation.groups.get(kind, {}).values():
        n_all += counts.n_all
        n_total += counts.n_all + counts.n_partial
    if n_total == 0:
        return None
    return n_all / n_total


def window_correlation(
    atoms: AtomSet,
    records: Iterable[RouteRecord],
    max_size: Optional[int] = None,
) -> Optional[float]:
    """``Pr_full`` of the window's update records against ``atoms``.

    ``atoms`` is the partition *entering* the window (records update
    prefixes against the structure that existed while they arrived).
    """
    return overall_pr_full(update_correlation(atoms, records, max_size=max_size))


def window_churn(previous: Optional[AtomSet], current: AtomSet) -> "tuple[int, int]":
    """(created, removed) atom prefix-sets between two boundaries.

    The comparison key is the atom's prefix set — the same notion the
    CAM stability metric uses — so renumbered-but-identical atoms do
    not count as churn.
    """
    if previous is None:
        return len(current.atoms), 0
    before = previous.prefix_sets()
    after = current.prefix_sets()
    return len(after - before), len(before - after)


def window_series(results: Sequence[WindowResult]) -> List[Series]:
    """The windows as figure-ready series (x = window end, epoch s)."""
    atoms = Series("live.atoms")
    dirty = Series("live.dirty")
    created = Series("live.churn_created")
    removed = Series("live.churn_removed")
    pr_full = Series("live.pr_full")
    for window in results:
        x = float(window.end)
        atoms.add(x, float(window.atoms))
        dirty.add(x, float(window.dirty))
        created.add(x, float(window.created))
        removed.add(x, float(window.removed))
        pr_full.add(x, window.pr_full)
    return [atoms, dirty, created, removed, pr_full]


def render_window_table(results: Sequence[WindowResult]) -> str:
    """The ``repro live`` summary table."""
    rows = []
    for window in results:
        rows.append(
            [
                window.index,
                window.end,
                f"{window.records:,}",
                f"{window.dirty:,}",
                f"{window.key_changes:,}",
                f"{window.atoms:,}",
                f"+{window.created}/-{window.removed}",
                "-" if window.pr_full is None else f"{window.pr_full:.0%}",
            ]
        )
    headers = [
        "window",
        "end",
        "records",
        "dirty",
        "moved",
        "atoms",
        "churn",
        "Pr_full",
    ]
    return render_table(headers, rows, title="Live window metrics")
