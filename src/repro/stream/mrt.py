"""MRT (RFC 6396) binary parsing and writing.

Real RouteViews / RIPE RIS archives ship MRT files; this module reads
the subset the replication needs and converts it into the library's
:class:`~repro.bgp.messages.RouteRecord` model:

* ``TABLE_DUMP_V2`` (type 13): ``PEER_INDEX_TABLE`` (subtype 1),
  ``RIB_IPV4_UNICAST`` (2) and ``RIB_IPV6_UNICAST`` (4);
* ``BGP4MP`` / ``BGP4MP_ET`` (16/17): ``MESSAGE`` (1) and
  ``MESSAGE_AS4`` (4) carrying BGP UPDATEs, including ``MP_REACH_NLRI``
  / ``MP_UNREACH_NLRI`` for IPv6.

A writer for the same subset is included so round-trip tests (and
fixture generation) need no external data.  Unknown record types are
surfaced as :class:`~repro.bgp.errors.CorruptRecordError`-style flagged
records rather than silently skipped — mirroring how BGPStream warns on
unparseable input (the signal the sanitizer keys on, A8.3.1).
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.attributes import Community, PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.net.aspath import AS_TRANS, ASPath, PathSegment, SegmentType, merge_as4_path
from repro.net.prefix import AF_INET, AF_INET6, Prefix
from repro.obs import get_tracer

# MRT types.
MRT_TABLE_DUMP_V2 = 13
MRT_BGP4MP = 16
MRT_BGP4MP_ET = 17

# TABLE_DUMP_V2 subtypes.
TDV2_PEER_INDEX_TABLE = 1
TDV2_RIB_IPV4_UNICAST = 2
TDV2_RIB_IPV6_UNICAST = 4

# BGP4MP subtypes.
BGP4MP_MESSAGE = 1
BGP4MP_MESSAGE_AS4 = 4

# BGP path attribute type codes.
ATTR_ORIGIN = 1
ATTR_AS_PATH = 2
ATTR_MED = 4
ATTR_COMMUNITIES = 8
ATTR_MP_REACH_NLRI = 14
ATTR_MP_UNREACH_NLRI = 15
ATTR_AS4_PATH = 17

AFI_IPV4 = 1
AFI_IPV6 = 2

# Precompiled binary layouts, shared by reader and writer.  Compiling
# the 12-byte record header and the big-endian integer fields once at
# import time keeps format-string parsing out of the per-record loop;
# ``unpack_from`` reads straight out of the record body (bytes or
# memoryview) without carving intermediate slices.
_MRT_HEADER = struct.Struct(">IHHI")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")


class MRTError(ValueError):
    """Raised on structurally invalid MRT input."""


# ----------------------------------------------------------------------
# Low-level helpers
# ----------------------------------------------------------------------

def _read_exact(stream: BinaryIO, count: int) -> Optional[bytes]:
    data = stream.read(count)
    if not data:
        return None
    if len(data) != count:
        raise MRTError(f"truncated MRT stream (wanted {count}, got {len(data)})")
    return data


def _decode_nlri(
    data: "bytes | memoryview", offset: int, family: int
) -> Tuple[Prefix, int]:
    """Decode one length-prefixed NLRI entry; returns (prefix, new offset)."""
    if offset >= len(data):
        raise MRTError("NLRI runs past the buffer")
    bit_length = data[offset]
    offset += 1
    byte_length = (bit_length + 7) // 8
    chunk = data[offset : offset + byte_length]
    if len(chunk) != byte_length:
        raise MRTError("NLRI prefix bytes truncated")
    offset += byte_length
    total_bits = 32 if family == AF_INET else 128
    value = int.from_bytes(chunk, "big") << (total_bits - 8 * byte_length)
    return Prefix.from_host_bits(family, value, bit_length), offset


def _encode_nlri(prefix: Prefix) -> bytes:
    byte_length = (prefix.length + 7) // 8
    total_bits = prefix.max_length
    value = prefix.network >> (total_bits - 8 * byte_length) if byte_length else 0
    return bytes([prefix.length]) + value.to_bytes(byte_length, "big")


def _decode_as_path(data: "bytes | memoryview", asn_size: int) -> ASPath:
    segments: List[PathSegment] = []
    offset = 0
    end = len(data)
    while offset < end:
        if offset + 2 > end:
            raise MRTError("AS_PATH segment header truncated")
        segment_type = data[offset]
        count = data[offset + 1]
        offset += 2
        if offset + count * asn_size > end:
            raise MRTError("AS_PATH ASN truncated")
        # One unpack for the whole segment (struct caches the compiled
        # format per count) instead of a from_bytes slice per ASN.
        code = "I" if asn_size == 4 else "H"
        asns = list(struct.unpack_from(f">{count}{code}", data, offset))
        offset += count * asn_size
        if segment_type not in (1, 2):
            raise MRTError(f"unknown AS_PATH segment type {segment_type}")
        segments.append(
            PathSegment(
                SegmentType.AS_SET if segment_type == 1 else SegmentType.AS_SEQUENCE,
                asns,
            )
        )
    return ASPath(segments)


def _encode_as_path(path: ASPath, asn_size: int = 4) -> bytes:
    out = bytearray()
    for segment in path.segments:
        out.append(1 if segment.is_set else 2)
        out.append(len(segment.asns))
        for asn in segment.asns:
            if asn_size == 2 and asn > 0xFFFF:
                asn = AS_TRANS  # RFC 6793: 2-byte speakers substitute
            out += asn.to_bytes(asn_size, "big")
    return bytes(out)


def _decode_attributes(
    data: "bytes | memoryview", asn_size: int
) -> Tuple[Optional[PathAttributes], List[Prefix], List[Prefix], int]:
    """Decode a BGP UPDATE's path-attribute block.

    Returns (attributes or None, v6 announced, v6 withdrawn, med) —
    IPv6 NLRI ride inside MP_(UN)REACH attributes.
    """
    as_path: Optional[ASPath] = None
    as4_path: Optional[ASPath] = None
    communities: List[Community] = []
    med = 0
    v6_announced: List[Prefix] = []
    v6_withdrawn: List[Prefix] = []

    offset = 0
    end = len(data)
    while offset < end:
        if offset + 2 > end:
            raise MRTError("attribute header truncated")
        flags = data[offset]
        type_code = data[offset + 1]
        offset += 2
        if flags & 0x10:  # extended length
            if offset + 2 > end:
                raise MRTError("extended attribute length truncated")
            length = _U16.unpack_from(data, offset)[0]
            offset += 2
        else:
            if offset + 1 > end:
                raise MRTError("attribute length truncated")
            length = data[offset]
            offset += 1
        body = data[offset : offset + length]
        if len(body) != length:
            raise MRTError("attribute body truncated")
        offset += length

        if type_code == ATTR_AS_PATH:
            as_path = _decode_as_path(body, asn_size)
        elif type_code == ATTR_AS4_PATH:
            # AS4_PATH is always 4-byte encoded (RFC 6793 §3), whatever
            # the session's AS_PATH encoding.
            as4_path = _decode_as_path(body, 4)
        elif type_code == ATTR_MED:
            med = int.from_bytes(body, "big")
        elif type_code == ATTR_COMMUNITIES:
            for pos in range(0, len(body) - 3, 4):
                communities.append(
                    Community(
                        _U16.unpack_from(body, pos)[0],
                        _U16.unpack_from(body, pos + 2)[0],
                    )
                )
        elif type_code == ATTR_MP_REACH_NLRI:
            afi = _U16.unpack_from(body, 0)[0]
            next_hop_length = body[3]
            pos = 4 + next_hop_length + 1  # skip next hop + reserved byte
            family = AF_INET6 if afi == AFI_IPV6 else AF_INET
            while pos < len(body):
                prefix, pos = _decode_nlri(body, pos, family)
                v6_announced.append(prefix)
        elif type_code == ATTR_MP_UNREACH_NLRI:
            afi = _U16.unpack_from(body, 0)[0]
            pos = 3
            family = AF_INET6 if afi == AFI_IPV6 else AF_INET
            while pos < len(body):
                prefix, pos = _decode_nlri(body, pos, family)
                v6_withdrawn.append(prefix)
        # ORIGIN and anything else: ignored (not consumed by analyses).

    if as_path is not None and as4_path is not None:
        # 2-byte session: restore the 4-byte ASNs AS_TRANS stood in for.
        as_path = merge_as4_path(as_path, as4_path)
    if as_path is None:
        return None, v6_announced, v6_withdrawn, med
    return (
        PathAttributes(as_path, communities=communities, med=med),
        v6_announced,
        v6_withdrawn,
        med,
    )


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------

class MRTReader:
    """Iterate :class:`RouteRecord` objects out of an MRT byte stream.

    TABLE_DUMP_V2 RIB entries resolve peers through the most recent
    PEER_INDEX_TABLE; BGP4MP messages carry their peer inline.  Records
    of unknown type/subtype yield a flagged (``corrupt_warning``) empty
    record so callers see the same signal BGPStream emits.
    """

    def __init__(self, stream: BinaryIO, project: str = "mrt",
                 collector: str = "unknown"):
        self.stream = stream
        self.project = project
        self.collector = collector
        #: raw MRT bytes consumed so far (headers + bodies)
        self.bytes_read = 0
        self._peers: List[Tuple[int, str]] = []  # (asn, address) by index

    def __iter__(self) -> Iterator[RouteRecord]:
        tracer = get_tracer()
        if not tracer.enabled:
            yield from self._decode()
            return
        produced = 0
        corrupt = 0
        started = self.bytes_read
        with tracer.span(
            "mrt-decode", source="mrt", collector=self.collector
        ) as span:
            try:
                for record in self._decode():
                    produced += 1
                    if record.is_corrupt:
                        corrupt += 1
                    yield record
            finally:
                consumed = self.bytes_read - started
                span.set(
                    records=produced, corrupt_records=corrupt, bytes=consumed
                )
                tracer.count("decode.records", produced)
                tracer.count("decode.bytes", consumed)
                if corrupt:
                    tracer.count("decode.corrupt_records", corrupt)

    def _decode(self) -> Iterator[RouteRecord]:
        while True:
            header = _read_exact(self.stream, 12)
            if header is None:
                return
            timestamp, mrt_type, subtype, length = _MRT_HEADER.unpack(header)
            raw = self.stream.read(length)
            self.bytes_read += 12 + len(raw)
            if len(raw) != length:
                raise MRTError("truncated MRT record body")
            # Sub-decoders slice the body heavily; a memoryview makes
            # every slice a zero-copy window.  Nothing yielded retains a
            # view, so the buffer's lifetime ends with the record.
            body = memoryview(raw)
            if mrt_type == MRT_BGP4MP_ET:
                body = body[4:]  # drop the microsecond extension
                mrt_type = MRT_BGP4MP
            if mrt_type == MRT_TABLE_DUMP_V2:
                if subtype == TDV2_PEER_INDEX_TABLE:
                    self._load_peer_index(body)
                    continue
                if subtype in (TDV2_RIB_IPV4_UNICAST, TDV2_RIB_IPV6_UNICAST):
                    yield from self._rib_records(body, subtype, timestamp)
                    continue
            elif mrt_type == MRT_BGP4MP and subtype in (
                BGP4MP_MESSAGE,
                BGP4MP_MESSAGE_AS4,
            ):
                record = self._bgp4mp_record(body, subtype, timestamp)
                if record is not None:
                    yield record
                continue
            yield RouteRecord(
                "update", self.project, self.collector, 0, "0.0.0.0",
                timestamp, [],
                corrupt_warning=f"unknown MRT record type {mrt_type}/{subtype}",
            )

    # -- TABLE_DUMP_V2 --------------------------------------------------

    def _load_peer_index(self, body: "bytes | memoryview") -> None:
        offset = 4  # collector BGP ID
        view_length = _U16.unpack_from(body, offset)[0]
        offset += 2 + view_length
        peer_count = _U16.unpack_from(body, offset)[0]
        offset += 2
        peers: List[Tuple[int, str]] = []
        for _ in range(peer_count):
            peer_type = body[offset]
            offset += 1 + 4  # type + BGP ID
            if peer_type & 0x01:  # IPv6 address
                raw = body[offset : offset + 16]
                offset += 16
                address = str(Prefix(AF_INET6, int.from_bytes(raw, "big"), 128)).split("/")[0]
            else:
                raw = body[offset : offset + 4]
                offset += 4
                address = ".".join(str(b) for b in raw)
            if peer_type & 0x02:
                asn = _U32.unpack_from(body, offset)[0]
                offset += 4
            else:
                asn = _U16.unpack_from(body, offset)[0]
                offset += 2
            peers.append((asn, address))
        self._peers = peers

    def _rib_records(self, body: "bytes | memoryview", subtype: int,
                     timestamp: int) -> Iterator[RouteRecord]:
        family = AF_INET if subtype == TDV2_RIB_IPV4_UNICAST else AF_INET6
        offset = 4  # sequence number
        prefix, offset = _decode_nlri(body, offset, family)
        entry_count = _U16.unpack_from(body, offset)[0]
        offset += 2
        for _ in range(entry_count):
            peer_index = _U16.unpack_from(body, offset)[0]
            offset += 2 + 4  # + originated time
            attr_length = _U16.unpack_from(body, offset)[0]
            offset += 2
            attr_block = body[offset : offset + attr_length]
            offset += attr_length
            try:
                peer_asn, peer_address = self._peers[peer_index]
            except IndexError:
                raise MRTError(f"RIB entry references unknown peer {peer_index}")
            attributes, _, _, _ = _decode_attributes(attr_block, asn_size=4)
            if attributes is None:
                continue
            yield RouteRecord(
                "rib", self.project, self.collector, peer_asn, peer_address,
                timestamp,
                [RouteElement(ElementType.RIB, prefix, attributes)],
            )

    # -- BGP4MP -----------------------------------------------------------

    def _bgp4mp_record(self, body: "bytes | memoryview", subtype: int,
                       timestamp: int) -> Optional[RouteRecord]:
        asn_size = 4 if subtype == BGP4MP_MESSAGE_AS4 else 2
        asn_struct = _U32 if asn_size == 4 else _U16

        def corrupt(reason: str, peer_asn: int = 0,
                    peer_address: str = "0.0.0.0") -> RouteRecord:
            return RouteRecord(
                "update", self.project, self.collector, peer_asn,
                peer_address, timestamp, [], corrupt_warning=reason,
            )

        if len(body) < 2 * asn_size + 4:
            return corrupt("truncated BGP4MP peer header")
        offset = 0
        peer_asn = asn_struct.unpack_from(body, offset)[0]
        offset += 2 * asn_size  # peer AS + local AS
        offset += 2  # interface index
        afi = _U16.unpack_from(body, offset)[0]
        offset += 2
        addr_len = 4 if afi == AFI_IPV4 else 16
        if len(body) < offset + 2 * addr_len:
            return corrupt("truncated BGP4MP address block", peer_asn)
        raw = body[offset : offset + addr_len]
        if afi == AFI_IPV4:
            peer_address = ".".join(str(b) for b in raw)
        else:
            peer_address = str(
                Prefix(AF_INET6, int.from_bytes(raw, "big"), 128)
            ).split("/")[0]
        offset += 2 * addr_len  # peer + local address

        # BGP message: 16-byte marker, 2-byte length, 1-byte type.
        # Damaged records (bad marker, length pointing past the MRT
        # body) become flagged corrupt_warning records — the signal the
        # sanitizer's ADD-PATH heuristic keys on — never misparses.
        marker_end = offset + 16
        if len(body) < marker_end + 3:
            return corrupt("truncated BGP message header", peer_asn, peer_address)
        if body[offset:marker_end] != b"\xff" * 16:
            return corrupt("invalid BGP message marker", peer_asn, peer_address)
        declared = _U16.unpack_from(body, marker_end)[0]
        if declared < 19 or offset + declared > len(body):
            return corrupt(
                f"declared BGP message length {declared} exceeds record",
                peer_asn, peer_address,
            )
        message_end = offset + declared
        message_type = body[marker_end + 2]
        offset = marker_end + 3
        if message_type != 2:  # not an UPDATE
            return None

        try:
            if offset + 2 > message_end:
                raise MRTError("withdrawn-routes length truncated")
            withdrawn_length = _U16.unpack_from(body, offset)[0]
            offset += 2
            if offset + withdrawn_length > message_end:
                raise MRTError("withdrawn routes overrun the message")
            withdrawn_block = body[offset : offset + withdrawn_length]
            offset += withdrawn_length
            if offset + 2 > message_end:
                raise MRTError("path-attribute length truncated")
            attr_length = _U16.unpack_from(body, offset)[0]
            offset += 2
            if offset + attr_length > message_end:
                raise MRTError("path attributes overrun the message")
            attr_block = body[offset : offset + attr_length]
            offset += attr_length
            nlri_block = body[offset:message_end]

            elements: List[RouteElement] = []
            pos = 0
            while pos < len(withdrawn_block):
                prefix, pos = _decode_nlri(withdrawn_block, pos, AF_INET)
                elements.append(RouteElement(ElementType.WITHDRAWAL, prefix))
            attributes, v6_announced, v6_withdrawn, _ = _decode_attributes(
                attr_block, asn_size
            )
            pos = 0
            while pos < len(nlri_block):
                prefix, pos = _decode_nlri(nlri_block, pos, AF_INET)
                if attributes is not None:
                    elements.append(
                        RouteElement(ElementType.ANNOUNCEMENT, prefix, attributes)
                    )
        except MRTError as error:
            return corrupt(f"damaged BGP UPDATE: {error}", peer_asn, peer_address)
        for prefix in v6_announced:
            if attributes is not None:
                elements.append(
                    RouteElement(ElementType.ANNOUNCEMENT, prefix, attributes)
                )
        for prefix in v6_withdrawn:
            elements.append(RouteElement(ElementType.WITHDRAWAL, prefix))
        return RouteRecord(
            "update", self.project, self.collector, peer_asn, peer_address,
            timestamp, elements,
        )


def read_mrt(stream: BinaryIO, project: str = "mrt",
             collector: str = "unknown") -> Iterator[RouteRecord]:
    """Convenience: iterate records from an MRT byte stream."""
    return iter(MRTReader(stream, project=project, collector=collector))


# ----------------------------------------------------------------------
# Writer (fixture generation and export)
# ----------------------------------------------------------------------

class MRTWriter:
    """Write the supported MRT subset.

    ``write_peer_index`` must precede ``write_rib_entry`` calls, exactly
    as TABLE_DUMP_V2 files are laid out.
    """

    def __init__(self, stream: BinaryIO):
        self.stream = stream
        self._peer_index: Dict[Tuple[int, str], int] = {}

    def _emit(self, timestamp: int, mrt_type: int, subtype: int,
              body: bytes) -> None:
        self.stream.write(_MRT_HEADER.pack(timestamp, mrt_type, subtype,
                                           len(body)))
        self.stream.write(body)

    def write_peer_index(self, peers: Sequence[Tuple[int, str]],
                         timestamp: int = 0) -> None:
        """Write the PEER_INDEX_TABLE for (asn, IPv4 address) peers."""
        body = bytearray()
        body += b"\x00\x00\x00\x00"  # collector BGP ID
        body += (0).to_bytes(2, "big")  # empty view name
        body += len(peers).to_bytes(2, "big")
        self._peer_index = {}
        for index, (asn, address) in enumerate(peers):
            body.append(0x02)  # IPv4 address, 4-byte ASN
            body += b"\x00\x00\x00\x00"  # peer BGP ID
            body += bytes(int(part) for part in address.split("."))
            body += asn.to_bytes(4, "big")
            self._peer_index[(asn, address)] = index
        self._emit(timestamp, MRT_TABLE_DUMP_V2, TDV2_PEER_INDEX_TABLE, bytes(body))

    def write_rib_entry(
        self,
        prefix: Prefix,
        entries: Sequence[Tuple[int, str, PathAttributes]],
        timestamp: int = 0,
        sequence: int = 0,
    ) -> None:
        """Write one RIB prefix with per-peer attribute entries."""
        body = bytearray()
        body += sequence.to_bytes(4, "big")
        body += _encode_nlri(prefix)
        body += len(entries).to_bytes(2, "big")
        for asn, address, attributes in entries:
            index = self._peer_index[(asn, address)]
            body += index.to_bytes(2, "big")
            body += (timestamp).to_bytes(4, "big")
            attr_block = self._encode_update_attributes(attributes)
            body += len(attr_block).to_bytes(2, "big")
            body += attr_block
        subtype = (
            TDV2_RIB_IPV4_UNICAST if prefix.family == AF_INET
            else TDV2_RIB_IPV6_UNICAST
        )
        self._emit(timestamp, MRT_TABLE_DUMP_V2, subtype, bytes(body))

    def _encode_update_attributes(self, attributes: PathAttributes,
                                  asn_size: int = 4) -> bytes:
        block = bytearray()

        def attribute(type_code: int, payload: bytes, flags: int = 0x40) -> None:
            if len(payload) > 255:
                block.extend([flags | 0x10, type_code])
                block.extend(len(payload).to_bytes(2, "big"))
            else:
                block.extend([flags, type_code])
                block.append(len(payload))
            block.extend(payload)

        attribute(ATTR_ORIGIN, bytes([int(attributes.origin)]))
        attribute(ATTR_AS_PATH, _encode_as_path(attributes.as_path, asn_size))
        if asn_size == 2 and any(
            asn > 0xFFFF for asn in attributes.as_path.asns()
        ):
            # The true 4-byte path rides in the optional transitive
            # AS4_PATH attribute (RFC 6793 §3).
            attribute(
                ATTR_AS4_PATH, _encode_as_path(attributes.as_path, 4), flags=0xC0
            )
        if attributes.med:
            attribute(ATTR_MED, attributes.med.to_bytes(4, "big"), flags=0x80)
        if attributes.communities:
            payload = bytearray()
            for community in sorted(attributes.communities):
                payload += community.asn.to_bytes(2, "big")
                payload += community.value.to_bytes(2, "big")
            attribute(ATTR_COMMUNITIES, bytes(payload), flags=0xC0)
        return bytes(block)

    def write_update(
        self,
        peer_asn: int,
        peer_address: str,
        announced: Sequence[Tuple[Prefix, PathAttributes]],
        withdrawn: Sequence[Prefix] = (),
        timestamp: int = 0,
        as4: bool = True,
    ) -> None:
        """Write one BGP4MP UPDATE (``MESSAGE_AS4``, or with
        ``as4=False`` a legacy 2-byte-ASN ``MESSAGE``).

        All announced prefixes must share one attribute bundle (as in a
        real UPDATE); IPv6 prefixes ride in MP_(UN)REACH attributes.
        Legacy records substitute AS_TRANS in AS_PATH and attach the
        true path as AS4_PATH when any ASN needs 4 bytes (RFC 6793).
        """
        asn_size = 4 if as4 else 2
        attributes = announced[0][1] if announced else None
        v4_announced = [p for p, _ in announced if p.family == AF_INET]
        v6_announced = [p for p, _ in announced if p.family == AF_INET6]
        v4_withdrawn = [p for p in withdrawn if p.family == AF_INET]
        v6_withdrawn = [p for p in withdrawn if p.family == AF_INET6]

        withdrawn_block = b"".join(_encode_nlri(p) for p in v4_withdrawn)
        attr_block = bytearray()
        if attributes is not None:
            attr_block += self._encode_update_attributes(attributes, asn_size)
        if v6_announced:
            payload = bytearray()
            payload += AFI_IPV6.to_bytes(2, "big")
            payload.append(1)   # SAFI unicast
            payload.append(16)  # next-hop length
            payload += bytes(16)
            payload.append(0)   # reserved
            for prefix in v6_announced:
                payload += _encode_nlri(prefix)
            attr_block.extend([0x80, ATTR_MP_REACH_NLRI])
            attr_block.append(len(payload))
            attr_block += bytes(payload)
        if v6_withdrawn:
            payload = bytearray()
            payload += AFI_IPV6.to_bytes(2, "big")
            payload.append(1)
            for prefix in v6_withdrawn:
                payload += _encode_nlri(prefix)
            attr_block.extend([0x80, ATTR_MP_UNREACH_NLRI])
            attr_block.append(len(payload))
            attr_block += bytes(payload)
        nlri_block = b"".join(_encode_nlri(p) for p in v4_announced)

        update = bytearray()
        update += len(withdrawn_block).to_bytes(2, "big")
        update += withdrawn_block
        update += len(attr_block).to_bytes(2, "big")
        update += bytes(attr_block)
        update += nlri_block

        message = bytearray()
        message += b"\xff" * 16
        message += (19 + len(update)).to_bytes(2, "big")
        message.append(2)  # UPDATE
        message += update

        header_peer_asn = (
            peer_asn if as4 or peer_asn <= 0xFFFF else AS_TRANS
        )
        body = bytearray()
        body += header_peer_asn.to_bytes(asn_size, "big")
        body += (64512).to_bytes(asn_size, "big")  # local AS
        body += (0).to_bytes(2, "big")  # interface index
        body += AFI_IPV4.to_bytes(2, "big")
        body += bytes(int(part) for part in peer_address.split("."))
        body += bytes(4)  # local address
        body += message
        subtype = BGP4MP_MESSAGE_AS4 if as4 else BGP4MP_MESSAGE
        self._emit(timestamp, MRT_BGP4MP, subtype, bytes(body))
