"""Composable record filters for BGPStream pipelines.

pybgpstream exposes server-side filters ("peer 25152 and prefix more
10.0.0.0/8"); this module provides the client-side equivalents as
composable predicates over :class:`RouteRecord`, so analysis code can
narrow a stream without materialising it.

Example::

    from repro.stream.filters import by_collector, by_prefix, either, apply

    wanted = apply(records, by_collector("rrc00") & by_prefix("10.0.0.0/8"))
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.bgp.messages import RouteRecord
from repro.net.prefix import Prefix

Predicate = Callable[[RouteRecord], bool]


class RecordFilter:
    """A predicate over records, combinable with ``&``, ``|`` and ``~``."""

    def __init__(self, predicate: Predicate, description: str = "filter"):
        self.predicate = predicate
        self.description = description

    def __call__(self, record: RouteRecord) -> bool:
        return self.predicate(record)

    def __and__(self, other: "RecordFilter") -> "RecordFilter":
        return RecordFilter(
            lambda record: self(record) and other(record),
            f"({self.description} and {other.description})",
        )

    def __or__(self, other: "RecordFilter") -> "RecordFilter":
        return RecordFilter(
            lambda record: self(record) or other(record),
            f"({self.description} or {other.description})",
        )

    def __invert__(self) -> "RecordFilter":
        return RecordFilter(
            lambda record: not self(record), f"(not {self.description})"
        )

    def __repr__(self) -> str:
        return f"RecordFilter({self.description})"


def by_collector(*collectors: str) -> RecordFilter:
    """Keep records from the named collectors."""
    wanted = set(collectors)
    return RecordFilter(
        lambda record: record.collector in wanted,
        f"collector in {sorted(wanted)}",
    )


def by_project(project: str) -> RecordFilter:
    """Keep records from one project ("ris" / "routeviews")."""
    return RecordFilter(
        lambda record: record.project == project, f"project == {project}"
    )


def by_peer_asn(*asns: int) -> RecordFilter:
    """Keep records from the given peer ASNs."""
    wanted = set(asns)
    return RecordFilter(
        lambda record: record.peer_asn in wanted, f"peer in {sorted(wanted)}"
    )


def by_type(record_type: str) -> RecordFilter:
    """Keep one record type ("rib" / "update")."""
    return RecordFilter(
        lambda record: record.record_type == record_type,
        f"type == {record_type}",
    )


def by_time(from_time: int = 0, until_time: int = 2**62) -> RecordFilter:
    """Keep records inside [from_time, until_time]."""
    return RecordFilter(
        lambda record: from_time <= record.timestamp <= until_time,
        f"time in [{from_time}, {until_time}]",
    )


def by_prefix(covering: str) -> RecordFilter:
    """Keep records touching any prefix inside ``covering``
    (pybgpstream's "prefix more")."""
    umbrella = Prefix.parse(covering)
    return RecordFilter(
        lambda record: any(
            umbrella.contains(element.prefix) for element in record.elements
        ),
        f"prefix more {covering}",
    )


def healthy() -> RecordFilter:
    """Drop records flagged with parse corruption."""
    return RecordFilter(lambda record: not record.is_corrupt, "not corrupt")


def apply(
    records: Iterable[RouteRecord], record_filter: RecordFilter
) -> Iterator[RouteRecord]:
    """Lazily filter a record stream."""
    return (record for record in records if record_filter(record))
