"""Shared utilities: UTC date handling and deterministic sub-seeding."""

from repro.util.dates import (
    HOUR,
    DAY,
    WEEK,
    parse_utc,
    quarterly_snapshot_times,
    utc_timestamp,
    year_fraction,
)
from repro.util.determinism import derive_rng, derive_seed

__all__ = [
    "DAY",
    "HOUR",
    "WEEK",
    "derive_rng",
    "derive_seed",
    "parse_utc",
    "quarterly_snapshot_times",
    "utc_timestamp",
    "year_fraction",
]
