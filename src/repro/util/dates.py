"""UTC timestamp helpers.

All simulator timestamps are integer seconds since the Unix epoch, UTC.
The paper's snapshot cadence (quarterly: 15th 8am, 15th 4pm, 16th 8am,
22nd 8am of Jan/Apr/Jul/Oct) is encoded here so analyses and benches
share one definition.
"""

from __future__ import annotations

import calendar
from datetime import datetime, timezone
from typing import Iterator, List, Tuple

HOUR = 3600
DAY = 24 * HOUR
WEEK = 7 * DAY

#: Months in which the paper takes quarterly snapshots.
QUARTER_MONTHS = (1, 4, 7, 10)

#: (day, hour) offsets of the four snapshots within a quarter month.
QUARTER_SNAPSHOT_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (15, 8),
    (15, 16),
    (16, 8),
    (22, 8),
)


def utc_timestamp(year: int, month: int = 1, day: int = 1, hour: int = 0,
                  minute: int = 0, second: int = 0) -> int:
    """Epoch seconds for a UTC wall-clock time."""
    return calendar.timegm((year, month, day, hour, minute, second, 0, 0, 0))


def parse_utc(text: str) -> int:
    """Parse ``"YYYY-MM-DD"`` or ``"YYYY-MM-DD HH:MM"`` as UTC."""
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y-%m-%d"):
        try:
            parsed = datetime.strptime(text, fmt)
        except ValueError:
            continue
        return int(parsed.replace(tzinfo=timezone.utc).timestamp())
    raise ValueError(f"unrecognised UTC datetime {text!r}")


def year_fraction(timestamp: int) -> float:
    """Timestamp as a fractional year, e.g. mid-2014 -> ~2014.5."""
    moment = datetime.fromtimestamp(timestamp, tz=timezone.utc)
    start = utc_timestamp(moment.year)
    end = utc_timestamp(moment.year + 1)
    return moment.year + (timestamp - start) / (end - start)


def quarterly_snapshot_times(year: int) -> List[Tuple[int, ...]]:
    """The paper's four snapshot instants for each quarter of ``year``.

    Returns one tuple of four timestamps per quarter month.
    """
    quarters: List[Tuple[int, ...]] = []
    for month in QUARTER_MONTHS:
        quarters.append(
            tuple(
                utc_timestamp(year, month, day, hour)
                for day, hour in QUARTER_SNAPSHOT_OFFSETS
            )
        )
    return quarters


def quarter_start(timestamp: int) -> int:
    """Timestamp of the first instant of the containing calendar quarter."""
    moment = datetime.fromtimestamp(timestamp, tz=timezone.utc)
    month = QUARTER_MONTHS[(moment.month - 1) // 3]
    return utc_timestamp(moment.year, month, 1)


def iter_quarters(first_year: int, last_year: int) -> Iterator[Tuple[int, int, Tuple[int, ...]]]:
    """Yield (year, month, snapshot-times) across an inclusive year range."""
    for year in range(first_year, last_year + 1):
        for month, snapshots in zip(QUARTER_MONTHS, quarterly_snapshot_times(year)):
            yield year, month, snapshots
