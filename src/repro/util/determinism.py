"""Deterministic sub-seed derivation.

Every stochastic component of the simulator derives its RNG from the
world seed plus a stable label, so any single component can be
re-instantiated in isolation (e.g. in a test) and produce the same
stream it produced inside the full simulation.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base_seed: int, *labels: object) -> int:
    """A 64-bit seed derived from ``base_seed`` and a label path.

    Uses BLAKE2b rather than ``hash()`` so results are stable across
    interpreter runs (``PYTHONHASHSEED`` does not leak in).
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(base_seed).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest(), "big")


def derive_rng(base_seed: int, *labels: object) -> random.Random:
    """A ``random.Random`` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(base_seed, *labels))
