"""Data sanitization (§2.4.2-§2.4.4, A8.3).

The paper's additions to the original methodology, in order:

1. **Abnormal peer removal** — peers whose records show ADD-PATH parsing
   damage, whose paths leak a private ASN at scale, or who flood the
   collector with duplicate prefixes (> 10 %);
2. **AS_SET handling** — expand singleton sets, drop paths with larger
   sets (performed later, inside atom computation);
3. **Full-feed inference** — keep peers sharing > 90 % of the maximum
   unique-prefix count as vantage points;
4. **Prefix filtering** — keep prefixes seen at >= 2 collectors and by
   >= 4 peer ASes, no longer than /24 (IPv4) or /48 (IPv6).

``sanitize`` consumes raw route records and returns a
:class:`CleanDataset`: the snapshot, the vantage points, the filtered
prefix universe, and a :class:`SanitizationReport` documenting every
removal (the repo's analogue of the paper's Table 5).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.messages import RouteRecord
from repro.bgp.rib import PeerId, RIBSnapshot
from repro.core.fullfeed import DEFAULT_FULLFEED_RATIO, full_feed_peers
from repro.net.asn import is_private_asn
from repro.net.prefix import AF_INET, AF_INET6, Prefix
from repro.obs import get_tracer

#: Longest prefix kept per family (§2.4.3).
DEFAULT_MAX_LENGTH = {AF_INET: 24, AF_INET6: 48}


@dataclass
class SanitizationConfig:
    """Thresholds of the cleaning pipeline (paper defaults)."""

    fullfeed_ratio: float = DEFAULT_FULLFEED_RATIO
    min_collectors: int = 2
    min_peer_ases: int = 4
    max_prefix_length: Dict[int, int] = field(
        default_factory=lambda: dict(DEFAULT_MAX_LENGTH)
    )
    #: any corrupt record beyond this share flags the peer as ADD-PATH broken
    max_corrupt_record_share: float = 0.02
    #: share of a peer's paths containing a private ASN that flags it
    max_private_asn_share: float = 0.30
    #: share of duplicate prefixes that flags a peer (paper: 10 %)
    max_duplicate_share: float = 0.10
    #: drop prefix-length filtering entirely (2002 replication mode, §3.1.3)
    keep_all_lengths: bool = False


@dataclass
class PeerAudit:
    """Raw per-peer counters collected while scanning records."""

    records: int = 0
    corrupt_records: int = 0
    elements: int = 0
    private_asn_paths: int = 0
    duplicate_elements: int = 0
    unique_prefixes: int = 0


@dataclass
class SanitizationReport:
    """What the pipeline removed, and why."""

    removed_peers: Dict[int, str] = field(default_factory=dict)
    audits: Dict[int, PeerAudit] = field(default_factory=dict)
    fullfeed_peers: int = 0
    partial_peers: int = 0
    prefixes_total: int = 0
    prefixes_kept: int = 0
    prefixes_dropped_visibility: int = 0
    prefixes_dropped_length: int = 0

    def removed_by_reason(self, reason: str) -> List[int]:
        """Peer ASNs removed for one reason, sorted."""
        return sorted(
            asn for asn, why in self.removed_peers.items() if why == reason
        )


@dataclass
class CleanDataset:
    """Sanitized inputs for atom computation."""

    snapshot: RIBSnapshot
    vantage_points: List[PeerId]
    prefixes: Set[Prefix]
    report: SanitizationReport
    config: SanitizationConfig

    @property
    def timestamp(self) -> int:
        return self.snapshot.timestamp


def audit_peers(records: Iterable[RouteRecord]) -> Tuple[Dict[int, PeerAudit], List[RouteRecord]]:
    """Scan records once, collecting per-peer-ASN health counters."""
    audits: Dict[int, PeerAudit] = defaultdict(PeerAudit)
    kept: List[RouteRecord] = []
    seen_prefixes: Dict[Tuple[int, PeerId], Set[Prefix]] = defaultdict(set)
    for record in records:
        audit = audits[record.peer_asn]
        audit.records += 1
        if record.is_corrupt:
            audit.corrupt_records += 1
        seen = seen_prefixes[(record.peer_asn, record.peer_id)]
        for element in record.elements:
            audit.elements += 1
            if element.prefix in seen:
                audit.duplicate_elements += 1
            else:
                seen.add(element.prefix)
            if element.attributes is not None:
                path = element.attributes.as_path
                # The peer's own ASN may be private in odd setups; what
                # flags misconfiguration is a private ASN *inside* the path.
                if any(is_private_asn(asn) for asn in path.asns()[1:]):
                    audit.private_asn_paths += 1
        kept.append(record)
    for (peer_asn, _), prefixes in seen_prefixes.items():
        audits[peer_asn].unique_prefixes += len(prefixes)
    return dict(audits), kept


def flag_abnormal_peers(
    audits: Dict[int, PeerAudit], config: SanitizationConfig
) -> Dict[int, str]:
    """Decide which peer ASNs to exclude entirely (paper A8.3)."""
    removed: Dict[int, str] = {}
    for peer_asn, audit in audits.items():
        if audit.records and (
            audit.corrupt_records / audit.records > config.max_corrupt_record_share
        ):
            removed[peer_asn] = "addpath"
            continue
        if audit.elements:
            if audit.private_asn_paths / audit.elements > config.max_private_asn_share:
                removed[peer_asn] = "private_asn"
                continue
            if audit.duplicate_elements / audit.elements > config.max_duplicate_share:
                removed[peer_asn] = "duplicates"
    return removed


def filter_prefixes(
    snapshot: RIBSnapshot,
    config: SanitizationConfig,
    report: SanitizationReport,
) -> Set[Prefix]:
    """Apply the visibility and length filters (§2.4.3)."""
    visibility = snapshot.prefix_visibility()
    report.prefixes_total = len(visibility)
    kept: Set[Prefix] = set()
    for prefix, (collectors, peer_ases) in visibility.items():
        if not config.keep_all_lengths:
            limit = config.max_prefix_length.get(prefix.family)
            if limit is not None and prefix.length > limit:
                report.prefixes_dropped_length += 1
                continue
        if (
            len(collectors) < config.min_collectors
            or len(peer_ases) < config.min_peer_ases
        ):
            report.prefixes_dropped_visibility += 1
            continue
        kept.add(prefix)
    report.prefixes_kept = len(kept)
    return kept


def sanitize(
    records: Iterable[RouteRecord],
    config: Optional[SanitizationConfig] = None,
) -> CleanDataset:
    """Run the full cleaning pipeline over raw RIB records."""
    if config is None:
        config = SanitizationConfig()

    tracer = get_tracer()
    with tracer.span("sanitize") as span:
        audits, kept_records = audit_peers(records)
        removed = flag_abnormal_peers(audits, config)

        snapshot = RIBSnapshot.from_records(
            record for record in kept_records if record.peer_asn not in removed
        )

        vantage_points = full_feed_peers(snapshot, config.fullfeed_ratio)

        report = SanitizationReport(removed_peers=removed, audits=audits)
        report.fullfeed_peers = len(vantage_points)
        report.partial_peers = len(snapshot.peers()) - len(vantage_points)

        prefixes = filter_prefixes(snapshot, config, report)

        if tracer.enabled:
            _trace_report(tracer, span, report, audits)

    return CleanDataset(
        snapshot=snapshot,
        vantage_points=vantage_points,
        prefixes=prefixes,
        report=report,
        config=config,
    )


def _trace_report(tracer, span, report: SanitizationReport,
                  audits: Dict[int, PeerAudit]) -> None:
    """Mirror one sanitize pass's report onto the tracer (obs layer)."""
    records = sum(audit.records for audit in audits.values())
    corrupt = sum(audit.corrupt_records for audit in audits.values())
    span.set(
        records=records,
        peers=len(audits),
        removed_peers=len(report.removed_peers),
        fullfeed_peers=report.fullfeed_peers,
        prefixes_kept=report.prefixes_kept,
    )
    tracer.count("sanitize.records", records)
    tracer.count("sanitize.corrupt_records", corrupt)
    tracer.count("sanitize.peers_audited", len(audits))
    for reason in sorted(set(report.removed_peers.values())):
        tracer.count(
            f"sanitize.removed_peers.{reason}",
            len(report.removed_by_reason(reason)),
        )
    tracer.count("sanitize.fullfeed_peers", report.fullfeed_peers)
    tracer.count("sanitize.partial_peers", report.partial_peers)
    tracer.count("sanitize.prefixes_kept", report.prefixes_kept)
    tracer.count(
        "sanitize.prefixes_dropped_length", report.prefixes_dropped_length
    )
    tracer.count(
        "sanitize.prefixes_dropped_visibility",
        report.prefixes_dropped_visibility,
    )
