"""Correlation of atom structure with BGP update records (§3.3, §4.2).

For every atom (or AS) with k prefixes and every update record that
contains at least one of them, the record either contains all k (case
2) or a strict subset (case 3).  ``Pr_full(k)`` is the share of case-2
records — high for atoms, low for ASes, which is the paper's evidence
that routing operates at the atom level.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.bgp.messages import RouteRecord
from repro.core.atoms import AtomSet
from repro.net.prefix import Prefix

#: Group kinds reported by the analysis (the four curves of Figure 3).
GROUP_ATOM = "atom"
GROUP_AS = "as"
GROUP_AS_MULTI_ATOM = "as_multi_atom"        # >= 1 atom with > 1 prefix
GROUP_AS_SINGLE_ATOMS = "as_single_atoms"    # every atom single-prefix


@dataclass
class GroupCounts:
    """N_all / N_partial for one prefix group."""

    size: int
    n_all: int = 0
    n_partial: int = 0


@dataclass
class UpdateCorrelation:
    """Per-group counters plus the aggregated Pr_full(k) curves."""

    groups: Dict[str, Dict[int, GroupCounts]] = field(
        default_factory=lambda: defaultdict(dict)
    )
    records_seen: int = 0

    def pr_full(self, kind: str, size: int) -> Optional[float]:
        """Pr_full(size) for one group kind; None when unobserved."""
        n_all = 0
        n_total = 0
        for counts in self.groups.get(kind, {}).values():
            if counts.size != size:
                continue
            n_all += counts.n_all
            n_total += counts.n_all + counts.n_partial
        if n_total == 0:
            return None
        return n_all / n_total

    def curve(self, kind: str, max_size: int = 7) -> List[Tuple[int, Optional[float]]]:
        """(k, Pr_full(k)) for k = 2..max_size (Figure 3 / 10 / 15)."""
        return [(k, self.pr_full(kind, k)) for k in range(2, max_size + 1)]


def _build_groups(atom_set: AtomSet) -> Dict[str, Dict[int, FrozenSet[Prefix]]]:
    """Prefix membership of every analysed group kind."""
    groups: Dict[str, Dict[int, FrozenSet[Prefix]]] = {
        GROUP_ATOM: {},
        GROUP_AS: {},
        GROUP_AS_MULTI_ATOM: {},
        GROUP_AS_SINGLE_ATOMS: {},
    }
    for atom in atom_set:
        groups[GROUP_ATOM][atom.atom_id] = atom.prefixes

    for origin, atoms in atom_set.atoms_by_origin().items():
        prefixes: Set[Prefix] = set()
        for atom in atoms:
            prefixes |= atom.prefixes
        frozen = frozenset(prefixes)
        groups[GROUP_AS][origin] = frozen
        if any(atom.size > 1 for atom in atoms):
            groups[GROUP_AS_MULTI_ATOM][origin] = frozen
        else:
            groups[GROUP_AS_SINGLE_ATOMS][origin] = frozen
    return groups


def update_correlation(
    atom_set: AtomSet,
    records: Iterable[RouteRecord],
    max_size: Optional[int] = None,
) -> UpdateCorrelation:
    """Count full/partial appearances of every group across records.

    ``max_size`` skips groups larger than the cut-off (the paper plots
    k <= 7, which covers 95 % of atoms).
    """
    membership = _build_groups(atom_set)

    # prefix -> [(kind, group_id)] reverse index, plus per-group sizes.
    reverse: Dict[Prefix, List[Tuple[str, int]]] = defaultdict(list)
    sizes: Dict[Tuple[str, int], int] = {}
    for kind, by_id in membership.items():
        for group_id, prefixes in by_id.items():
            if max_size is not None and len(prefixes) > max_size:
                continue
            sizes[(kind, group_id)] = len(prefixes)
            for prefix in prefixes:
                reverse[prefix].append((kind, group_id))

    result = UpdateCorrelation()
    for record in records:
        if record.record_type != "update":
            continue
        result.records_seen += 1
        prefixes = record.prefixes()
        touched: Dict[Tuple[str, int], int] = defaultdict(int)
        for prefix in prefixes:
            for key in reverse.get(prefix, ()):
                touched[key] += 1
        for key, hit_count in touched.items():
            kind, group_id = key
            size = sizes[key]
            table = result.groups[kind]
            counts = table.get(group_id)
            if counts is None:
                counts = GroupCounts(size=size)
                table[group_id] = counts
            if hit_count == size:
                counts.n_all += 1
            else:
                counts.n_partial += 1
    return result
