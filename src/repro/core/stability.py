"""Atom stability metrics (§3.5, §4.4).

* **CAM** — complete atom match: the share of atoms at t1 whose exact
  prefix set exists as an atom at t2;
* **MPM** — maximized prefix match: the share of prefixes that stay
  grouped under a greedy one-to-one atom mapping maximizing overlap.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Set, Tuple

from repro.core.atoms import AtomSet


def complete_atom_match(first: AtomSet, second: AtomSet) -> float:
    """CAM(t1, t2): fraction of t1 atoms present unchanged at t2."""
    if not len(first):
        return 0.0
    later_sets = second.prefix_sets()
    unchanged = sum(1 for atom in first if atom.prefixes in later_sets)
    return unchanged / len(first)


def greedy_atom_mapping(first: AtomSet, second: AtomSet) -> Dict[int, int]:
    """A one-to-one map (t1 atom id -> t2 atom id) greedily maximizing
    total prefix overlap.

    Candidate pairs are ranked by overlap size (descending) and taken
    while both endpoints are free — the standard greedy matching the
    paper describes.  Ties break deterministically by atom ids.
    """
    overlap: Dict[Tuple[int, int], int] = defaultdict(int)
    # AtomSet builds its prefix -> atom index at construction; reusing
    # it means the O(prefixes) lookup table hashes each prefix once per
    # snapshot lifetime instead of once per stability comparison.
    by_prefix_second = second.by_prefix
    for atom in first:
        for prefix in atom.prefixes:
            target = by_prefix_second.get(prefix)
            if target is not None:
                overlap[(atom.atom_id, target.atom_id)] += 1

    pairs = sorted(
        overlap.items(), key=lambda item: (-item[1], item[0][0], item[0][1])
    )
    mapping: Dict[int, int] = {}
    used_second: Set[int] = set()
    for (first_id, second_id), _count in pairs:
        if first_id in mapping or second_id in used_second:
            continue
        mapping[first_id] = second_id
        used_second.add(second_id)
    return mapping


def maximized_prefix_match(first: AtomSet, second: AtomSet) -> float:
    """MPM(t1, t2): prefix share retained by the greedy atom mapping."""
    total = sum(atom.size for atom in first)
    if not total:
        return 0.0
    second_atoms = {atom.atom_id: atom for atom in second}
    mapping = greedy_atom_mapping(first, second)
    kept = 0
    for atom in first:
        target_id = mapping.get(atom.atom_id)
        if target_id is None:
            continue
        kept += len(atom.prefixes & second_atoms[target_id].prefixes)
    return kept / total


def stability_pair(first: AtomSet, second: AtomSet) -> Tuple[float, float]:
    """(CAM, MPM) in one call — the shape of the paper's Table 3 cells."""
    return (
        complete_atom_match(first, second),
        maximized_prefix_match(first, second),
    )
