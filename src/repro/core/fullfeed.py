"""Full-feed peer inference (§2.4.2).

Collector projects do not track which peers send full tables, so the
paper infers it: a peer is *full-feed* when it shares data for more than
90 % of the maximum unique-prefix count any peer shares in the snapshot.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bgp.rib import PeerId, RIBSnapshot

DEFAULT_FULLFEED_RATIO = 0.9


def full_feed_threshold(snapshot: RIBSnapshot,
                        ratio: float = DEFAULT_FULLFEED_RATIO) -> int:
    """The prefix-count threshold: ``ratio`` x the maximum peer count.

    This is the quantity plotted in the paper's Figure 12 (up to the
    ratio factor: the figure shows the maximum itself).
    """
    counts = snapshot.prefix_count_by_peer()
    if not counts:
        return 0
    return int(max(counts.values()) * ratio)


def full_feed_peers(snapshot: RIBSnapshot,
                    ratio: float = DEFAULT_FULLFEED_RATIO) -> List[PeerId]:
    """Peers whose unique-prefix count clears the full-feed threshold."""
    counts = snapshot.prefix_count_by_peer()
    if not counts:
        return []
    threshold = max(counts.values()) * ratio
    return sorted(
        peer_id for peer_id, count in counts.items() if count > threshold
    )


def feed_summary(snapshot: RIBSnapshot,
                 ratio: float = DEFAULT_FULLFEED_RATIO) -> Dict[str, object]:
    """Threshold, full-feed and partial-feed peer counts (Fig. 12/13)."""
    counts = snapshot.prefix_count_by_peer()
    if not counts:
        return {"max_prefixes": 0, "threshold": 0, "full_feed": 0, "partial": 0}
    maximum = max(counts.values())
    threshold = maximum * ratio
    full = sum(1 for count in counts.values() if count > threshold)
    return {
        "max_prefixes": maximum,
        "threshold": int(threshold),
        "full_feed": full,
        "partial": len(counts) - full,
    }
