"""The paper's core contribution: policy-atom computation and analyses.

Pipeline order (mirroring §2.4):

1. :mod:`repro.core.sanitize` — remove abnormal peers (ADD-PATH damage,
   private-ASN leaks, duplicate floods), expand/drop AS_SETs, infer
   full-feed peers, filter prefixes by visibility and length;
2. :mod:`repro.core.atoms` — group prefixes by their AS-path vector
   across vantage points;
3. analyses — :mod:`statistics`, :mod:`update_correlation`,
   :mod:`formation`, :mod:`stability`, :mod:`splits`.
"""

from repro.core.atoms import AtomSet, PolicyAtom, compute_atoms
from repro.core.dynamics import DynamicsSummary, classify_updates
from repro.core.formation import (
    FORMATION_METHOD_II,
    FORMATION_METHOD_III,
    FormationResult,
    formation_distances,
)
from repro.core.fullfeed import full_feed_peers, full_feed_threshold
from repro.core.incremental import AtomIndex, IncrementalStats
from repro.core.intern import PathInternPool, pack_key, unpack_key
from repro.core.kernel import compute_atoms_reference
from repro.core.moas import moas_prefixes, moas_share
from repro.core.pipeline import AtomComputation, compute_policy_atoms
from repro.core.sanitize import (
    CleanDataset,
    SanitizationConfig,
    SanitizationReport,
    sanitize,
)
from repro.core.splits import SplitEvent, detect_splits
from repro.core.stability import complete_atom_match, maximized_prefix_match
from repro.core.statistics import GeneralStats, general_stats
from repro.core.update_correlation import UpdateCorrelation, update_correlation
from repro.core.visibility import VisibilityReport, visibility_report

__all__ = [
    "AtomComputation",
    "AtomIndex",
    "AtomSet",
    "CleanDataset",
    "DynamicsSummary",
    "FORMATION_METHOD_II",
    "FORMATION_METHOD_III",
    "FormationResult",
    "GeneralStats",
    "IncrementalStats",
    "PathInternPool",
    "PolicyAtom",
    "SanitizationConfig",
    "SanitizationReport",
    "SplitEvent",
    "UpdateCorrelation",
    "VisibilityReport",
    "classify_updates",
    "complete_atom_match",
    "compute_atoms",
    "compute_atoms_reference",
    "compute_policy_atoms",
    "detect_splits",
    "formation_distances",
    "full_feed_peers",
    "full_feed_threshold",
    "general_stats",
    "maximized_prefix_match",
    "moas_prefixes",
    "moas_share",
    "pack_key",
    "sanitize",
    "unpack_key",
    "update_correlation",
    "visibility_report",
]
