"""Formation distance of policy atoms (§3.4, §4.3).

The *splitting point* between two atoms of the same origin is the first
AS, counted from the origin, at which their AS paths diverge at some
vantage point; the *formation distance* of an atom is the largest
splitting point against any sibling atom — the distance at which it
becomes distinguishable from all of them.

Prepending handling follows the paper's discussion of three methods:

* **method (i)** — strip prepending before grouping (pass
  ``strip_prepending=True`` to ``compute_atoms``; distances then behave
  like method (iii) on the pre-stripped paths);
* **method (ii)** — group on raw paths, strip prepending before
  measuring distance; atom pairs whose stripped paths coincide are
  indistinguishable and are skipped;
* **method (iii)** — the adopted method: group on raw paths, count
  unique ASes when measuring, and attribute pure-prepending differences
  to the origin (distance 1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.atoms import AtomSet, PolicyAtom

FORMATION_METHOD_II = "ii"
FORMATION_METHOD_III = "iii"

#: Sentinel: the pair never diverges at any vantage point.
NO_SPLIT = 10**9

# Reasons an atom forms at distance 1 (§4.3 breakdown).
REASON_SINGLE = "single_atom_origin"
REASON_UNIQUE_PEERS = "unique_peer_set"
REASON_PREPEND = "prepending"
REASON_PATH = "path_divergence"


def split_point(
    stripped_a: Optional[Tuple[int, ...]],
    stripped_b: Optional[Tuple[int, ...]],
    raw_equal: bool,
    method: str = FORMATION_METHOD_III,
) -> int:
    """Splitting point at one vantage point, counted from the origin.

    ``stripped_*`` are origin-first unique-AS sequences (None = the atom
    is absent from this vantage point); ``raw_equal`` tells whether the
    unstripped paths coincide.  Returns 1-based distance, or
    ``NO_SPLIT`` when the paths do not distinguish the atoms here.
    """
    if stripped_a is None and stripped_b is None:
        return NO_SPLIT
    if stripped_a is None or stripped_b is None:
        return 1
    if stripped_a == stripped_b:
        if raw_equal:
            return NO_SPLIT
        # Pure prepending difference.
        return 1 if method == FORMATION_METHOD_III else NO_SPLIT
    shorter = min(len(stripped_a), len(stripped_b))
    for index in range(shorter):
        if stripped_a[index] != stripped_b[index]:
            return index + 1
    # One sequence is a proper prefix of the other: they diverge at the
    # first position the shorter one lacks.
    return shorter + 1


def _atom_profiles(atom: PolicyAtom) -> List[Tuple[Optional[Tuple[int, ...]], Optional[Tuple[int, ...]]]]:
    """Per-VP (stripped origin-first, raw origin-first) sequences."""
    profiles = []
    for path in atom.paths:
        if path is None:
            profiles.append((None, None))
        else:
            raw = tuple(reversed(path.asns()))
            stripped = tuple(reversed(path.strip_prepending()))
            profiles.append((stripped, raw))
    return profiles


def atom_pair_split(
    profiles_a: Sequence[Tuple[Optional[Tuple[int, ...]], Optional[Tuple[int, ...]]]],
    profiles_b: Sequence[Tuple[Optional[Tuple[int, ...]], Optional[Tuple[int, ...]]]],
    method: str = FORMATION_METHOD_III,
) -> int:
    """Overall splitting point: earliest divergence at any vantage point."""
    best = NO_SPLIT
    for (stripped_a, raw_a), (stripped_b, raw_b) in zip(profiles_a, profiles_b):
        point = split_point(stripped_a, stripped_b, raw_a == raw_b, method)
        if point < best:
            best = point
            if best == 1:
                break
    return best


@dataclass
class FormationResult:
    """Per-atom distances plus the paper's derived views."""

    method: str
    distances: Dict[int, int] = field(default_factory=dict)  # atom_id -> d
    reasons: Dict[int, str] = field(default_factory=dict)    # distance-1 only
    dmin_per_origin: Dict[int, int] = field(default_factory=dict)
    dmax_per_origin: Dict[int, int] = field(default_factory=dict)
    #: atom_id of atoms indistinguishable under method (ii)
    excluded: List[int] = field(default_factory=list)
    #: origins with a single atom (their atoms get distance 1)
    single_atom_origins: int = 0

    def distribution(self) -> Counter:
        """Counter: formation distance -> atom count."""
        return Counter(self.distances.values())

    def distance_shares(self, max_distance: int = 5) -> Dict[int, float]:
        """{distance: share of atoms}; the last bucket absorbs the tail."""
        counts = self.distribution()
        total = sum(counts.values())
        if not total:
            return {d: 0.0 for d in range(1, max_distance + 1)}
        shares: Dict[int, float] = {}
        for distance in range(1, max_distance + 1):
            if distance == max_distance:
                value = sum(c for d, c in counts.items() if d >= distance)
            else:
                value = counts.get(distance, 0)
            shares[distance] = value / total
        return shares

    def cumulative_shares(self, max_distance: int = 10) -> List[Tuple[int, float]]:
        """Cumulative '% atoms formed at distance <= d' (Figure 1)."""
        counts = self.distribution()
        total = sum(counts.values())
        points: List[Tuple[int, float]] = []
        running = 0
        for distance in range(1, max_distance + 1):
            running += counts.get(distance, 0)
            points.append((distance, running / total if total else 0.0))
        return points

    def shares_excluding_single_origins(self, atom_set: AtomSet,
                                        max_distance: int = 5) -> Dict[int, float]:
        """Distance shares over atoms from multi-atom origins only
        (the dashed lines of Figure 4 / 11)."""
        multi_atoms: List[int] = []
        for atoms in atom_set.atoms_by_origin().values():
            if len(atoms) > 1:
                multi_atoms.extend(atom.atom_id for atom in atoms)
        counts = Counter(
            self.distances[atom_id]
            for atom_id in multi_atoms
            if atom_id in self.distances
        )
        total = sum(counts.values())
        shares: Dict[int, float] = {}
        for distance in range(1, max_distance + 1):
            if distance == max_distance:
                value = sum(c for d, c in counts.items() if d >= distance)
            else:
                value = counts.get(distance, 0)
            shares[distance] = (value / total) if total else 0.0
        return shares

    def first_split_distribution(self) -> Counter:
        """d_min(o) distribution: '% first atoms split at distance'."""
        return Counter(self.dmin_per_origin.values())

    def last_split_distribution(self) -> Counter:
        """d_max(o) distribution: '% all atoms split at distance'."""
        return Counter(self.dmax_per_origin.values())

    def reason_shares(self) -> Dict[str, float]:
        """Breakdown of distance-1 atoms by cause (§4.3)."""
        total = len(self.distances)
        if not total:
            return {}
        counts = Counter(self.reasons.values())
        return {reason: count / total for reason, count in counts.items()}


def formation_distances(
    atom_set: AtomSet,
    method: str = FORMATION_METHOD_III,
    include_moas: bool = False,
) -> FormationResult:
    """Compute formation distances for every atom.

    An origin's lone atom has distance 1 by definition.  Atoms with a
    MOAS conflict are excluded by default, following Afek et al.'s
    treatment ("they do not consider atoms with MOAS conflict during one
    of their analysis", §2.4.3): a mixed-origin path vector would make
    the origin-anchored distance ill-defined.
    """
    if method not in (FORMATION_METHOD_II, FORMATION_METHOD_III):
        raise ValueError(f"unknown formation method {method!r}")
    result = FormationResult(method=method)

    profiles_cache: Dict[int, List] = {}

    def profiles_of(atom: PolicyAtom):
        cached = profiles_cache.get(atom.atom_id)
        if cached is None:
            cached = _atom_profiles(atom)
            profiles_cache[atom.atom_id] = cached
        return cached

    by_origin = atom_set.atoms_by_origin()
    if not include_moas:
        filtered: Dict[int, List[PolicyAtom]] = {}
        for origin, atoms in by_origin.items():
            kept = [atom for atom in atoms if len(atom.origins()) == 1]
            if kept:
                filtered[origin] = kept
        by_origin = filtered

    for origin, atoms in by_origin.items():
        if len(atoms) == 1:
            atom = atoms[0]
            previous = result.distances.get(atom.atom_id, 0)
            result.distances[atom.atom_id] = max(previous, 1)
            result.reasons.setdefault(atom.atom_id, REASON_SINGLE)
            result.single_atom_origins += 1
            result.dmin_per_origin[origin] = 1
            result.dmax_per_origin[origin] = 1
            continue

        per_atom_distance: Dict[int, int] = {}
        per_atom_reason: Dict[int, str] = {}
        for index, atom in enumerate(atoms):
            profiles_a = profiles_of(atom)
            worst = 0
            reason = REASON_PATH
            comparable = False
            for jndex, other in enumerate(atoms):
                if jndex == index:
                    continue
                split = atom_pair_split(profiles_a, profiles_of(other), method)
                if split >= NO_SPLIT:
                    continue  # indistinguishable pair (method ii)
                comparable = True
                if split > worst:
                    worst = split
            if not comparable:
                result.excluded.append(atom.atom_id)
                continue
            per_atom_distance[atom.atom_id] = worst
            if worst == 1:
                # Attribute the distance-1 cause: a missing path at some
                # VP (unique peer set) outranks pure prepending.
                has_empty = any(
                    (pa[0] is None) != (pb[0] is None)
                    for other in atoms
                    if other.atom_id != atom.atom_id
                    for pa, pb in zip(profiles_a, profiles_of(other))
                )
                per_atom_reason[atom.atom_id] = (
                    REASON_UNIQUE_PEERS if has_empty else REASON_PREPEND
                )

        for atom_id, distance in per_atom_distance.items():
            previous = result.distances.get(atom_id, 0)
            result.distances[atom_id] = max(previous, distance)
            if distance == 1 and atom_id in per_atom_reason:
                result.reasons.setdefault(atom_id, per_atom_reason[atom_id])
        if per_atom_distance:
            result.dmin_per_origin[origin] = min(per_atom_distance.values())
            result.dmax_per_origin[origin] = max(per_atom_distance.values())

    # Clean up reasons for atoms whose final distance exceeded 1 (MOAS
    # atoms can gain distance under a second origin).
    result.reasons = {
        atom_id: reason
        for atom_id, reason in result.reasons.items()
        if result.distances.get(atom_id) == 1
    }
    return result
