"""Prefix visibility analysis (§2.3-§2.4.3 background).

The paper motivates its filtering with two observations about modern
collection: "a significant share of prefixes are only visible by one
or two BGP collector peers and many peers only share a partial routing
table".  This module quantifies both, giving studies the evidence base
for choosing visibility thresholds.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bgp.rib import RIBSnapshot


@dataclass(frozen=True)
class VisibilityReport:
    """Distributional view of prefix visibility in one snapshot."""

    #: number of peer ASes seeing a prefix -> prefix count
    by_peer_ases: Dict[int, int]
    #: number of collectors seeing a prefix -> prefix count
    by_collectors: Dict[int, int]
    total_prefixes: int
    total_peers: int
    total_collectors: int

    def share_seen_by_at_most(self, peer_ases: int) -> float:
        """Share of prefixes visible to at most ``peer_ases`` peer ASes."""
        if not self.total_prefixes:
            return 0.0
        count = sum(
            prefixes
            for seen_by, prefixes in self.by_peer_ases.items()
            if seen_by <= peer_ases
        )
        return count / self.total_prefixes

    def share_globally_visible(self, threshold_share: float = 0.8) -> float:
        """Share of prefixes seen by >= ``threshold_share`` of all peers."""
        if not self.total_prefixes or not self.total_peers:
            return 0.0
        needed = threshold_share * self.total_peers
        count = sum(
            prefixes
            for seen_by, prefixes in self.by_peer_ases.items()
            if seen_by >= needed
        )
        return count / self.total_prefixes

    def peer_as_cdf(self) -> List[Tuple[int, float]]:
        """Ascending (peer count, cumulative prefix share)."""
        points: List[Tuple[int, float]] = []
        running = 0
        for seen_by in sorted(self.by_peer_ases):
            running += self.by_peer_ases[seen_by]
            points.append((seen_by, running / self.total_prefixes))
        return points


def visibility_report(snapshot: RIBSnapshot) -> VisibilityReport:
    """Compute the visibility distributions for one snapshot."""
    by_peers: Counter = Counter()
    by_collectors: Counter = Counter()
    visibility = snapshot.prefix_visibility()
    for collectors, peer_ases in visibility.values():
        by_peers[len(peer_ases)] += 1
        by_collectors[len(collectors)] += 1
    peer_ases_total = {asn for _, asn, _ in snapshot.peers()}
    return VisibilityReport(
        by_peer_ases=dict(by_peers),
        by_collectors=dict(by_collectors),
        total_prefixes=len(visibility),
        total_peers=len(peer_ases_total),
        total_collectors=len(snapshot.collectors()),
    )
