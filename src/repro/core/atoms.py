"""Policy-atom computation.

A policy atom (Broido & Claffy 2001; Afek et al. 2002) is a maximal
group of prefixes that share the same AS path at *every* vantage point.
Prefixes absent from a vantage point's table carry an "empty" path
there, so a prefix missing at any VP can only group with prefixes
missing at the same VPs (§2.3).

``compute_atoms`` implements the definition directly: each prefix's key
is its path vector across the ordered vantage-point list, and atoms are
the equivalence classes of that key.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.rib import PeerId, RIBSnapshot
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs import get_tracer


class PolicyAtom:
    """One atom: its prefixes plus the shared path vector.

    ``paths[i]`` is the AS path seen by ``vantage_points[i]`` of the
    owning :class:`AtomSet` (None when the atom's prefixes are not in
    that vantage point's table).
    """

    __slots__ = ("atom_id", "prefixes", "paths")

    def __init__(self, atom_id: int, prefixes: FrozenSet[Prefix],
                 paths: Tuple[Optional[ASPath], ...]):
        self.atom_id = atom_id
        self.prefixes = prefixes
        self.paths = paths

    @property
    def size(self) -> int:
        return len(self.prefixes)

    def origins(self) -> Set[int]:
        """Origin ASNs across the path vector (>1 only for MOAS)."""
        found: Set[int] = set()
        for path in self.paths:
            if path is not None and path.origin is not None:
                found.add(path.origin)
        return found

    @property
    def origin(self) -> Optional[int]:
        """The unique origin AS, or None when empty/ambiguous."""
        origins = self.origins()
        if len(origins) == 1:
            return next(iter(origins))
        return None

    def visible_at(self) -> Tuple[int, ...]:
        """Indices of vantage points that carry this atom."""
        return tuple(i for i, path in enumerate(self.paths) if path is not None)

    def __len__(self) -> int:
        return len(self.prefixes)

    def __repr__(self) -> str:
        return f"PolicyAtom(id={self.atom_id}, size={self.size}, origin={self.origin})"


class AtomSet:
    """All atoms computed from one snapshot, with lookup indexes."""

    def __init__(self, atoms: List[PolicyAtom], vantage_points: List[PeerId],
                 timestamp: int = 0):
        self.atoms = atoms
        self.vantage_points = vantage_points
        self.timestamp = timestamp
        self.by_prefix: Dict[Prefix, PolicyAtom] = {}
        for atom in atoms:
            for prefix in atom.prefixes:
                self.by_prefix[prefix] = atom

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self):
        return iter(self.atoms)

    def prefixes(self) -> Set[Prefix]:
        """All prefixes across atoms."""
        return set(self.by_prefix)

    def prefix_count(self) -> int:
        """Total prefixes across atoms."""
        return len(self.by_prefix)

    def atoms_by_origin(self) -> Dict[int, List[PolicyAtom]]:
        """Atoms grouped by (unique) origin AS; MOAS atoms appear under
        each of their origins, matching the paper's per-origin analyses."""
        grouped: Dict[int, List[PolicyAtom]] = defaultdict(list)
        for atom in self.atoms:
            for origin in atom.origins():
                grouped[origin].append(atom)
        return dict(grouped)

    def origin_count(self) -> int:
        """Number of distinct origin ASes."""
        return len(self.atoms_by_origin())

    def atom_of(self, prefix: Prefix) -> Optional[PolicyAtom]:
        """The atom containing ``prefix``, or None."""
        return self.by_prefix.get(prefix)

    def prefix_sets(self) -> Set[FrozenSet[Prefix]]:
        """The atoms' prefix sets (the CAM comparison key)."""
        return {atom.prefixes for atom in self.atoms}

    def __repr__(self) -> str:
        return (
            f"AtomSet({len(self.atoms)} atoms, {self.prefix_count()} prefixes, "
            f"{len(self.vantage_points)} VPs)"
        )


#: Cache-miss sentinel: normalisation legitimately maps paths to None.
_UNSET = object()


def _prepare_path(path: Optional[ASPath], expand_singletons: bool,
                  strip_prepending: bool) -> Optional[ASPath]:
    """Apply the configured path normalisations; None drops the route."""
    if path is None:
        return None
    if expand_singletons and path.has_set:
        path = path.expand_singleton_sets()
        if path.has_set:
            return None  # multi-element AS_SET: route removed (§2.4.4)
    if strip_prepending:
        path = ASPath.from_asns(path.strip_prepending())
    return path


def compute_atoms(
    snapshot: RIBSnapshot,
    vantage_points: Optional[Sequence[PeerId]] = None,
    prefixes: Optional[Iterable[Prefix]] = None,
    expand_singleton_sets: bool = True,
    strip_prepending: bool = False,
) -> AtomSet:
    """Group prefixes into policy atoms.

    Parameters
    ----------
    snapshot:
        The cross-peer RIB state.
    vantage_points:
        Peers to use (default: all peers in the snapshot).  Pass the
        full-feed list from the sanitizer for paper-faithful results.
    prefixes:
        Prefix universe to group (default: every prefix any chosen VP
        carries).  Pass the sanitizer's filtered set.
    expand_singleton_sets:
        Expand one-element AS_SETs; drop paths with larger sets.
    strip_prepending:
        Remove prepending *before* grouping — formation-distance method
        (i), kept for the Figure 1 comparison.  The paper's method (iii)
        groups on raw paths (the default).
    """
    if vantage_points is None:
        vantage_points = sorted(snapshot.peers())
    else:
        vantage_points = list(vantage_points)

    if prefixes is None:
        universe: Set[Prefix] = set()
        for peer_id in vantage_points:
            table = snapshot.table(peer_id)
            if table is not None:
                universe |= table.prefixes()
        prefix_list = sorted(universe, key=Prefix.key)
    else:
        prefix_list = sorted(set(prefixes), key=Prefix.key)

    # Path vector per prefix.  ASPath objects are shared across prefixes
    # of a unit, so the per-prefix key is a tuple of references.  The
    # normalisation cache is keyed on the (hashable) ASPath itself:
    # keying on id() would go stale if attribute objects were ever built
    # on access (ids are reused after gc), and cost two lookups per hit.
    tables = [snapshot.table(peer_id) for peer_id in vantage_points]
    groups: Dict[Tuple, List[Prefix]] = defaultdict(list)
    normalise_cache: Dict[ASPath, Optional[ASPath]] = {}
    cache_hits = 0
    cache_misses = 0

    tracer = get_tracer()
    with tracer.span("atoms") as span:
        for prefix in prefix_list:
            vector: List[Optional[ASPath]] = []
            for table in tables:
                attributes = table.get(prefix) if table is not None else None
                if attributes is None:
                    vector.append(None)
                    continue
                raw = attributes.as_path
                cached = normalise_cache.get(raw, _UNSET)
                if cached is _UNSET:
                    cached = _prepare_path(raw, expand_singleton_sets, strip_prepending)
                    normalise_cache[raw] = cached
                    cache_misses += 1
                else:
                    cache_hits += 1
                vector.append(cached)
            if all(path is None for path in vector):
                continue  # prefix effectively unseen after normalisation
            groups[tuple(vector)].append(prefix)

        atoms = [
            PolicyAtom(atom_id, frozenset(members), vector)
            for atom_id, (vector, members) in enumerate(groups.items())
        ]
        if tracer.enabled:
            span.set(
                prefixes=len(prefix_list),
                vantage_points=len(vantage_points),
                atoms=len(atoms),
            )
            tracer.count("atoms.prefixes", len(prefix_list))
            tracer.count("atoms.atoms", len(atoms))
            tracer.count("atoms.normalise_cache_hits", cache_hits)
            tracer.count("atoms.normalise_cache_misses", cache_misses)
    return AtomSet(atoms, vantage_points, snapshot.timestamp)
