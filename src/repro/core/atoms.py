"""Policy-atom computation.

A policy atom (Broido & Claffy 2001; Afek et al. 2002) is a maximal
group of prefixes that share the same AS path at *every* vantage point.
Prefixes absent from a vantage point's table carry an "empty" path
there, so a prefix missing at any VP can only group with prefixes
missing at the same VPs (§2.3).

``compute_atoms`` implements the definition: each prefix's key is its
path vector across the ordered vantage-point list, and atoms are the
equivalence classes of that key.  The grouping itself runs through the
columnar kernel (:mod:`repro.core.kernel`): paths are interned to dense
ids and each prefix's id vector packed into a fixed-width bytes key, so
the hot dict pass hashes compact byte strings instead of tuples of
:class:`~repro.net.aspath.ASPath` objects.  Output is value-identical
to the direct implementation (kept as
:func:`~repro.core.kernel.compute_atoms_reference`), atom ids included.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.bgp.rib import PeerId, RIBSnapshot
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.intern import PathInternPool


class PolicyAtom:
    """One atom: its prefixes plus the shared path vector.

    ``paths[i]`` is the AS path seen by ``vantage_points[i]`` of the
    owning :class:`AtomSet` (None when the atom's prefixes are not in
    that vantage point's table).
    """

    __slots__ = ("atom_id", "prefixes", "paths")

    def __init__(self, atom_id: int, prefixes: FrozenSet[Prefix],
                 paths: Tuple[Optional[ASPath], ...]):
        self.atom_id = atom_id
        self.prefixes = prefixes
        self.paths = paths

    @property
    def size(self) -> int:
        return len(self.prefixes)

    def origins(self) -> Set[int]:
        """Origin ASNs across the path vector (>1 only for MOAS)."""
        found: Set[int] = set()
        for path in self.paths:
            if path is not None and path.origin is not None:
                found.add(path.origin)
        return found

    @property
    def origin(self) -> Optional[int]:
        """The unique origin AS, or None when empty/ambiguous."""
        origins = self.origins()
        if len(origins) == 1:
            return next(iter(origins))
        return None

    def visible_at(self) -> Tuple[int, ...]:
        """Indices of vantage points that carry this atom."""
        return tuple(i for i, path in enumerate(self.paths) if path is not None)

    def __len__(self) -> int:
        return len(self.prefixes)

    def __repr__(self) -> str:
        return f"PolicyAtom(id={self.atom_id}, size={self.size}, origin={self.origin})"


class AtomSet:
    """All atoms computed from one snapshot, with lookup indexes."""

    def __init__(self, atoms: List[PolicyAtom], vantage_points: List[PeerId],
                 timestamp: int = 0):
        self.atoms = atoms
        self.vantage_points = vantage_points
        self.timestamp = timestamp
        self.by_prefix: Dict[Prefix, PolicyAtom] = {}
        for atom in atoms:
            for prefix in atom.prefixes:
                self.by_prefix[prefix] = atom
        #: lazily built atoms_by_origin() result; AtomSet is immutable
        #: after construction, so the grouping never goes stale
        self._by_origin: Optional[Dict[int, List[PolicyAtom]]] = None

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self):
        return iter(self.atoms)

    def prefixes(self) -> Set[Prefix]:
        """All prefixes across atoms."""
        return set(self.by_prefix)

    def prefix_count(self) -> int:
        """Total prefixes across atoms."""
        return len(self.by_prefix)

    def atoms_by_origin(self) -> Dict[int, List[PolicyAtom]]:
        """Atoms grouped by (unique) origin AS; MOAS atoms appear under
        each of their origins, matching the paper's per-origin analyses.

        Memoised: the grouping walks every atom's path vector, several
        per-origin analyses (``origin_count`` included) call it
        repeatedly, and the atom set never changes after construction.
        Callers share one dict — treat it as read-only.
        """
        if self._by_origin is None:
            grouped: Dict[int, List[PolicyAtom]] = defaultdict(list)
            for atom in self.atoms:
                for origin in atom.origins():
                    grouped[origin].append(atom)
            self._by_origin = dict(grouped)
        return self._by_origin

    def origin_count(self) -> int:
        """Number of distinct origin ASes."""
        return len(self.atoms_by_origin())

    def atom_of(self, prefix: Prefix) -> Optional[PolicyAtom]:
        """The atom containing ``prefix``, or None."""
        return self.by_prefix.get(prefix)

    def prefix_sets(self) -> Set[FrozenSet[Prefix]]:
        """The atoms' prefix sets (the CAM comparison key)."""
        return {atom.prefixes for atom in self.atoms}

    def __repr__(self) -> str:
        return (
            f"AtomSet({len(self.atoms)} atoms, {self.prefix_count()} prefixes, "
            f"{len(self.vantage_points)} VPs)"
        )


def _prepare_path(path: Optional[ASPath], expand_singletons: bool,
                  strip_prepending: bool) -> Optional[ASPath]:
    """Apply the configured path normalisations; None drops the route."""
    if path is None:
        return None
    if expand_singletons and path.has_set:
        path = path.expand_singleton_sets()
        if path.has_set:
            return None  # multi-element AS_SET: route removed (§2.4.4)
    if strip_prepending:
        path = ASPath.from_asns(path.strip_prepending())
    return path


def compute_atoms(
    snapshot: RIBSnapshot,
    vantage_points: Optional[Sequence[PeerId]] = None,
    prefixes: Optional[Iterable[Prefix]] = None,
    expand_singleton_sets: bool = True,
    strip_prepending: bool = False,
    pool: Optional["PathInternPool"] = None,
) -> AtomSet:
    """Group prefixes into policy atoms.

    Parameters
    ----------
    snapshot:
        The cross-peer RIB state.
    vantage_points:
        Peers to use (default: all peers in the snapshot).  Pass the
        full-feed list from the sanitizer for paper-faithful results.
    prefixes:
        Prefix universe to group (default: every prefix any chosen VP
        carries).  Pass the sanitizer's filtered set.
    expand_singleton_sets:
        Expand one-element AS_SETs; drop paths with larger sets.
    strip_prepending:
        Remove prepending *before* grouping — formation-distance method
        (i), kept for the Figure 1 comparison.  The paper's method (iii)
        groups on raw paths (the default).
    pool:
        Optional shared :class:`~repro.core.intern.PathInternPool`;
        successive snapshots fed through one pool intern (and hash)
        each normalised path once for the pool's lifetime.  Its
        normalisation options must match the keyword flags.
    """
    from repro.core.kernel import columnar_atoms

    return columnar_atoms(
        snapshot,
        vantage_points=vantage_points,
        prefixes=prefixes,
        expand_singleton_sets=expand_singleton_sets,
        strip_prepending=strip_prepending,
        pool=pool,
    )
