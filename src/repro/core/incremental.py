"""Incremental atom maintenance between snapshots.

A full :func:`~repro.core.atoms.compute_atoms` pass costs
O(prefixes x VPs) dict lookups per instant, yet between the paper's
same-quarter instants only a small fraction of prefixes change — VP
path vectors are highly redundant across time (Alfroy et al.,
"Measuring Internet Routing from the Most Valuable Points").
:class:`AtomIndex` exploits that redundancy: it keeps the interned
path-vector key of every prefix, collects the *dirty* prefix set from
:class:`~repro.bgp.rib.RIBSnapshot` mutation hooks as an update stream
is applied, and on :meth:`refresh` recomputes keys only for dirty
prefixes, repairing the affected equivalence classes in place.

Interning (:class:`~repro.core.intern.PathInternPool`, shared with the
columnar :mod:`~repro.core.kernel`) gives two properties the hot path
leans on:

* a normalised path or a path vector hashes **once**, when first seen;
* equal keys are the *same object*, so snapshot-to-snapshot
  comparisons — "did this prefix's key change?" — are pointer
  comparisons (``is``), not tuple hashing.

:meth:`AtomIndex.atoms` yields an :class:`~repro.core.atoms.AtomSet`
value-identical to a from-scratch ``compute_atoms`` over the same
snapshot, vantage points and prefix universe — including atom ids,
because groups are emitted in first-prefix order, exactly the order
the batch enumeration discovers them in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.messages import RouteRecord
from repro.bgp.rib import PeerId, RIBSnapshot
from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.intern import PathInternPool
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs import get_tracer

__all__ = ["AtomIndex", "IncrementalStats", "PathInternPool"]


@dataclass
class IncrementalStats:
    """Counters behind the engine's incremental metrics."""

    #: per-prefix key (re)computations, including the initial build
    key_recomputations: int = 0
    #: prefixes marked dirty by mutation hooks / universe changes
    dirty_marked: int = 0
    #: refresh passes that had work to do
    refreshes: int = 0
    #: full rebuilds (initial build, vantage-point changes)
    rebuilds: int = 0
    #: dirty-set size of each refresh, in order
    dirty_sizes: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of the counters (metrics payloads)."""
        return {
            "key_recomputations": self.key_recomputations,
            "dirty_marked": self.dirty_marked,
            "refreshes": self.refreshes,
            "rebuilds": self.rebuilds,
            "dirty_sizes": list(self.dirty_sizes),
        }


class AtomIndex:
    """Incrementally maintained policy-atom equivalence classes.

    The index owns (a reference to) one evolving :class:`RIBSnapshot`.
    It registers a mutation listener so that every announce/withdraw at
    a chosen vantage point marks the touched prefix dirty;
    :meth:`refresh` then recomputes keys for the dirty set only and
    repairs the affected groups.  Prefixes never touched keep their
    interned key — no lookups, no hashing.

    Parameters mirror :func:`~repro.core.atoms.compute_atoms`: when
    ``prefixes`` is given the universe is fixed (use
    :meth:`set_universe` to move it); otherwise the universe follows
    the vantage points' tables dynamically.
    """

    def __init__(
        self,
        snapshot: RIBSnapshot,
        vantage_points: Optional[Sequence[PeerId]] = None,
        prefixes: Optional[Iterable[Prefix]] = None,
        expand_singleton_sets: bool = True,
        strip_prepending: bool = False,
        pool: Optional[PathInternPool] = None,
        stats: Optional[IncrementalStats] = None,
    ):
        if pool is not None and (
            pool.expand_singleton_sets != expand_singleton_sets
            or pool.strip_prepending != strip_prepending
        ):
            raise ValueError("intern pool normalisation options mismatch")
        self.snapshot = snapshot
        if vantage_points is None:
            vantage_points = sorted(snapshot.peers())
        self.vantage_points: List[PeerId] = list(vantage_points)
        self._vp_set: Set[PeerId] = set(self.vantage_points)
        self.pool = pool if pool is not None else PathInternPool(
            expand_singleton_sets, strip_prepending
        )
        # Passing the predecessor's stats (like its pool) keeps the
        # counters continuous across index rebuilds.
        self.stats = stats if stats is not None else IncrementalStats()
        self._universe: Optional[Set[Prefix]] = (
            set(prefixes) if prefixes is not None else None
        )
        #: prefix -> interned vector (only prefixes with a visible path)
        self._keys: Dict[Prefix, Tuple] = {}
        #: interned vector -> member prefixes
        self._groups: Dict[Tuple, Set[Prefix]] = {}
        self._dirty: Set[Prefix] = set()
        snapshot.add_mutation_listener(self._on_mutation)
        self._rebuild()

    # ------------------------------------------------------------------
    # Dirty-set collection
    # ------------------------------------------------------------------

    def _on_mutation(self, peer_id: PeerId, prefix: Prefix) -> None:
        if peer_id not in self._vp_set:
            return
        if self._universe is not None and prefix not in self._universe:
            return
        # Count unique dirty prefixes, not mutation events: a prefix
        # touched twice inside one window is one unit of refresh work,
        # and the dirty-set economy metrics must say so (the set itself
        # always deduplicated; the counter used to double-count).
        if prefix not in self._dirty:
            self._dirty.add(prefix)
            self.stats.dirty_marked += 1

    def apply_record(self, record: RouteRecord) -> None:
        """Fold one update record into the snapshot (hooks collect the
        dirty prefixes); convenience for update-stream driven use."""
        self.snapshot.apply_record(record)

    def apply_records(self, records: Iterable[RouteRecord]) -> None:
        """Fold an update stream into the snapshot."""
        for record in records:
            self.snapshot.apply_record(record)

    @property
    def dirty_count(self) -> int:
        """Prefixes currently awaiting recomputation."""
        return len(self._dirty)

    # ------------------------------------------------------------------
    # Key maintenance
    # ------------------------------------------------------------------

    def _compute_key(self, prefix: Prefix,
                     tables: Sequence) -> Optional[Tuple]:
        """The interned path-vector key, or None when unseen everywhere."""
        parts: List[Optional[ASPath]] = []
        visible = False
        pool_path = self.pool.path
        for table in tables:
            attributes = table.get(prefix) if table is not None else None
            if attributes is None:
                parts.append(None)
                continue
            path = pool_path(attributes.as_path)
            parts.append(path)
            if path is not None:
                visible = True
        if not visible:
            return None
        return self.pool.vector(parts)

    def _tables(self) -> List:
        # Resolved per refresh: a VP's table can be created lazily by
        # the first announcement routed through the snapshot.
        return [self.snapshot.table(vp) for vp in self.vantage_points]

    def _apply_key(self, prefix: Prefix, key: Optional[Tuple]) -> None:
        old = self._keys.get(prefix)
        if old is key:  # pointer comparison — keys are interned
            return
        if old is not None:
            members = self._groups[old]
            members.discard(prefix)
            if not members:
                del self._groups[old]
        if key is None:
            self._keys.pop(prefix, None)
        else:
            self._keys[prefix] = key
            self._groups.setdefault(key, set()).add(prefix)

    def _rebuild(self) -> None:
        """Full recomputation (initial build, VP changes)."""
        tracer = get_tracer()
        with tracer.span("atoms-rebuild") as span:
            self._keys.clear()
            self._groups.clear()
            self._dirty.clear()
            tables = self._tables()
            if self._universe is not None:
                universe: Iterable[Prefix] = self._universe
            else:
                seen: Set[Prefix] = set()
                for table in tables:
                    if table is not None:
                        seen |= table.prefixes()
                universe = seen
            recomputed = 0
            for prefix in universe:
                key = self._compute_key(prefix, tables)
                recomputed += 1
                if key is not None:
                    self._keys[prefix] = key
                    self._groups.setdefault(key, set()).add(prefix)
            self.stats.key_recomputations += recomputed
            self.stats.rebuilds += 1
            if tracer.enabled:
                span.set(
                    prefixes=recomputed,
                    groups=len(self._groups),
                    intern_pool=len(self.pool),
                )
                tracer.count("incremental.rebuilds")
                tracer.count("incremental.key_recomputations", recomputed)

    def refresh(self) -> int:
        """Recompute keys for the dirty set; returns its size."""
        return len(self._refresh(collect=None))

    def refresh_delta(self) -> Dict[Prefix, Optional[Tuple]]:
        """Refresh and return the key *changes* the dirty set caused.

        The mapping holds one entry per dirty prefix whose interned key
        actually moved: the new key, or None when the prefix lost its
        last visible path.  Prefixes whose recomputed key is pointer-
        identical to the old one are omitted — exactly the work
        :meth:`_apply_key` skipped.  Consumers that mirror this index's
        groups elsewhere (the live pipeline's cross-shard merge) replay
        the delta instead of re-reading every key.
        """
        delta: Dict[Prefix, Optional[Tuple]] = {}
        self._refresh(collect=delta)
        return delta

    def _refresh(
        self, collect: Optional[Dict[Prefix, Optional[Tuple]]]
    ) -> Set[Prefix]:
        """Shared refresh walk; fills ``collect`` with key changes."""
        if not self._dirty:
            return set()
        tracer = get_tracer()
        with tracer.span("atoms-refresh") as span:
            tables = self._tables()
            dirty = self._dirty
            self._dirty = set()
            for prefix in dirty:
                key = self._compute_key(prefix, tables)
                self.stats.key_recomputations += 1
                if collect is not None and self._keys.get(prefix) is not key:
                    collect[prefix] = key
                self._apply_key(prefix, key)
            self.stats.refreshes += 1
            self.stats.dirty_sizes.append(len(dirty))
            if tracer.enabled:
                span.set(
                    dirty=len(dirty),
                    groups=len(self._groups),
                    intern_pool=len(self.pool),
                )
                tracer.count("incremental.refreshes")
                tracer.count("incremental.dirty_refreshed", len(dirty))
                tracer.count("incremental.key_recomputations", len(dirty))
        return dirty

    # ------------------------------------------------------------------
    # Universe and snapshot synchronisation
    # ------------------------------------------------------------------

    def set_universe(self, prefixes: Iterable[Prefix]) -> None:
        """Move the fixed prefix universe; only the symmetric
        difference is (re)computed."""
        new = set(prefixes)
        if self._universe is None:
            raise ValueError(
                "index was built with a dynamic universe; "
                "rebuild with an explicit prefix set instead"
            )
        for prefix in self._universe - new:
            self._apply_key(prefix, None)
            self._dirty.discard(prefix)
        added = new - self._universe
        self._universe = new
        self._dirty |= added
        self.stats.dirty_marked += len(added)

    def sync_to(self, target: RIBSnapshot,
                prefixes: Optional[Iterable[Prefix]] = None) -> None:
        """Mutate the owned snapshot until its vantage-point tables
        equal ``target``'s, deriving the update stream as a diff.

        Only routes whose attributes actually changed are touched, so
        the dirty set — and the work :meth:`refresh` does — is
        proportional to the churn between the two instants, not to
        table size.  Interned paths make the per-route comparison a
        pointer check in the common unchanged case.
        """
        pool_path = self.pool.path
        for vp in self.vantage_points:
            mine = self.snapshot.table(vp)
            theirs = target.table(vp)
            my_routes = mine._routes if mine is not None else {}
            their_routes = theirs._routes if theirs is not None else {}
            for prefix, attributes in their_routes.items():
                old = my_routes.get(prefix)
                if old is not None and (
                    old.as_path is attributes.as_path
                    or pool_path(old.as_path) is pool_path(attributes.as_path)
                ):
                    continue
                self.snapshot.announce(vp, prefix, attributes)
            if my_routes:
                gone = [p for p in my_routes if p not in their_routes]
                for prefix in gone:
                    self.snapshot.withdraw(vp, prefix)
        if target.timestamp > self.snapshot.timestamp:
            self.snapshot.timestamp = target.timestamp
        if prefixes is not None:
            self.set_universe(prefixes)

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------

    def atoms(self) -> AtomSet:
        """The current :class:`AtomSet` (refreshes pending work first).

        Identical — atom ids included — to ``compute_atoms`` over the
        same snapshot/VPs/universe: batch enumeration discovers groups
        in order of their first (smallest) prefix, which is the order
        groups are emitted here.
        """
        self.refresh()
        ordered = sorted(
            self._groups.items(),
            key=lambda item: Prefix.key(min(item[1], key=Prefix.key)),
        )
        atoms = [
            PolicyAtom(atom_id, frozenset(members), vector)
            for atom_id, (vector, members) in enumerate(ordered)
        ]
        return AtomSet(atoms, list(self.vantage_points), self.snapshot.timestamp)

    def detach(self) -> None:
        """Unregister from the snapshot's mutation hooks."""
        self.snapshot.remove_mutation_listener(self._on_mutation)

    def __len__(self) -> int:
        return len(self._groups)

    def __repr__(self) -> str:
        return (
            f"AtomIndex({len(self._groups)} groups, {len(self._keys)} prefixes, "
            f"{len(self.vantage_points)} VPs, {len(self._dirty)} dirty)"
        )
