"""Shared path interning: canonical normalised paths, dense ids, packed keys.

Every consumer of AS-path equality — :func:`~repro.core.atoms.compute_atoms`
(via the columnar kernel), the incremental :class:`~repro.core.incremental.AtomIndex`,
and the stability metrics that compare the resulting atom sets — pays for
hashing the same normalised :class:`~repro.net.aspath.ASPath` values over
and over unless the work is shared.  :class:`PathInternPool` centralises
that work:

* ``path(raw)`` maps a raw attribute path to its canonical normalised
  instance (or None when normalisation drops the route, §2.4.4); equal
  raw paths — even distinct objects — share one result, so afterwards
  identity stands in for equality;
* ``path_id(raw)`` goes one step further and maps the canonical path to
  a **dense integer id**.  Id :data:`ABSENT_ID` (0) is reserved for
  "absent": a prefix unseen at a vantage point and a path normalisation
  removed both map to 0, exactly the two cases the atom definition
  treats as "no route" (§2.3);
* ``vector(parts)`` interns whole path-vector tuples (the
  :class:`AtomIndex` key representation).

Dense ids enable the columnar kernel's *packed keys*: a prefix's path
vector across the ordered vantage-point list becomes an
``array('I')``-backed fixed-width byte string (:func:`pack_key`), so
grouping a snapshot into atoms is one dict pass over compact bytes
objects — hashed and compared in C — instead of per-prefix tuples of
Python objects.  :func:`unpack_key` restores the id vector and
:meth:`PathInternPool.path_for_id` the canonical paths, so nothing is
lossy: packed-key equality holds exactly when the normalised path
vectors are equal (fuzz-tested in ``tests/core/test_intern.py``).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import atoms as _atoms
from repro.net.aspath import ASPath

#: The reserved path id meaning "no route at this vantage point".
ABSENT_ID = 0

#: ``array`` typecode backing packed keys: a fixed-width unsigned int.
#: ``"I"`` is 4 bytes on every mainstream platform; fall back to ``"L"``
#: should a platform make it narrower (ids must not overflow).
ID_TYPECODE = "I" if array("I").itemsize >= 4 else "L"

#: Bytes per path id inside a packed key.
KEY_WIDTH = array(ID_TYPECODE).itemsize

#: Cache-miss sentinel (normalisation legitimately maps paths to None).
_UNSET = object()


def pack_key(ids: Sequence[int]) -> bytes:
    """Pack a path-id vector into its fixed-width bytes key."""
    return array(ID_TYPECODE, ids).tobytes()


def unpack_key(key: bytes) -> Tuple[int, ...]:
    """Restore the path-id vector behind a packed key."""
    ids = array(ID_TYPECODE)
    ids.frombytes(key)
    return tuple(ids)


class PathInternPool:
    """Interns normalised :class:`ASPath` objects, dense ids and vectors.

    ``path(raw)`` maps a raw attribute path to its canonical normalised
    instance (or None when normalisation drops the route); equal raw
    paths — even distinct objects — share one result.  ``path_id(raw)``
    maps it to a dense integer id with 0 reserved for "absent".
    ``vector(parts)`` maps a path-vector tuple to its canonical
    instance.  All three therefore hash any given key once; afterwards
    identity (or a small-int comparison) stands in for equality.

    Ids are assigned in first-seen order and are **stable for the
    lifetime of the pool**: feeding successive snapshots through one
    pool keeps every already-seen path's id fixed, which is what lets
    packed keys be compared across snapshots without re-hashing.
    """

    __slots__ = ("expand_singleton_sets", "strip_prepending",
                 "_by_raw", "_canonical", "_vectors",
                 "_id_by_raw", "_id_by_path", "_path_table")

    def __init__(self, expand_singleton_sets: bool = True,
                 strip_prepending: bool = False):
        self.expand_singleton_sets = expand_singleton_sets
        self.strip_prepending = strip_prepending
        #: raw path -> normalised path (or None): the normalisation cache
        self._by_raw: Dict[ASPath, Optional[ASPath]] = {}
        #: normalised path -> canonical instance (value-level interning)
        self._canonical: Dict[ASPath, ASPath] = {}
        #: vector tuple -> canonical instance
        self._vectors: Dict[Tuple, Tuple] = {}
        #: raw path -> dense id (ABSENT_ID for dropped paths)
        self._id_by_raw: Dict[ASPath, int] = {}
        #: canonical path -> dense id
        self._id_by_path: Dict[ASPath, int] = {}
        #: id -> canonical path; slot 0 is the absent sentinel
        self._path_table: List[Optional[ASPath]] = [None]

    # ------------------------------------------------------------------
    # Canonical instances
    # ------------------------------------------------------------------

    def path(self, raw: Optional[ASPath]) -> Optional[ASPath]:
        """The canonical normalised path for ``raw`` (None drops it)."""
        if raw is None:
            return None
        cached = self._by_raw.get(raw, _UNSET)
        if cached is _UNSET:
            # Late-bound module attribute, so tests patching
            # ``atoms._prepare_path`` observe the pool's misses too.
            cached = _atoms._prepare_path(
                raw, self.expand_singleton_sets, self.strip_prepending
            )
            if cached is not None:
                cached = self._canonical.setdefault(cached, cached)
            self._by_raw[raw] = cached
        return cached  # type: ignore[return-value]

    def vector(self, parts: Sequence[Optional[ASPath]]) -> Tuple:
        """The canonical tuple instance for this path vector."""
        vector = tuple(parts)
        return self._vectors.setdefault(vector, vector)

    # ------------------------------------------------------------------
    # Dense ids
    # ------------------------------------------------------------------

    def path_id(self, raw: Optional[ASPath]) -> int:
        """The dense id of ``raw``'s normalised path (0 when absent/dropped)."""
        if raw is None:
            return ABSENT_ID
        pid = self._id_by_raw.get(raw)
        if pid is None:
            path = self.path(raw)
            if path is None:
                pid = ABSENT_ID
            else:
                pid = self._id_by_path.get(path)
                if pid is None:
                    pid = len(self._path_table)
                    self._id_by_path[path] = pid
                    self._path_table.append(path)
            self._id_by_raw[raw] = pid
        return pid

    def id_for_path(self, path: Optional[ASPath]) -> int:
        """The dense id of an **already normalised** path (0 when None).

        Unlike :meth:`path_id` no normalisation is applied: the caller
        asserts ``path`` is canonical-equivalent already (an atom's
        stored path vector, a path decoded from a persisted store
        segment).  The instance is adopted as the canonical one when
        the value is new, so reloading a persisted table re-creates
        dense ids in table order without re-running ``_prepare_path``.
        """
        if path is None:
            return ABSENT_ID
        pid = self._id_by_path.get(path)
        if pid is None:
            path = self._canonical.setdefault(path, path)
            pid = len(self._path_table)
            self._id_by_path[path] = pid
            self._path_table.append(path)
        return pid

    def path_for_id(self, pid: int) -> Optional[ASPath]:
        """The canonical path behind a dense id (None for :data:`ABSENT_ID`)."""
        return self._path_table[pid]

    @classmethod
    def from_table(
        cls,
        paths: Sequence[ASPath],
        expand_singleton_sets: bool = True,
        strip_prepending: bool = False,
    ) -> "PathInternPool":
        """Rebuild a pool from a persisted id-ordered path table.

        ``paths[i]`` becomes dense id ``i + 1`` (slot 0 stays the absent
        sentinel), exactly the order :mod:`repro.store` serialises — so
        packed keys written against the original pool remain valid
        against the reloaded one.  The raw-path normalisation cache
        starts empty (it is raw-input-dependent and not persisted);
        canonical instances and ids carry over verbatim.
        """
        pool = cls(expand_singleton_sets, strip_prepending)
        for path in paths:
            pool.id_for_path(path)
        return pool

    @property
    def path_table(self) -> List[Optional[ASPath]]:
        """Id-indexed table of canonical paths (slot 0 is None).

        Exposed for the columnar kernel's vector reconstruction; treat
        as read-only.
        """
        return self._path_table

    @property
    def id_count(self) -> int:
        """Distinct interned paths plus the absent sentinel."""
        return len(self._path_table)

    def __len__(self) -> int:
        return len(self._by_raw)
