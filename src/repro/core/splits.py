"""Atom split detection and observer counting (§4.4.1).

Over three consecutive snapshots t, t+1, t+2: an atom (identified by
its prefix composition) present at t and t+1 is *split* if at t+2 any
of its prefixes live in different atoms.  For each split, the observers
are the vantage points that saw all the atom's prefixes share one path
at t+1 but see them diverge at t+2 — the count answers "how widely is
this split visible", which the paper uses to argue for careful vantage
point selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.bgp.rib import PeerId
from repro.core.atoms import AtomSet, PolicyAtom
from repro.net.prefix import Prefix


@dataclass(frozen=True)
class SplitEvent:
    """One atom split, with the vantage points that can see it."""

    prefixes: FrozenSet[Prefix]
    #: number of distinct atoms the prefixes landed in at t+2
    fragment_count: int
    #: vantage points observing the divergence
    observers: Tuple[PeerId, ...]

    @property
    def observer_count(self) -> int:
        return len(self.observers)


def _observers_of_split(
    atom: PolicyAtom,
    before: AtomSet,
    after: AtomSet,
) -> Tuple[PeerId, ...]:
    """VPs that saw one shared path at t+1 and divergent paths at t+2.

    AS paths are not compared across snapshots (the whole path set may
    legitimately change while the grouping persists); what counts is
    whether the prefixes still share a path *within* t+2.
    """
    prefixes = list(atom.prefixes)
    observers: List[PeerId] = []
    vp_index_after = {peer: i for i, peer in enumerate(after.vantage_points)}
    for vp_position, peer in enumerate(before.vantage_points):
        # At t+1 the atom's prefixes share paths by construction; the VP
        # qualifies only if it actually carried the atom.
        if atom.paths[vp_position] is None:
            continue
        after_position = vp_index_after.get(peer)
        if after_position is None:
            continue
        seen_paths = set()
        for prefix in prefixes:
            later_atom = after.atom_of(prefix)
            path = (
                later_atom.paths[after_position] if later_atom is not None else None
            )
            seen_paths.add(path)
            if len(seen_paths) > 1:
                break
        if len(seen_paths) > 1:
            observers.append(peer)
    return tuple(observers)


def detect_splits(
    first: AtomSet,
    second: AtomSet,
    third: AtomSet,
) -> List[SplitEvent]:
    """Split events across the (t, t+1, t+2) snapshot triple.

    Merges are deliberately ignored (no vantage point changes its view
    of the grouping when two atoms merge into one).
    """
    stable_sets = first.prefix_sets() & second.prefix_sets()
    second_by_prefixes: Dict[FrozenSet[Prefix], PolicyAtom] = {
        atom.prefixes: atom for atom in second
    }
    events: List[SplitEvent] = []
    for prefix_set in stable_sets:
        if len(prefix_set) < 2:
            continue  # a single prefix cannot split
        fragments: Set[int] = set()
        missing = 0
        for prefix in prefix_set:
            later = third.atom_of(prefix)
            if later is None:
                missing += 1
            else:
                fragments.add(later.atom_id)
        if not fragments:
            # The whole atom vanished (withdrawn): no prefix is "present
            # in a different atom", so per the paper this is not a split.
            continue
        fragment_count = len(fragments) + missing
        if fragment_count <= 1:
            continue
        atom = second_by_prefixes[prefix_set]
        observers = _observers_of_split(atom, second, third)
        events.append(
            SplitEvent(
                prefixes=prefix_set,
                fragment_count=fragment_count,
                observers=observers,
            )
        )
    return events


def observer_count_distribution(events: Sequence[SplitEvent]) -> Dict[int, int]:
    """{observer count: number of events} — the paper's Figure 6 input."""
    distribution: Dict[int, int] = {}
    for event in events:
        distribution[event.observer_count] = (
            distribution.get(event.observer_count, 0) + 1
        )
    return distribution


def top_observer_breakdown(
    events: Sequence[SplitEvent],
) -> Dict[str, int]:
    """Single- vs multi-observer events, and how concentrated the
    single-observer events are on individual vantage points (Fig. 7).

    Returns counts: ``multi``, ``single``, ``single_top``,
    ``single_second``, ``single_rest``, and ``unobserved`` (splits whose
    only witnesses did not carry the atom beforehand, so per the paper's
    counting rule no vantage point qualifies as an observer).
    """
    single_events = [e for e in events if e.observer_count == 1]
    multi = sum(1 for e in events if e.observer_count > 1)
    unobserved = sum(1 for e in events if e.observer_count == 0)
    per_vp: Dict[PeerId, int] = {}
    for event in single_events:
        vp = event.observers[0]
        per_vp[vp] = per_vp.get(vp, 0) + 1
    ranked = sorted(per_vp.values(), reverse=True)
    top = ranked[0] if ranked else 0
    second = ranked[1] if len(ranked) > 1 else 0
    rest = sum(ranked[2:]) if len(ranked) > 2 else 0
    return {
        "multi": multi,
        "single": len(single_events),
        "single_top": top,
        "single_second": second,
        "single_rest": rest,
        "unobserved": unobserved,
    }
