"""General statistics of policy atoms (Table 1 / Table 4, Figure 2 / 8 / 14).

Everything here is a pure function of an :class:`AtomSet`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.atoms import AtomSet


@dataclass(frozen=True)
class GeneralStats:
    """The rows of the paper's Table 1 / Table 4."""

    n_prefixes: int
    n_ases: int
    n_ases_one_atom: int
    n_atoms: int
    n_single_prefix_atoms: int
    mean_atom_size: float
    p99_atom_size: int
    max_atom_size: int

    @property
    def ases_one_atom_share(self) -> float:
        return self.n_ases_one_atom / self.n_ases if self.n_ases else 0.0

    @property
    def single_prefix_atom_share(self) -> float:
        return self.n_single_prefix_atoms / self.n_atoms if self.n_atoms else 0.0

    def rows(self) -> List[Tuple[str, str]]:
        """(label, formatted value) pairs in the paper's table order."""
        return [
            ("Number of prefixes", f"{self.n_prefixes:,}"),
            ("Number of ASes", f"{self.n_ases:,}"),
            (
                "Number of ASes with one atom",
                f"{self.n_ases_one_atom:,} ({self.ases_one_atom_share:.1%})",
            ),
            ("Number of atoms", f"{self.n_atoms:,}"),
            (
                "Number of atoms with one prefix",
                f"{self.n_single_prefix_atoms:,} ({self.single_prefix_atom_share:.1%})",
            ),
            ("Mean atom size", f"{self.mean_atom_size:.2f}"),
            ("99th percentile of atom size", f"{self.p99_atom_size}"),
            ("Largest atom size", f"{self.max_atom_size:,}"),
        ]


def percentile(sorted_values: Sequence[int], fraction: float) -> int:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0
    rank = max(0, min(len(sorted_values) - 1, int(fraction * len(sorted_values))))
    return sorted_values[rank]


def general_stats(atom_set: AtomSet) -> GeneralStats:
    """Compute the Table 1 statistics for one atom set."""
    sizes = sorted(atom.size for atom in atom_set)
    by_origin = atom_set.atoms_by_origin()
    return GeneralStats(
        n_prefixes=atom_set.prefix_count(),
        n_ases=len(by_origin),
        n_ases_one_atom=sum(1 for atoms in by_origin.values() if len(atoms) == 1),
        n_atoms=len(atom_set),
        n_single_prefix_atoms=sum(1 for size in sizes if size == 1),
        mean_atom_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
        p99_atom_size=percentile(sizes, 0.99),
        max_atom_size=sizes[-1] if sizes else 0,
    )


def atoms_per_as_distribution(atom_set: AtomSet) -> Counter:
    """Counter: number of atoms -> number of ASes (Figure 2 left)."""
    return Counter(len(atoms) for atoms in atom_set.atoms_by_origin().values())


def prefixes_per_atom_distribution(atom_set: AtomSet) -> Counter:
    """Counter: atom size -> number of atoms (Figure 2 right)."""
    return Counter(atom.size for atom in atom_set)


def prefixes_per_as_distribution(atom_set: AtomSet) -> Counter:
    """Counter: distinct prefix count -> number of ASes (Figure 14)."""
    counts: Counter = Counter()
    for atoms in atom_set.atoms_by_origin().values():
        prefixes = set()
        for atom in atoms:
            prefixes |= atom.prefixes
        counts[len(prefixes)] += 1
    return counts


def cdf(distribution: Counter) -> List[Tuple[int, float]]:
    """Cumulative distribution as ascending (value, cumulative share)."""
    total = sum(distribution.values())
    if not total:
        return []
    points: List[Tuple[int, float]] = []
    running = 0
    for value in sorted(distribution):
        running += distribution[value]
        points.append((value, running / total))
    return points
