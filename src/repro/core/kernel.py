"""The columnar atom-computation kernel.

Grouping prefixes by their AS-path vector across all full-feed vantage
points (§2.3) is the hot path of every figure and table sweep, and at
real RouteViews/RIS scale (~1M prefixes × hundreds of vantage points)
it dominates wall time.  The direct implementation builds, per prefix,
a tuple of :class:`~repro.net.aspath.ASPath` *objects* and hashes it —
one Python-level ``__hash__`` call per (prefix, VP) cell, repeated for
every dict probe.

The kernel restates the same computation columnarly:

1. **Intern** every normalised path to a dense integer id through a
   shared :class:`~repro.core.intern.PathInternPool`
   (:data:`~repro.core.intern.ABSENT_ID` = 0 covers both "prefix unseen
   at this VP" and "path removed by normalisation", the two cases the
   atom definition treats as no-route);
2. build one **id column per vantage point**, aligned to the sorted
   prefix universe;
3. transpose and pack each prefix's id vector into a fixed-width,
   ``array('I')``-backed **bytes key**
   (:func:`~repro.core.intern.pack_key` layout), so grouping is a
   single dict pass over compact byte strings hashed and compared in C;
4. rebuild each group's canonical path-vector tuple from the pool's id
   table — the emitted :class:`~repro.core.atoms.AtomSet` is
   value-identical to the reference implementation, **atom ids and
   ordering included** (groups appear in first-prefix order of the
   sorted universe, exactly the order the reference discovers them in).

:func:`compute_atoms_reference` keeps the original tuple-of-objects
implementation as the executable specification: the kernel is proven
against it by property tests over worlds exercising MOAS, AS_SETs,
prepending and partial visibility (``tests/core/test_kernel.py``) and
by the benchmark parity gate (``benchmarks/run_benchmarks.py``).
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from itertools import chain
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.rib import PeerId, RIBSnapshot
from repro.core import atoms as _atoms
from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.intern import ID_TYPECODE, KEY_WIDTH, PathInternPool, unpack_key
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs import get_tracer


def _prefix_universe(
    snapshot: RIBSnapshot,
    vantage_points: Sequence[PeerId],
    prefixes: Optional[Iterable[Prefix]],
) -> List[Prefix]:
    """The sorted prefix universe the grouping runs over."""
    if prefixes is None:
        universe: set = set()
        for peer_id in vantage_points:
            table = snapshot.table(peer_id)
            if table is not None:
                universe |= table.prefixes()
        return sorted(universe, key=Prefix.key)
    return sorted(set(prefixes), key=Prefix.key)


def _id_columns(
    snapshot: RIBSnapshot,
    vantage_points: Sequence[PeerId],
    prefix_list: Sequence[Prefix],
    pool: PathInternPool,
) -> Tuple[List[List[int]], int, int]:
    """Per-VP columns of dense path ids, aligned to ``prefix_list``.

    Returns ``(columns, present_cells, misses)`` where ``present_cells``
    counts (prefix, VP) cells carrying a route and ``misses`` counts raw
    paths the pool had not interned yet — together they reproduce the
    reference implementation's normalisation-cache hit/miss counters.

    The snapshot layer interns both kinds of hot objects: every table
    keys its routes by the *same* :class:`Prefix` instances the universe
    holds, and one attribute object serves every prefix announced with
    that path.  The loop exploits both identities: rows are resolved
    through an ``id(prefix)`` -> row-index map while iterating each
    table's route dict directly (no ``Prefix.__hash__``, and absent
    cells cost nothing — columns start zero-filled), and paths through
    a per-call L1 keyed by ``id(attributes)`` (an int-dict hit replaces
    the ``ASPath``-keyed probe *and* the ``.as_path`` access).  Identity
    keys are safe here because prefix list and tables keep every such
    object alive for the duration of the call.
    """
    columns: List[List[int]] = []
    count = len(prefix_list)
    present = 0
    misses = 0
    # Row lookup is identity-first with a value-keyed fallback:
    # ``Prefix.parse`` interning makes table keys and universe entries
    # the same objects on the pipeline path, but equal-but-distinct
    # instances (directly constructed) must still resolve correctly.
    pos: Dict[int, int] = {
        id(prefix): row for row, prefix in enumerate(prefix_list)
    }
    pos_value: Dict[Prefix, int] = {
        prefix: row for row, prefix in enumerate(prefix_list)
    }
    id_get = pool._id_by_raw.get  # value-keyed; 0 means "dropped"
    intern_id = pool.path_id
    l1: Dict[int, int] = {}
    l1_get = l1.get
    for peer_id in vantage_points:
        table = snapshot.table(peer_id)
        column = [0] * count
        columns.append(column)
        if table is None or not len(table):
            continue
        routes = table._routes
        skipped = 0
        # Announcements cluster: a third of table cells repeat the
        # previous cell's attribute object, so one ``is`` check short-
        # circuits the id()+dict probe for them.
        last_attributes = None
        last_pid = 0
        for prefix, attributes in routes.items():
            try:  # zero-cost on the hot path; misses are rare
                row = pos[id(prefix)]
            except KeyError:
                value_row = pos_value.get(prefix)
                if value_row is None:
                    skipped += 1
                    continue  # outside the requested universe
                row = pos[id(prefix)] = value_row  # tables share keys
            if attributes is last_attributes:
                column[row] = last_pid
                continue
            pid = l1_get(id(attributes))
            if pid is None:
                raw = attributes.as_path
                pid = id_get(raw)
                if pid is None:
                    pid = intern_id(raw)
                    misses += 1
                l1[id(attributes)] = pid
            last_attributes = attributes
            last_pid = pid
            column[row] = pid
        present += len(routes) - skipped
    return columns, present, misses


def _group_packed(
    prefix_list: Sequence[Prefix], columns: Sequence[Sequence[int]]
) -> Dict[bytes, List[Prefix]]:
    """Group prefixes by their packed path-id key, in first-prefix order.

    The transposed id matrix is materialised as one flat ``array('I')``
    and sliced row-wise, so per prefix the loop does a bytes slice, one
    dict probe and a list append — no per-cell Python.  The all-zero key
    (unseen everywhere after normalisation) is skipped, mirroring the
    reference's all-``None`` vector check.
    """
    groups: Dict[bytes, List[Prefix]] = {}
    if not columns:
        return groups
    row_bytes = KEY_WIDTH * len(columns)
    packed = array(ID_TYPECODE, chain.from_iterable(zip(*columns))).tobytes()
    empty = bytes(row_bytes)
    start = 0
    for prefix in prefix_list:
        end = start + row_bytes
        key = packed[start:end]
        start = end
        if key == empty:
            continue
        members = groups.get(key)
        if members is None:
            groups[key] = [prefix]
        else:
            members.append(prefix)
    return groups


def columnar_atoms(
    snapshot: RIBSnapshot,
    vantage_points: Optional[Sequence[PeerId]] = None,
    prefixes: Optional[Iterable[Prefix]] = None,
    expand_singleton_sets: bool = True,
    strip_prepending: bool = False,
    pool: Optional[PathInternPool] = None,
) -> AtomSet:
    """Group prefixes into policy atoms via the columnar kernel.

    Parameters match :func:`~repro.core.atoms.compute_atoms` (which
    delegates here); ``pool`` optionally supplies a shared
    :class:`PathInternPool` so successive snapshots reuse interned ids
    — its normalisation options must match the keyword flags.
    """
    if vantage_points is None:
        vantage_points = sorted(snapshot.peers())
    else:
        vantage_points = list(vantage_points)
    if pool is None:
        pool = PathInternPool(expand_singleton_sets, strip_prepending)
    elif (pool.expand_singleton_sets != expand_singleton_sets
          or pool.strip_prepending != strip_prepending):
        raise ValueError("intern pool normalisation options mismatch")

    prefix_list = _prefix_universe(snapshot, vantage_points, prefixes)

    tracer = get_tracer()
    with tracer.span("atoms") as span:
        columns, present, misses = _id_columns(
            snapshot, vantage_points, prefix_list, pool
        )
        groups = _group_packed(prefix_list, columns)
        path_for = pool.path_table.__getitem__
        atoms = [
            PolicyAtom(
                atom_id,
                frozenset(members),
                tuple(map(path_for, unpack_key(key))),
            )
            for atom_id, (key, members) in enumerate(groups.items())
        ]
        if tracer.enabled:
            span.set(
                prefixes=len(prefix_list),
                vantage_points=len(vantage_points),
                atoms=len(atoms),
            )
            tracer.count("atoms.prefixes", len(prefix_list))
            tracer.count("atoms.atoms", len(atoms))
            tracer.count("atoms.normalise_cache_hits", present - misses)
            tracer.count("atoms.normalise_cache_misses", misses)
    return AtomSet(atoms, vantage_points, snapshot.timestamp)


def compute_atoms_reference(
    snapshot: RIBSnapshot,
    vantage_points: Optional[Sequence[PeerId]] = None,
    prefixes: Optional[Iterable[Prefix]] = None,
    expand_singleton_sets: bool = True,
    strip_prepending: bool = False,
) -> AtomSet:
    """The pre-kernel implementation, kept as the executable spec.

    Builds a per-prefix tuple of normalised :class:`ASPath` objects and
    groups on it.  Slower than :func:`columnar_atoms` (Python-level
    hashing per cell) but definitionally transparent; the kernel must
    match it value-for-value, atom ids included.
    """
    if vantage_points is None:
        vantage_points = sorted(snapshot.peers())
    else:
        vantage_points = list(vantage_points)
    prefix_list = _prefix_universe(snapshot, vantage_points, prefixes)

    tables = [snapshot.table(peer_id) for peer_id in vantage_points]
    groups: Dict[Tuple, List[Prefix]] = defaultdict(list)
    normalise_cache: Dict[ASPath, Optional[ASPath]] = {}
    unset = object()

    for prefix in prefix_list:
        vector: List[Optional[ASPath]] = []
        for table in tables:
            attributes = table.get(prefix) if table is not None else None
            if attributes is None:
                vector.append(None)
                continue
            raw = attributes.as_path
            cached = normalise_cache.get(raw, unset)
            if cached is unset:
                # Late-bound, exactly as the pre-kernel module global was.
                cached = _atoms._prepare_path(
                    raw, expand_singleton_sets, strip_prepending
                )
                normalise_cache[raw] = cached
            vector.append(cached)  # type: ignore[arg-type]
        if all(path is None for path in vector):
            continue  # prefix effectively unseen after normalisation
        groups[tuple(vector)].append(prefix)

    atoms = [
        PolicyAtom(atom_id, frozenset(members), vector)
        for atom_id, (vector, members) in enumerate(groups.items())
    ]
    return AtomSet(atoms, vantage_points, snapshot.timestamp)
