"""Policy atoms as a lens on BGP dynamics (paper §7.2).

The paper's observation: prefixes inside an atom change AS path
together, so an update burst touching a *whole* atom reflects a policy
change or network event, whereas churn confined to one prefix of a
multi-prefix atom is "far more likely to be noise, leakage or transient
misconfiguration".  This module classifies update records accordingly,
enabling the flap filtering the paper proposes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.messages import RouteRecord
from repro.core.atoms import AtomSet

#: Classification labels.
EVENT_ATOM = "atom_event"          # a whole atom moved together
EVENT_PARTIAL = "partial_event"    # several prefixes of an atom, not all
EVENT_NOISE = "single_prefix_noise"  # lone prefix of a multi-prefix atom
EVENT_SINGLETON = "singleton"      # a single-prefix atom updated


@dataclass
class ClassifiedEvent:
    """One update record, classified against the atom structure."""

    record: RouteRecord
    label: str
    #: atoms touched: atom_id -> (touched prefixes, atom size)
    atoms_touched: Dict[int, Tuple[int, int]]

    @property
    def is_noise(self) -> bool:
        return self.label == EVENT_NOISE


@dataclass
class DynamicsSummary:
    """Aggregate view of a classified update window."""

    events: List[ClassifiedEvent] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        """Event counts per classification label."""
        tally: Dict[str, int] = defaultdict(int)
        for event in self.events:
            tally[event.label] += 1
        return dict(tally)

    def noise_share(self) -> float:
        """Share of events classified as single-prefix noise."""
        if not self.events:
            return 0.0
        return sum(1 for event in self.events if event.is_noise) / len(self.events)

    def filtered(self) -> List[ClassifiedEvent]:
        """Events surviving the paper's proposed flap filter: everything
        except single-prefix churn inside multi-prefix atoms."""
        return [event for event in self.events if not event.is_noise]


def classify_updates(
    atom_set: AtomSet,
    records: Iterable[RouteRecord],
) -> DynamicsSummary:
    """Classify each update record against the atom structure.

    * ``atom_event`` — the record covers every prefix of at least one
      multi-prefix atom (prefixes moved together: a real policy event);
    * ``partial_event`` — it touches several prefixes of some atom but
      never a complete one;
    * ``single_prefix_noise`` — it touches exactly one prefix, which
      belongs to a multi-prefix atom (the paper's likely-noise case);
    * ``singleton`` — it touches single-prefix atoms only.
    """
    summary = DynamicsSummary()
    for record in records:
        if record.record_type != "update":
            continue
        prefixes = record.prefixes()
        touched: Dict[int, int] = defaultdict(int)
        for prefix in prefixes:
            atom = atom_set.atom_of(prefix)
            if atom is not None:
                touched[atom.atom_id] += 1
        if not touched:
            continue
        atoms_touched = {
            atom_id: (count, _atom_size(atom_set, atom_id))
            for atom_id, count in touched.items()
        }

        full_multi = any(
            count == size and size > 1
            for count, size in atoms_touched.values()
        )
        multi_touch = any(count > 1 for count, _ in atoms_touched.values())
        lone_in_multi = (
            len(prefixes) == 1
            and all(size > 1 for _, size in atoms_touched.values())
        )
        if full_multi:
            label = EVENT_ATOM
        elif lone_in_multi:
            label = EVENT_NOISE
        elif multi_touch or any(count < size for count, size in atoms_touched.values()):
            if all(size == 1 for _, size in atoms_touched.values()):
                label = EVENT_SINGLETON
            else:
                label = EVENT_PARTIAL
        else:
            label = EVENT_SINGLETON
        summary.events.append(
            ClassifiedEvent(record=record, label=label, atoms_touched=atoms_touched)
        )
    return summary


def _atom_size(atom_set: AtomSet, atom_id: int) -> int:
    # AtomSet stores atoms in id order (ids are assigned sequentially).
    atom = atom_set.atoms[atom_id] if atom_id < len(atom_set.atoms) else None
    if atom is not None and atom.atom_id == atom_id:
        return atom.size
    for candidate in atom_set.atoms:  # pragma: no cover - defensive
        if candidate.atom_id == atom_id:
            return candidate.size
    raise KeyError(atom_id)


def stable_atom_priority(
    atom_set: AtomSet,
    summary: DynamicsSummary,
    historically_stable: Optional[Set[int]] = None,
) -> List[ClassifiedEvent]:
    """Rank surviving events, whole-atom changes to stable atoms first.

    Implements the paper's suggestion to "prioritize events that affect
    historically stable atoms".  ``historically_stable`` is a set of
    atom ids (e.g. atoms unchanged across prior snapshots); when absent,
    larger atoms rank first as a proxy.
    """
    def key(event: ClassifiedEvent):
        full_atoms = [
            atom_id
            for atom_id, (count, size) in event.atoms_touched.items()
            if count == size and size > 1
        ]
        stable_hits = (
            len([a for a in full_atoms if a in historically_stable])
            if historically_stable is not None
            else 0
        )
        biggest = max(
            (size for _, size in event.atoms_touched.values()), default=0
        )
        return (-stable_hits, 0 if full_atoms else 1, -biggest)

    return sorted(summary.filtered(), key=key)
