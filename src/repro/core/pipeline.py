"""End-to-end convenience: records in, atoms out.

``compute_policy_atoms`` bundles sanitization and atom computation the
way every analysis in the paper consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.bgp.messages import RouteRecord
from repro.core.atoms import AtomSet, compute_atoms
from repro.core.intern import PathInternPool
from repro.core.sanitize import CleanDataset, SanitizationConfig, sanitize


@dataclass
class AtomComputation:
    """Atoms plus the sanitized dataset they were computed from."""

    atoms: AtomSet
    dataset: CleanDataset

    @property
    def report(self):
        return self.dataset.report

    @property
    def timestamp(self) -> int:
        return self.dataset.timestamp


def compute_policy_atoms(
    records: Iterable[RouteRecord],
    config: Optional[SanitizationConfig] = None,
    strip_prepending: bool = False,
    pool: Optional[PathInternPool] = None,
) -> AtomComputation:
    """Sanitize raw RIB records and compute policy atoms.

    ``strip_prepending`` switches to formation-distance method (i)
    grouping (prepending removed before atoms are formed); leave False
    for the paper's adopted method.  ``pool`` optionally shares a
    :class:`~repro.core.intern.PathInternPool` across calls so
    successive snapshots intern each normalised path once.
    """
    dataset = sanitize(records, config)
    atoms = compute_atoms(
        dataset.snapshot,
        vantage_points=dataset.vantage_points,
        prefixes=dataset.prefixes,
        strip_prepending=strip_prepending,
        pool=pool,
    )
    return AtomComputation(atoms=atoms, dataset=dataset)
