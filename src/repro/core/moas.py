"""Multi-Origin AS (MOAS) prefix identification (§2.4.3).

The paper verifies MOAS prefixes stay below 5 % of the table and keeps
them: two prefixes can only share an atom if they share every AS path,
hence the same origin, so MOAS prefixes cannot contaminate other atoms.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.bgp.rib import PeerId, RIBSnapshot
from repro.net.prefix import Prefix


def moas_prefixes(
    snapshot: RIBSnapshot,
    vantage_points: Optional[Sequence[PeerId]] = None,
    prefixes: Optional[Iterable[Prefix]] = None,
) -> Dict[Prefix, Set[int]]:
    """Prefixes announced with more than one origin AS, with the origins.

    A prefix is MOAS when different vantage points (or the same one over
    time, which a single snapshot cannot see) attribute it to different
    rightmost ASNs.
    """
    if vantage_points is None:
        vantage_points = snapshot.peers()
    wanted = set(prefixes) if prefixes is not None else None
    origins: Dict[Prefix, Set[int]] = defaultdict(set)
    for peer_id in vantage_points:
        table = snapshot.table(peer_id)
        if table is None:
            continue
        for prefix, attributes in table.items():
            if wanted is not None and prefix not in wanted:
                continue
            origin = attributes.as_path.origin
            if origin is not None:
                origins[prefix].add(origin)
    return {
        prefix: found for prefix, found in origins.items() if len(found) > 1
    }


def moas_share(
    snapshot: RIBSnapshot,
    vantage_points: Optional[Sequence[PeerId]] = None,
    prefixes: Optional[Iterable[Prefix]] = None,
) -> float:
    """Fraction of prefixes that are MOAS (the paper's < 5 % check)."""
    if vantage_points is None:
        vantage_points = snapshot.peers()
    universe: Set[Prefix] = set()
    for peer_id in vantage_points:
        table = snapshot.table(peer_id)
        if table is not None:
            universe |= table.prefixes()
    if prefixes is not None:
        universe &= set(prefixes)
    if not universe:
        return 0.0
    conflicted = moas_prefixes(snapshot, vantage_points, universe)
    return len(conflicted) / len(universe)
