"""Incremental atom maintenance vs from-scratch recomputation.

Runs the same multi-quarter sweep twice through the engine — once with
each quarter's four snapshots computed from scratch, once with the
AtomIndex carrying atoms between them — and records wall time plus the
maintenance counters.  Timing is never asserted (single-core containers
tell their own story); what *is* asserted is value identity and the
work-economy claim: per incremental step, the dirty set the index
recomputes keys for stays a small fraction of the prefix table.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep to a CI-sized fixture.
"""

import os
import time

from benchmarks.conftest import emit
from repro.engine.jobs import build_jobs, clear_worker_state
from repro.engine.metrics import EngineMetrics
from repro.engine.scheduler import ExecutionEngine
from repro.topology.evolution import WorldParams
from repro.util.dates import utc_timestamp

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

INCREMENTAL_WORLD = WorldParams(
    seed=20260806,
    as_scale=1 / (400.0 if SMOKE else 200.0),
    prefix_scale=1 / (400.0 if SMOKE else 200.0),
    peer_scale=0.04,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)

SWEEP_YEARS = list(range(2004, 2006 if SMOKE else 2013))


def sweep_jobs(incremental):
    quarters = [(year, 1, float(year)) for year in SWEEP_YEARS]
    return build_jobs(
        INCREMENTAL_WORLD,
        utc_timestamp(SWEEP_YEARS[0], 1, 1),
        quarters,
        with_stability=True,
        incremental=incremental,
    )


def timed_run(incremental):
    clear_worker_state()
    metrics = EngineMetrics()
    engine = ExecutionEngine(jobs=1, metrics=metrics)
    started = time.perf_counter()
    results = engine.run(sweep_jobs(incremental))
    return results, time.perf_counter() - started, metrics


def test_incremental_speedup():
    scratch_results, scratch_s, _ = timed_run(incremental=False)
    inc_results, inc_s, inc_metrics = timed_run(incremental=True)

    rollup = inc_metrics.incremental_summary()
    prefix_mean = sum(r.stats.n_prefixes for r in inc_results) / len(inc_results)
    inc_steps = rollup["incremental_steps"]
    dirty_per_step = rollup["dirty_total"] / inc_steps if inc_steps else 0.0

    lines = [
        f"Incremental atom maintenance: {SWEEP_YEARS[0]}-{SWEEP_YEARS[-1]} "
        f"yearly sweep ({len(SWEEP_YEARS)} quarters x 4 snapshots)",
        "=" * 72,
        f"{'mode':<26}{'wall (s)':>10}{'steps':>8}{'rebuilds':>10}",
        "-" * 54,
        f"{'from scratch':<26}{scratch_s:>10.2f}"
        f"{4 * len(SWEEP_YEARS):>8}{4 * len(SWEEP_YEARS):>10}",
        f"{'incremental (AtomIndex)':<26}{inc_s:>10.2f}"
        f"{rollup['steps']:>8}{rollup['rebuilds']:>10}",
        "",
        f"mean prefixes per snapshot:      {prefix_mean:,.0f}",
        f"key recomputations (total):      {rollup['key_recomputations']:,}",
        f"mean dirty set per incr. step:   {dirty_per_step:,.1f}",
        f"index step time, rebuild:        {rollup['seconds_rebuild']:.2f}s",
        f"index step time, incremental:    {rollup['seconds_incremental']:.2f}s",
        f"incremental/scratch wall ratio:  {inc_s / scratch_s:.2f}x",
    ]
    emit("incremental_speedup", "\n".join(lines))

    # Value identity: the whole point of the incremental mode.
    assert len(inc_results) == len(scratch_results)
    for a, b in zip(scratch_results, inc_results):
        assert a.stats == b.stats
        assert a.stability == b.stability
        assert a.formation_shares == b.formation_shares
        assert a.feed == b.feed

    # Work economy: within a quarter, each maintained snapshot touches
    # at least 3x fewer keys than the prefix table a rebuild would walk.
    assert inc_steps >= len(SWEEP_YEARS)  # the later instants ride the index
    assert dirty_per_step * 3 <= prefix_mean
