"""Counter-based bench regression gate.

Runs two small, fully deterministic ``repro trend`` sweeps (plain and
incremental) with ``--trace``, rolls the traces' *counters* up into
``BENCH_smoke.json`` and compares them against the committed
expectations in ``trace_expectations.json``.

Counters — records decoded, prefixes sanitized, normalise-cache hits,
dirty-set economy, engine job sources — are exact functions of the
(seeded) simulated world, so any drift means the pipeline's work
changed: a decoder regression, a sanitizer behavior change, a cache
that stopped hitting.  Timings are deliberately never compared; shared
CI runners make them noise.

Usage::

    python benchmarks/check_trace_counters.py            # compare, exit 1 on drift
    python benchmarks/check_trace_counters.py --update   # rewrite expectations

CI runs the compare mode in the bench-smoke job and uploads the trace
JSONL files plus ``BENCH_smoke.json`` as artifacts.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Dict, List

from repro.cli import main as repro_main
from repro.obs import load_trace

HERE = Path(__file__).parent
EXPECTATIONS = HERE / "trace_expectations.json"

#: The smoke sweep: tiny world, a few years, deterministic seed.  The
#: incremental scenario keeps the stability snapshots (several per
#: quarter) so the dirty-set economy counters are exercised.
BASE_ARGS = [
    "trend",
    "--scale", "400",
    "--peer-scale", "0.03",
    "--seed", "20250701",
    "--first-year", "2004",
    "--step", "1",
]

#: Placeholder substituted with a per-run directory under
#: ``--output-dir`` (and wiped beforehand, so part reuse can't make the
#: engine/store counters drift between runs).
STORE_DIR_TOKEN = "{STORE_DIR}"

#: Same, for ``--world-checkpoint-dir``: wiped each run so the save
#: counter (idempotent writes skip existing files) stays exact.
WORLD_DIR_TOKEN = "{WORLD_DIR}"

#: The convergence smoke: the same tiny world run through the
#: discrete-event engine, once per gated scenario class.  Event,
#: message, and update-record counts are exact functions of the seed,
#: so any drift means the engine's behavior changed.
CONVERGE_ARGS = [
    "converge",
    "--scale", "400",
    "--peer-scale", "0.03",
    "--seed", "20250701",
    "--start", "2004-01-15",
]

SCENARIOS: Dict[str, List[str]] = {
    "trend": BASE_ARGS + ["--last-year", "2006", "--no-stability"],
    "trend-incremental": BASE_ARGS + ["--last-year", "2005", "--incremental"],
    "trend-store": BASE_ARGS + ["--last-year", "2005",
                                "--store-dir", STORE_DIR_TOKEN],
    # Columnar exchange: two workers publish framed segments, the
    # parent claims them — segment sizes are a pure function of the
    # seeded results, so bytes_claimed is an exact count.
    "trend-exchange": BASE_ARGS + ["--last-year", "2005", "--no-stability",
                                   "--jobs", "2", "--exchange", "columnar"],
    # World-lineage checkpoints on the serial path: the stability
    # cadence is dense enough that stride-4 saves land, and the save
    # count is an exact function of the sweep's instant schedule.
    # (Restores only fire in freshly forked workers, whose tracers
    # never reach the parent trace — the unit tests gate those.)
    "trend-worldckpt": BASE_ARGS + ["--last-year", "2005",
                                    "--world-checkpoint-dir",
                                    WORLD_DIR_TOKEN],
    "converge-flap": CONVERGE_ARGS + ["--scenario", "flap-storm",
                                      "--snapshot-at", "120"],
    "converge-leak": CONVERGE_ARGS + ["--scenario", "leak"],
    "converge-failover": CONVERGE_ARGS + ["--scenario", "failover"],
}

#: Only counters are gated; every one is an exact count, never a timing.
TRACKED_PREFIXES = (
    "decode.",
    "sanitize.",
    "atoms.",
    "incremental.",
    "engine.",
    "exchange.",
    "store.",
    "live.",
    "sim.",
)


def run_scenarios(output_dir: Path) -> Dict[str, Dict[str, int]]:
    """Run every scenario traced; return its tracked counters."""
    output_dir.mkdir(parents=True, exist_ok=True)
    collected: Dict[str, Dict[str, int]] = {}
    for name, cli_args in SCENARIOS.items():
        trace_path = output_dir / f"trace_{name}.jsonl"
        for token, prefix in ((STORE_DIR_TOKEN, "store"),
                              (WORLD_DIR_TOKEN, "world")):
            if token in cli_args:
                target = output_dir / f"{prefix}_{name}"
                shutil.rmtree(target, ignore_errors=True)
                cli_args = [
                    str(target) if arg == token else arg
                    for arg in cli_args
                ]
        code = repro_main(cli_args + ["--trace", str(trace_path)])
        if code != 0:
            raise SystemExit(f"scenario {name!r} exited with {code}")
        trace = load_trace(trace_path)
        collected[name] = {
            counter: value
            for counter, value in sorted(trace.counters.items())
            if counter.startswith(TRACKED_PREFIXES)
        }
    return collected


def diff(expected: Dict[str, Dict[str, int]],
         actual: Dict[str, Dict[str, int]]) -> List[str]:
    """Human-readable drift lines; empty means the gate passes."""
    problems: List[str] = []
    for scenario in sorted(set(expected) | set(actual)):
        want = expected.get(scenario)
        got = actual.get(scenario)
        if want is None:
            problems.append(f"{scenario}: scenario not in expectations "
                            "(run with --update)")
            continue
        if got is None:
            problems.append(f"{scenario}: scenario did not run")
            continue
        for counter in sorted(set(want) | set(got)):
            if want.get(counter) != got.get(counter):
                problems.append(
                    f"{scenario}: {counter} expected "
                    f"{want.get(counter)}, got {got.get(counter)}"
                )
    return problems


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite trace_expectations.json from this run")
    parser.add_argument("--output-dir", type=Path,
                        default=HERE / "output",
                        help="where traces and BENCH_smoke.json land")
    args = parser.parse_args(argv)

    actual = run_scenarios(args.output_dir)
    summary_path = args.output_dir / "BENCH_smoke.json"
    summary_path.write_text(json.dumps(actual, indent=2) + "\n")
    print(f"wrote {summary_path}")

    if args.update:
        merged = (
            json.loads(EXPECTATIONS.read_text())
            if EXPECTATIONS.exists() else {}
        )
        merged.update(actual)
        EXPECTATIONS.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"wrote {EXPECTATIONS}")
        return 0

    if not EXPECTATIONS.exists():
        print(f"missing {EXPECTATIONS}; run with --update", file=sys.stderr)
        return 2
    # The expectations file is shared with other harnesses (the live
    # soak owns its own key); only this script's scenarios are diffed.
    expected = {
        name: counters
        for name, counters in json.loads(EXPECTATIONS.read_text()).items()
        if name in SCENARIOS
    }
    problems = diff(expected, actual)
    if problems:
        print("stage counter drift detected:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        print("(if intentional, regenerate with --update)", file=sys.stderr)
        return 1
    counters = sum(len(v) for v in actual.values())
    print(f"{counters} counters across {len(actual)} scenario(s) match "
          "expectations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
