"""Engine throughput: serial vs parallel vs cached sweep timings.

Not a paper experiment — this records how the execution engine behaves
on the current machine so regressions (and wins on multi-core boxes)
show up in benchmark runs.  No speedup is *asserted*: on a single-core
container the process pool is pure overhead and the honest numbers say
so; the recorded table is the artifact.
"""

import os
import time

from benchmarks.conftest import emit
from repro.engine.cache import ResultCache
from repro.engine.jobs import build_jobs, clear_worker_state
from repro.engine.metrics import EngineMetrics
from repro.engine.scheduler import ExecutionEngine
from repro.topology.evolution import WorldParams
from repro.util.dates import utc_timestamp

#: ``REPRO_BENCH_SMOKE=1`` shrinks the sweep to a CI-sized fixture.
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

SPEEDUP_WORLD = WorldParams(
    seed=20250806,
    as_scale=1 / (400.0 if SMOKE else 300.0),
    prefix_scale=1 / (400.0 if SMOKE else 300.0),
    peer_scale=0.04,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)

SWEEP_YEARS = list(range(2004, 2006 if SMOKE else 2013))


def sweep_jobs():
    quarters = [(year, 1, float(year)) for year in SWEEP_YEARS]
    return build_jobs(
        SPEEDUP_WORLD,
        utc_timestamp(SWEEP_YEARS[0], 1, 1),
        quarters,
        with_stability=True,
    )


def timed_run(workers, cache=None):
    clear_worker_state()
    metrics = EngineMetrics()
    engine = ExecutionEngine(jobs=workers, cache=cache, metrics=metrics)
    started = time.perf_counter()
    results = engine.run(sweep_jobs())
    elapsed = time.perf_counter() - started
    return results, elapsed, metrics.summary()


def test_engine_speedup(tmp_path):
    serial_results, serial_s, serial_m = timed_run(1)
    parallel_results, parallel_s, parallel_m = timed_run(4)

    cache = ResultCache(tmp_path / "cache")
    _, cold_s, _ = timed_run(1, cache=cache)
    cached_results, cached_s, cached_m = timed_run(1, cache=cache)

    lines = [
        f"Execution engine: {SWEEP_YEARS[0]}-{SWEEP_YEARS[-1]} yearly sweep "
        f"({len(SWEEP_YEARS)} quarters, stability suites)",
        "=" * 72,
        f"host CPUs: {os.cpu_count()}",
        "",
        f"{'mode':<22}{'wall (s)':>10}{'computed':>10}{'reuse':>8}"
        f"{'utilization':>13}",
        "-" * 63,
        f"{'serial (jobs=1)':<22}{serial_s:>10.2f}"
        f"{serial_m['computed']:>10}{serial_m['hit_rate']:>8.0%}"
        f"{serial_m['worker_utilization']:>13.0%}",
        f"{'parallel (jobs=4)':<22}{parallel_s:>10.2f}"
        f"{parallel_m['computed']:>10}{parallel_m['hit_rate']:>8.0%}"
        f"{parallel_m['worker_utilization']:>13.0%}",
        f"{'cached rerun (jobs=1)':<22}{cached_s:>10.2f}"
        f"{cached_m['computed']:>10}{cached_m['hit_rate']:>8.0%}"
        f"{cached_m['worker_utilization']:>13.0%}",
        "",
        f"parallel/serial wall ratio: {parallel_s / serial_s:.2f}x",
        f"cached/cold wall ratio:     {cached_s / cold_s:.3f}x",
    ]
    emit("engine_speedup", "\n".join(lines))

    # Correctness invariants (always asserted; timing never is).
    assert len(parallel_results) == len(serial_results)
    for a, b in zip(serial_results, parallel_results):
        assert a.stats == b.stats and a.stability == b.stability
    assert cached_m["hit_rate"] == 1.0
    for a, b in zip(serial_results, cached_results):
        assert a.stats == b.stats
