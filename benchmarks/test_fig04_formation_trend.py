"""Figure 4 — formation-distance trend, 2004-2024 (§4.3).

Paper: the share of atoms formed at distance 1 falls steadily while
distances 3+ gain; excluding single-atom ASes (dashed) flattens the
distance-1 line, showing the drop is driven by the shrinking share of
single-atom origins.
"""

from benchmarks.conftest import emit
from repro.analysis.longitudinal import formation_trend_series


def test_fig04_formation_trend(benchmark, longitudinal_results):
    series = benchmark.pedantic(
        formation_trend_series, args=(longitudinal_results,), rounds=1, iterations=1
    )
    emit(
        "fig04_formation_trend",
        "Figure 4: % atoms formed at each AS distance, 2004-2024\n"
        + "\n".join(line.render(x_label="year", y_format="{:.0f}") for line in series),
    )

    by_name = {line.name: line for line in series}
    d1 = by_name["distance 1"]
    d3 = by_name["distance 3"]
    first_half_d1 = [y for _, y in d1.points[:3]]
    last_half_d1 = [y for _, y in d1.points[-3:]]
    assert sum(last_half_d1) / 3 < sum(first_half_d1) / 3, (
        "distance-1 share must decline over the two decades"
    )
    first_half_d3 = [y for _, y in d3.points[:3]]
    last_half_d3 = [y for _, y in d3.points[-3:]]
    assert sum(last_half_d3) / 3 > sum(first_half_d3) / 3, (
        "distance-3 share must grow over the two decades"
    )
    # The dashed (single-atom-AS-excluded) distance-1 line moves less
    # than the solid one (§4.3's explanation of the drop).
    dashed = by_name["distance 1 (excl. single-atom ASes)"]
    solid_drop = d1.points[0][1] - d1.points[-1][1]
    dashed_drop = dashed.points[0][1] - dashed.points[-1][1]
    assert dashed_drop < solid_drop + 5.0
