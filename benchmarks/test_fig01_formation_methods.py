"""Figure 1 — formation distance under methods (iii) vs (ii) (§3.4).

The paper found method (iii) (count unique ASes; prepending-only
differences attributed to the origin) sits ~10 pp higher at distance 1
than method (ii) (strip prepending before measuring), the gap being
exactly the prepending-formed atoms.
"""

from benchmarks.conftest import emit
from repro.core.formation import (
    FORMATION_METHOD_II,
    FORMATION_METHOD_III,
    REASON_PREPEND,
    formation_distances,
)
from repro.reporting.series import Series


def test_fig01_formation_methods(benchmark, replication_result):
    atoms = replication_result.atoms
    result_iii = benchmark.pedantic(
        formation_distances,
        args=(atoms,),
        kwargs={"method": FORMATION_METHOD_III},
        rounds=1,
        iterations=1,
    )
    result_ii = formation_distances(atoms, method=FORMATION_METHOD_II)

    lines = []
    for name, result in (("method (iii)", result_iii), ("method (ii)", result_ii)):
        series = Series(f"% atoms created at distance — {name}")
        for distance, share in result.cumulative_shares(max_distance=6):
            series.add(distance, share * 100)
        lines.append(series)
    emit(
        "fig01_formation_methods",
        "Figure 1: formation distance, method (iii) vs method (ii)\n"
        + "\n".join(series.render(x_label="distance") for series in lines)
        + f"\nprepending share of atoms (method iii): "
        f"{result_iii.reason_shares().get(REASON_PREPEND, 0.0):.1%}"
        + f"\natoms indistinguishable under method (ii): {len(result_ii.excluded)}",
    )

    share_iii_d1 = result_iii.distance_shares()[1]
    shares_ii = result_ii.distance_shares()
    prepend_share = result_iii.reason_shares().get(REASON_PREPEND, 0.0)
    # Method (iii) has more distance-1 atoms than method (ii)...
    assert share_iii_d1 > shares_ii[1]
    # ...by roughly the prepending-formed share (the paper's ~10 pp).
    gap = share_iii_d1 - shares_ii[1]
    assert abs(gap - prepend_share) < 0.10
    # Method (ii) excludes the prepending-only pairs instead.
    assert result_ii.excluded
