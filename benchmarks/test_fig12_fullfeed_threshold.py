"""Figure 12 — the full-feed threshold (max unique prefixes per peer)
over the years (A8.2).

Paper: grows from ~100K to ~1M, tracking global table growth.  Scaled
by the world factor, the series must grow roughly 7-8x over 2004-2024.
"""

from benchmarks.conftest import emit
from repro.analysis.longitudinal import fullfeed_trend_series


def test_fig12_fullfeed_threshold(benchmark, longitudinal_results):
    threshold, _ = benchmark.pedantic(
        fullfeed_trend_series, args=(longitudinal_results,), rounds=1, iterations=1
    )
    emit(
        "fig12_fullfeed_threshold",
        "Figure 12: maximum unique-prefix count per peer (full-feed threshold)\n"
        + threshold.render(x_label="year", y_format="{:.0f}"),
    )

    values = [y for _, y in threshold.points]
    assert values[-1] > 4 * values[0], "table must grow several-fold"
    # Broadly monotone: each point at least 90 % of the running max.
    running_max = 0.0
    for value in values:
        running_max = max(running_max, value)
        assert value > 0.85 * running_max
