"""Ablation — sanitization on/off (A8.3.2).

The paper reports that keeping the AS65000-leaking peer inflates the
atom count by ~30 %.  Recompute atoms with abnormal peers left in and
measure the inflation.
"""

import pytest

from benchmarks.conftest import SNAPSHOT_WORLD, emit
from repro.bgp.rib import RIBSnapshot
from repro.core.atoms import compute_atoms
from repro.core.fullfeed import full_feed_peers
from repro.core.pipeline import compute_policy_atoms
from repro.reporting.tables import render_table
from repro.simulation.scenario import SimulatedInternet


def test_ablation_sanitization(benchmark):
    simulator = SimulatedInternet(SNAPSHOT_WORLD, start="2022-01-15 08:00")
    records = list(simulator.rib_records("2022-01-15 08:00"))
    clean = benchmark.pedantic(
        compute_policy_atoms, args=(records,), rounds=1, iterations=1
    )
    if not clean.report.removed_peers:
        pytest.skip("no abnormal peers active at this date")

    dirty_snapshot = RIBSnapshot.from_records(records)
    dirty_atoms = compute_atoms(
        dirty_snapshot,
        vantage_points=full_feed_peers(dirty_snapshot),
        prefixes=clean.dataset.prefixes,
    )
    inflation = len(dirty_atoms) / len(clean.atoms) - 1.0
    emit(
        "ablation_sanitization",
        render_table(
            ["pipeline", "vantage points", "atoms"],
            [
                ("sanitized", len(clean.atoms.vantage_points), len(clean.atoms)),
                ("raw (abnormal peers kept)", len(dirty_atoms.vantage_points),
                 len(dirty_atoms)),
            ],
            title=(
                "Ablation: sanitization on/off "
                f"(atom inflation {inflation:.0%}; paper reports ~30% from "
                "the AS65000 peer alone)"
            ),
        ),
    )

    assert len(dirty_atoms) > len(clean.atoms), (
        "abnormal peers must inflate the atom count"
    )
    assert inflation > 0.05
