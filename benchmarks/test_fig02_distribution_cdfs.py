"""Figure 2 — CDFs of atoms per AS and prefixes per atom, 2004 vs 2024
(§4.1).

Paper: the 2024 atoms-per-AS CDF is right-shifted (ASes hold more
atoms) and the prefixes-per-atom CDF is left-shifted (atoms hold fewer
prefixes) relative to 2004 — atoms split over the two decades.
"""

from benchmarks.conftest import emit
from repro.core.statistics import (
    atoms_per_as_distribution,
    cdf,
    prefixes_per_atom_distribution,
)
from repro.reporting.series import Series


def _cdf_at(points, value):
    """CDF evaluated at ``value`` (step function)."""
    best = 0.0
    for x, share in points:
        if x <= value:
            best = share
        else:
            break
    return best


def test_fig02_distribution_cdfs(benchmark, suite_2004, suite_2024):
    atoms_per_as_2024 = benchmark.pedantic(
        atoms_per_as_distribution, args=(suite_2024.atoms,), rounds=3, iterations=1
    )
    cdf_atoms_2004 = cdf(atoms_per_as_distribution(suite_2004.atoms))
    cdf_atoms_2024 = cdf(atoms_per_as_2024)
    cdf_sizes_2004 = cdf(prefixes_per_atom_distribution(suite_2004.atoms))
    cdf_sizes_2024 = cdf(prefixes_per_atom_distribution(suite_2024.atoms))

    lines = []
    for name, points in (
        ("atoms per AS, 2004", cdf_atoms_2004),
        ("atoms per AS, 2024", cdf_atoms_2024),
        ("prefixes per atom, 2004", cdf_sizes_2004),
        ("prefixes per atom, 2024", cdf_sizes_2024),
    ):
        series = Series(name)
        for value in (1, 2, 4, 8, 16, 32):
            series.add(value, _cdf_at(points, value) * 100)
        lines.append(series)
    emit(
        "fig02_distribution_cdfs",
        "Figure 2: CDFs of atoms/AS (left) and prefixes/atom (right)\n"
        + "\n".join(series.render(x_label="n") for series in lines),
    )

    # 2024 ASes have more atoms: CDF at small counts is lower.
    assert _cdf_at(cdf_atoms_2024, 1) < _cdf_at(cdf_atoms_2004, 1)
    assert _cdf_at(cdf_atoms_2024, 2) <= _cdf_at(cdf_atoms_2004, 2) + 0.02
    # 2024 atoms have fewer prefixes: CDF at small sizes is higher.
    assert _cdf_at(cdf_sizes_2024, 1) > _cdf_at(cdf_sizes_2004, 1)
    assert _cdf_at(cdf_sizes_2024, 4) >= _cdf_at(cdf_sizes_2004, 4) - 0.02
