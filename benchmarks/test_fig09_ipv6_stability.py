"""Figure 9 — IPv6 stability trend (§5.2).

Paper: IPv6 atom stability stays high and is on the whole steadier than
IPv4's.
"""

from benchmarks.conftest import emit
from repro.analysis.longitudinal import stability_trend_series


def test_fig09_ipv6_stability(benchmark, ipv6_trend):
    series = benchmark.pedantic(
        stability_trend_series, args=(ipv6_trend,), rounds=1, iterations=1
    )
    emit(
        "fig09_ipv6_stability",
        "Figure 9: IPv6 atom stability trend (CAM/MPM, %)\n"
        + "\n".join(line.render(x_label="year") for line in series),
    )

    by_name = {line.name: line for line in series}
    cam_short = [
        y for _, y in by_name["Complete atom match (after 8 hours)"].points
        if y is not None
    ]
    assert cam_short, "expected stability points"
    assert sum(cam_short) / len(cam_short) > 85.0
    mpm_short = [
        y for _, y in by_name["Maximized prefix match (after 8 hours)"].points
        if y is not None
    ]
    for cam, mpm in zip(cam_short, mpm_short):
        assert mpm >= cam - 1.0
