"""Ablation — the 90 % full-feed inference rule (§2.4.2).

How does the vantage-point set react to the threshold?  Too loose
(50 %) admits partial feeders whose missing prefixes shatter atoms into
visibility classes; too strict (99 %) throws away honest full feeders.
The 90 % rule sits on the plateau between the two failure modes.
"""

from benchmarks.conftest import emit
from repro.core.atoms import compute_atoms
from repro.core.fullfeed import full_feed_peers
from repro.reporting.tables import render_table


def test_ablation_fullfeed_threshold(benchmark, suite_2024):
    dataset = suite_2024.base.dataset
    snapshot = dataset.snapshot

    def run(ratio):
        peers = full_feed_peers(snapshot, ratio=ratio)
        atoms = compute_atoms(snapshot, vantage_points=peers,
                              prefixes=dataset.prefixes)
        return peers, atoms

    benchmark.pedantic(run, args=(0.9,), rounds=1, iterations=1)

    rows = []
    results = {}
    for ratio in (0.5, 0.75, 0.9, 0.99):
        peers, atoms = run(ratio)
        results[ratio] = (len(peers), len(atoms))
        rows.append((f"{ratio:.0%}", len(peers), len(atoms),
                     f"{atoms.prefix_count() / max(1, len(atoms)):.2f}"))
    emit(
        "ablation_fullfeed_threshold",
        render_table(
            ["threshold", "vantage points", "atoms", "mean atom size"],
            rows,
            title="Ablation: full-feed inference threshold (2024 snapshot)",
        ),
    )

    # Looser thresholds admit more peers...
    assert results[0.5][0] >= results[0.9][0]
    # ...and partial feeders fragment atoms into visibility classes.
    assert results[0.5][1] > 1.2 * results[0.9][1]
    # Tightening to 99 % costs many honest full feeders (routes a VP
    # legitimately never hears put it below 99 % of the maximum) for a
    # comparatively modest change in atoms.
    assert results[0.99][0] < results[0.9][0]
    assert abs(results[0.99][1] - results[0.9][1]) <= 0.3 * results[0.9][1]
