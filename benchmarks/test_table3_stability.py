"""Table 3 — stability of atoms, 2004 vs 2024 (§4.4).

Paper: Jan 2004 CAM/MPM: 96.3/98.3 (8 h), 91.4/95.0 (24 h), 80.3/88.8
(1 week); Oct 2024: 83.7/90.6, 79.3/87.2, 71.9/80.1.  Both years must
show the fast-then-flat decay, with 2024 clearly less stable.
"""

from benchmarks.conftest import emit
from repro.core.stability import complete_atom_match
from repro.reporting.tables import render_table

PAPER = {
    ("2004", "8h"): (0.963, 0.983),
    ("2004", "24h"): (0.914, 0.950),
    ("2004", "1w"): (0.803, 0.888),
    ("2024", "8h"): (0.837, 0.906),
    ("2024", "24h"): (0.793, 0.872),
    ("2024", "1w"): (0.719, 0.801),
}


def test_table3_stability(benchmark, suite_2004, suite_2024):
    benchmark.pedantic(
        complete_atom_match,
        args=(suite_2024.atoms, suite_2024.after_8h.atoms),
        rounds=3,
        iterations=1,
    )
    stability = {
        "2004": suite_2004.stability(),
        "2024": suite_2024.stability(),
    }

    rows = []
    for span in ("8h", "24h", "1w"):
        row = [f"After {span}"]
        for year in ("2004", "2024"):
            cam, mpm = stability[year][span]
            paper_cam, paper_mpm = PAPER[(year, span)]
            row.append(f"{cam:.1%} / {mpm:.1%} (paper {paper_cam:.1%} / {paper_mpm:.1%})")
        rows.append(tuple(row))
    emit(
        "table3_stability",
        render_table(
            ["", "Jan 2004 CAM/MPM", "Oct 2024 CAM/MPM"],
            rows,
            title="Table 3: stability of atoms",
        ),
    )

    for year in ("2004", "2024"):
        cam_8h, mpm_8h = stability[year]["8h"]
        cam_24h, _ = stability[year]["24h"]
        cam_1w, mpm_1w = stability[year]["1w"]
        assert cam_8h >= cam_24h >= cam_1w, year
        assert mpm_8h >= cam_8h, year  # prefixes stay grouped more than atoms
        paper_cam_8h = PAPER[(year, "8h")][0]
        assert abs(cam_8h - paper_cam_8h) < 0.12, year
    # 2024 less stable than 2004 at every horizon.
    for span in ("8h", "24h", "1w"):
        assert stability["2004"][span][0] > stability["2024"][span][0] - 0.02
