"""Atom-store benchmark: build cost, cold-open speedup, size on disk.

Not a paper experiment — this records what the on-disk columnar store
buys on the current machine: how long a sweep takes with the store
sink attached, how fast a cold reopen + full series recompute is
compared to re-running the pipeline, and how many bytes a snapshot
costs next to the ``jsonl.gz`` record archive.  Only *parity* is
asserted (store-derived series must equal the in-memory ones); all
timings are recorded, never gated.
"""

import os
import time

from benchmarks.conftest import emit
from repro.analysis.longitudinal import (
    LongitudinalStudy,
    trend_results_from_store,
)
from repro.engine.jobs import clear_worker_state
from repro.engine.scheduler import ExecutionEngine
from repro.simulation.scenario import SimulatedInternet
from repro.store import AtomStore
from repro.stream.archive import RecordArchive
from repro.topology.evolution import WorldParams

#: ``REPRO_BENCH_SMOKE=1`` shrinks the sweep to a CI-sized fixture.
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

STORE_WORLD = WorldParams(
    seed=20250808,
    as_scale=1 / 400.0,
    prefix_scale=1 / 400.0,
    peer_scale=0.03,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)

#: 4 snapshots per yearly quarter: 2 years smoke (8 snapshots),
#: 10 years full (the acceptance criterion's 40-snapshot store).
SWEEP_YEARS = list(range(2004, 2006 if SMOKE else 2014))


def _sweep(store_dir=None):
    clear_worker_state()
    study = LongitudinalStudy(
        SimulatedInternet(STORE_WORLD, start=f"{SWEEP_YEARS[0]}-01-01"),
        engine=ExecutionEngine(),
        store_dir=None if store_dir is None else str(store_dir),
    )
    started = time.perf_counter()
    results = study.run_years(SWEEP_YEARS)
    return results, time.perf_counter() - started


def _rows_equal(expected, actual):
    return len(expected) == len(actual) and all(
        left.stats == right.stats
        and left.formation_shares == right.formation_shares
        and left.stability == right.stability
        and left.feed == right.feed
        for left, right in zip(expected, actual)
    )


def test_store_cold_open_vs_recompute(tmp_path):
    store_dir = tmp_path / "store"
    _, build_s = _sweep(store_dir)
    recomputed, recompute_s = _sweep()

    started = time.perf_counter()
    with AtomStore(store_dir) as store:
        from_store = trend_results_from_store(store)
        snapshots = len(store.snapshots())
        store_bytes = store.total_bytes()
    open_s = time.perf_counter() - started

    assert _rows_equal(recomputed, from_store)  # parity, never timing

    # Size comparison: the same base snapshots as jsonl.gz dumps.
    archive_dir = tmp_path / "archive"
    archive = RecordArchive(archive_dir)
    internet = SimulatedInternet(STORE_WORLD, start=f"{SWEEP_YEARS[0]}-01-01")
    probe_instant = f"{SWEEP_YEARS[0]}-01-15 08:00"
    archive.write_dump(internet.rib_records(probe_instant))
    jsonl_bytes = sum(
        path.stat().st_size for path in archive_dir.rglob("*.jsonl.gz")
    )

    speedup = recompute_s / open_s if open_s else float("inf")
    lines = [
        f"Atom store: {len(SWEEP_YEARS)}-year sweep "
        f"({snapshots} snapshots{', smoke' if SMOKE else ''})",
        "=" * 72,
        f"{'build sweep (store sink attached)':<44}{build_s:>10.2f} s",
        f"{'recompute sweep (no store)':<44}{recompute_s:>10.2f} s",
        f"{'cold open + all series from store':<44}{open_s:>10.3f} s",
        f"{'cold-open speedup vs recompute':<44}{speedup:>9.1f}x",
        "",
        f"{'store bytes / snapshot':<44}"
        f"{store_bytes / snapshots:>10,.0f} B",
        f"{'jsonl.gz record dump (one base snapshot)':<44}"
        f"{jsonl_bytes:>10,.0f} B",
        "",
        "parity: store-derived series identical to in-memory pipeline",
    ]
    emit("store", "\n".join(lines))
