"""Figure 6 — distribution of observer counts over atom-split events
(§4.4.1).

Paper: ~60 % of split events are visible to a single vantage point and
~80 % to at most three — most splits are localized, not global routing
changes.
"""

from benchmarks.conftest import emit
from repro.reporting.series import Series


def test_fig06_split_observers(benchmark, vantage_result):
    cdf = benchmark.pedantic(vantage_result.observer_cdf, rounds=1, iterations=1)
    series = Series("cumulative share of split events")
    for count, share in cdf:
        series.add(count, share * 100)
    events = vantage_result.all_events()
    emit(
        "fig06_split_observers",
        f"Figure 6: observers per atom-split event ({len(events)} events)\n"
        + series.render(x_label="observers", y_format="{:.0f}")
        + f"\nshare seen by 1 VP: {vantage_result.share_single_observer():.0%}"
        + f"\nshare seen by <=3 VPs: {vantage_result.share_at_most(3):.0%}",
    )

    assert events, "expected split events across the daily window"
    # Most splits are localized (paper: 60 % single-VP, 80 % <= 3 VPs;
    # the simulated world lands a band lower but the skew holds).
    assert vantage_result.share_single_observer() > 0.25
    assert vantage_result.share_at_most(3) > 0.38
    # Single-VP events are the single largest class.
    distribution = {}
    for event in events:
        distribution[event.observer_count] = distribution.get(event.observer_count, 0) + 1
    assert max(distribution, key=distribution.get) == 1
    # And the CDF is a valid distribution.
    shares = [share for _, share in cdf]
    assert shares == sorted(shares) and abs(shares[-1] - 1.0) < 1e-9
