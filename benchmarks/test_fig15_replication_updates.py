"""Figure 15 — 2002 update correlation (A8.4.2).

Paper: on the 2002 dataset too, atoms are much likelier than ASes to
appear in full inside one update record — the original paper's core
observation, reproduced.
"""

from benchmarks.conftest import emit
from repro.core.update_correlation import GROUP_AS, GROUP_ATOM
from repro.reporting.series import Series


def test_fig15_replication_updates(benchmark, replication_result):
    correlation = benchmark.pedantic(
        lambda: replication_result.updates, rounds=1, iterations=1
    )
    assert correlation is not None

    lines = []
    for kind, label in ((GROUP_ATOM, "Atom (with x prefixes)"),
                        (GROUP_AS, "AS (with x prefixes)")):
        series = Series(label)
        for size, value in correlation.curve(kind, max_size=7):
            series.add(size, None if value is None else value * 100)
        lines.append(series)
    emit(
        "fig15_replication_updates",
        "Figure 15: 2002 update correlation "
        f"({replication_result.update_record_count} records)\n"
        + "\n".join(series.render(x_label="k", y_format="{:.0f}") for series in lines),
    )

    def mean(kind):
        values = [v for _, v in correlation.curve(kind, max_size=7) if v is not None]
        return sum(values) / len(values) if values else None

    atom_mean = mean(GROUP_ATOM)
    as_mean = mean(GROUP_AS)
    assert atom_mean is not None and as_mean is not None
    assert atom_mean > as_mean
    assert atom_mean > 0.35
