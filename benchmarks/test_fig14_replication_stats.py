"""Figure 14 — 2002 AS/atom distribution CDFs (A8.4.1).

Paper: the reproduced 2002 dataset has ~12.5K ASes, 115K prefixes and
26K atoms, and the three CDFs (atoms/AS, prefixes/atom, prefixes/AS)
match the original paper's Figure.
"""

from benchmarks.conftest import emit
from repro.reporting.series import Series


def test_fig14_replication_stats(benchmark, replication_result):
    cdfs = benchmark.pedantic(
        replication_result.distribution_cdfs, rounds=1, iterations=1
    )

    def cdf_at(points, value):
        best = 0.0
        for x, share in points:
            if x <= value:
                best = share
            else:
                break
        return best

    lines = []
    for name, points in cdfs.items():
        series = Series(name)
        for value in (1, 2, 4, 8, 16, 32, 64):
            series.add(value, cdf_at(points, value) * 100)
        lines.append(series)
    stats = replication_result.stats
    emit(
        "fig14_replication_stats",
        "Figure 14: 2002 distributions (scaled 1/100)\n"
        f"ASes={stats.n_ases} prefixes={stats.n_prefixes} atoms={stats.n_atoms}\n"
        + "\n".join(series.render(x_label="n", y_format="{:.0f}") for series in lines),
    )

    # Full-scale anchors: 12.5K ASes / 115K prefixes / 26K atoms.
    assert stats.n_prefixes / stats.n_ases > 5.0
    assert 0.1 < stats.n_atoms / stats.n_prefixes < 0.45
    # Ordering of the three CDFs at n=1: atoms/AS is the most
    # concentrated, prefixes/AS the least.
    assert cdf_at(cdfs["atoms_per_as"], 1) > cdf_at(cdfs["prefixes_per_as"], 1)
    assert cdf_at(cdfs["prefixes_per_atom"], 1) > cdf_at(cdfs["prefixes_per_as"], 1)
