"""Table 7 — prefix-visibility threshold sensitivity (A8.5).

The paper's point: the prefix count is nearly flat around the adopted
(>= 2 collectors, >= 4 peer ASes) cell — filtering removes only
artifacts and very localized routes, not real global prefixes.
"""

from benchmarks.conftest import emit
from repro.analysis.sensitivity import sensitivity_rows, threshold_sensitivity
from repro.reporting.tables import render_table


def test_table7_threshold_sensitivity(benchmark, suite_2024):
    snapshot = suite_2024.base.dataset.snapshot
    grid = benchmark.pedantic(
        threshold_sensitivity, args=(snapshot,), rounds=1, iterations=1
    )
    rows = sensitivity_rows(grid)
    emit(
        "table7_sensitivity",
        render_table(
            ["Collectors \\ Peer ASes", ">=1", ">=2", ">=3", ">=4", ">=5"],
            rows,
            title="Table 7: prefix counts under visibility thresholds",
        ),
    )

    # Monotone in both axes.
    for c in (1, 2, 3):
        for p in (1, 2, 3, 4):
            assert grid[(c, p)] >= grid[(c, p + 1)]
    # The adopted cell keeps the vast majority of prefixes.
    assert grid[(2, 4)] >= 0.85 * grid[(1, 1)]
    # Moving one step past the adopted cell barely changes the count
    # (the paper reports < 0.5 %; we allow 3 % at small scale).
    assert grid[(2, 5)] >= 0.97 * grid[(2, 4)]
    assert grid[(3, 4)] >= 0.97 * grid[(2, 4)]
