"""Table 1 — general statistics of atoms, 2004 vs 2024 (§4.1).

Paper values (full scale): prefixes 131,526 -> 1,028,444 (7.8x); atoms
34,261 -> 483,117 (14.1x); single-atom-AS share 59.5 % -> 40.4 %;
single-prefix-atom share 57.7 % -> 73.5 %; mean atom size 3.84 -> 2.13.
Absolute counts scale with the world factor; the shares and the
directions must reproduce.
"""

from benchmarks.conftest import emit
from repro.core.statistics import general_stats
from repro.reporting.tables import render_table

PAPER = {
    "2004": {"one_atom_as": 0.595, "one_prefix_atom": 0.577, "mean": 3.84},
    "2024": {"one_atom_as": 0.404, "one_prefix_atom": 0.735, "mean": 2.13},
}


def test_table1_general_stats(benchmark, suite_2004, suite_2024):
    stats_2024 = benchmark.pedantic(
        general_stats, args=(suite_2024.atoms,), rounds=3, iterations=1
    )
    stats_2004 = general_stats(suite_2004.atoms)

    rows = []
    labels = [row[0] for row in stats_2004.rows()]
    for label, left, right in zip(
        labels,
        [value for _, value in stats_2004.rows()],
        [value for _, value in stats_2024.rows()],
    ):
        rows.append((label, left, right))
    emit(
        "table1_general_stats",
        render_table(
            ["", "Jan 2004", "Oct 2024"],
            rows,
            title="Table 1: general statistics of atoms (simulated, scaled 1/100)",
        ),
    )

    # Shape assertions against the paper.
    assert stats_2024.n_prefixes > 4 * stats_2004.n_prefixes
    assert stats_2024.n_atoms > 6 * stats_2004.n_atoms
    assert stats_2004.ases_one_atom_share > stats_2024.ases_one_atom_share
    assert stats_2004.single_prefix_atom_share < stats_2024.single_prefix_atom_share
    assert stats_2024.mean_atom_size < stats_2004.mean_atom_size
    # The paper's largest atom grows 1,020 -> 3,072; at small world scale
    # the extreme tail is dominated by a handful of merged giants and is
    # too noisy to assert a strict ordering, so only report it.
    for year, stats in (("2004", stats_2004), ("2024", stats_2024)):
        assert abs(stats.ases_one_atom_share - PAPER[year]["one_atom_as"]) < 0.15
        assert abs(stats.single_prefix_atom_share - PAPER[year]["one_prefix_atom"]) < 0.15
