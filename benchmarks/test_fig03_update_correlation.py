"""Figure 3 — likelihood of atoms/ASes seen in full in one BGP update,
2004 vs 2024 (§4.2).

Paper: atoms with 2-6 prefixes are seen in full in > 40 % of the
updates touching them (2024), ~30 pp above same-sized ASes; ASes with
only single-prefix atoms are almost never seen in full.
"""

from benchmarks.conftest import emit
from repro.core.update_correlation import (
    GROUP_AS,
    GROUP_AS_MULTI_ATOM,
    GROUP_AS_SINGLE_ATOMS,
    GROUP_ATOM,
)
from repro.reporting.series import Series


def _series(correlation, kind, label):
    series = Series(label)
    for size, value in correlation.curve(kind, max_size=7):
        series.add(size, None if value is None else value * 100)
    return series


def _mean(correlation, kind):
    values = [v for _, v in correlation.curve(kind, max_size=7) if v is not None]
    return sum(values) / len(values) if values else None


def test_fig03_update_correlation(benchmark, suite_2004, suite_2024):
    def read(suite):
        assert suite.updates is not None
        return suite.updates

    correlation_2024 = benchmark.pedantic(read, args=(suite_2024,), rounds=1,
                                          iterations=1)
    correlation_2004 = read(suite_2004)

    lines = []
    for year, correlation in (("2004", correlation_2004), ("2024", correlation_2024)):
        lines.append(_series(correlation, GROUP_ATOM, f"Atom ({year})"))
        lines.append(_series(correlation, GROUP_AS, f"AS ({year})"))
        lines.append(
            _series(correlation, GROUP_AS_MULTI_ATOM, f"AS with multi-prefix atom ({year})")
        )
        lines.append(
            _series(correlation, GROUP_AS_SINGLE_ATOMS, f"AS all single-prefix atoms ({year})")
        )
    emit(
        "fig03_update_correlation",
        "Figure 3: % of groups seen in full within one BGP update\n"
        + "\n".join(series.render(x_label="k", y_format="{:.0f}") for series in lines),
    )

    for year, correlation in (("2004", correlation_2004), ("2024", correlation_2024)):
        atom_mean = _mean(correlation, GROUP_ATOM)
        as_mean = _mean(correlation, GROUP_AS)
        assert atom_mean is not None and as_mean is not None, year
        assert atom_mean > as_mean + 0.10, year
        single_mean = _mean(correlation, GROUP_AS_SINGLE_ATOMS)
        if single_mean is not None:
            assert single_mean < 0.35, year
    # 2024 atoms: > 40 % seen in full for k in 2..6 (paper's headline),
    # allowing slack on sparse points.
    checked = [
        value
        for size, value in correlation_2024.curve(GROUP_ATOM, max_size=6)
        if value is not None
    ]
    assert checked and sum(v > 0.30 for v in checked) >= len(checked) - 1
