"""Figure 8 — IPv4 vs IPv6 distribution CDFs, 2024 (§5.1).

Paper: IPv6 has *fewer* atoms per AS than IPv4 (more single-atom ASes)
and a broadly similar prefixes-per-atom distribution.
"""

from benchmarks.conftest import emit
from repro.core.statistics import (
    atoms_per_as_distribution,
    cdf,
    prefixes_per_atom_distribution,
)
from repro.reporting.series import Series


def _cdf_at(points, value):
    best = 0.0
    for x, share in points:
        if x <= value:
            best = share
        else:
            break
    return best


def test_fig08_ipv6_cdfs(benchmark, ipv6_recent_stats):
    v4_suite, v6_suite = ipv6_recent_stats

    def build():
        return {
            "v4_atoms_per_as": cdf(atoms_per_as_distribution(v4_suite.atoms)),
            "v6_atoms_per_as": cdf(atoms_per_as_distribution(v6_suite.atoms)),
            "v4_prefixes_per_atom": cdf(prefixes_per_atom_distribution(v4_suite.atoms)),
            "v6_prefixes_per_atom": cdf(prefixes_per_atom_distribution(v6_suite.atoms)),
        }

    cdfs = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = []
    for name, points in cdfs.items():
        series = Series(name)
        for value in (1, 2, 4, 8, 16, 32):
            series.add(value, _cdf_at(points, value) * 100)
        lines.append(series)
    emit(
        "fig08_ipv6_cdfs",
        "Figure 8: IPv4 vs IPv6 CDFs, 2024\n"
        + "\n".join(series.render(x_label="n", y_format="{:.0f}") for series in lines),
    )

    # IPv6 ASes hold fewer atoms: higher CDF at 1-2 atoms.
    assert _cdf_at(cdfs["v6_atoms_per_as"], 1) > _cdf_at(cdfs["v4_atoms_per_as"], 1) - 0.03
    # Prefixes-per-atom distributions broadly similar: CDFs within 25 pp
    # at small sizes.
    for value in (1, 2, 4):
        gap = abs(
            _cdf_at(cdfs["v6_prefixes_per_atom"], value)
            - _cdf_at(cdfs["v4_prefixes_per_atom"], value)
        )
        assert gap < 0.25, value
