"""MRT decode micro-benchmark.

Measures the binary hot path in isolation: writer-generated MRT bytes
(TABLE_DUMP_V2 RIB entries and BGP4MP updates) decoded back through
:class:`MRTReader`.  The decoder's per-record costs — the precompiled
header struct, ``unpack_from`` field reads and memoryview body slices —
show up here without simulation noise.
"""

import io

import pytest

from repro.bgp.attributes import Community, PathAttributes
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.stream.mrt import MRTWriter, read_mrt

PEERS = [(64500 + index, f"192.0.2.{index + 1}") for index in range(8)]


def _attributes(seed):
    path = ASPath.from_asns([
        64500 + seed % 8, 3257 + seed % 5, 1299, 65000 + seed % 97
    ])
    return PathAttributes(
        path,
        communities=[Community(3257, seed % 1000)],
        med=seed % 50,
    )


@pytest.fixture(scope="module")
def rib_dump():
    """A TABLE_DUMP_V2 dump: 2000 prefixes, entries at every peer."""
    buffer = io.BytesIO()
    writer = MRTWriter(buffer)
    writer.write_peer_index(PEERS)
    for index in range(2000):
        prefix = Prefix.parse(f"10.{index // 256}.{index % 256}.0/24")
        entries = [
            (asn, address, _attributes(index + offset))
            for offset, (asn, address) in enumerate(PEERS)
        ]
        writer.write_rib_entry(prefix, entries, sequence=index)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def update_stream():
    """A BGP4MP stream: 5000 single-prefix announcements."""
    buffer = io.BytesIO()
    writer = MRTWriter(buffer)
    for index in range(5000):
        asn, address = PEERS[index % len(PEERS)]
        prefix = Prefix.parse(f"10.{index // 256}.{index % 256}.0/24")
        writer.write_update(
            asn, address, [(prefix, _attributes(index))], timestamp=index
        )
    return buffer.getvalue()


def test_perf_decode_rib_dump(benchmark, rib_dump):
    def decode():
        return sum(1 for _ in read_mrt(io.BytesIO(rib_dump)))

    count = benchmark.pedantic(decode, rounds=3, iterations=1)
    assert count == 2000 * len(PEERS)


def test_perf_decode_updates(benchmark, update_stream):
    def decode():
        return sum(1 for _ in read_mrt(io.BytesIO(update_stream)))

    count = benchmark.pedantic(decode, rounds=3, iterations=1)
    assert count == 5000
