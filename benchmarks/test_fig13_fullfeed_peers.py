"""Figure 13 — number of full-feed peers over the years (A8.2).

Paper: fewer than 50 full-feed peers in 2004, around 600 by 2024.
Scaled by the peer factor, the series must grow several-fold and the
90 %-rule must keep identifying the configured full feeders.
"""

from benchmarks.conftest import emit
from repro.analysis.longitudinal import fullfeed_trend_series


def test_fig13_fullfeed_peers(benchmark, longitudinal_results):
    _, peers = benchmark.pedantic(
        fullfeed_trend_series, args=(longitudinal_results,), rounds=1, iterations=1
    )
    emit(
        "fig13_fullfeed_peers",
        "Figure 13: number of full-feed peers (90% rule)\n"
        + peers.render(x_label="year", y_format="{:.0f}"),
    )

    values = [y for _, y in peers.points]
    assert values[-1] > values[0], "full-feed peer population must grow"
    assert values[-1] >= 1.5 * values[0]
    assert all(value >= 5 for value in values)
