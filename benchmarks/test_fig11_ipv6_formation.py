"""Figure 11 — IPv6 formation-distance trend (§5.4).

Paper: the share of IPv6 atoms created at distance 1 falls as IPv6
matures (fewer single-prefix ASes), and the average formation distance
stays *smaller* than IPv4's — coarser v6 traffic engineering.
"""

from benchmarks.conftest import emit
from repro.analysis.longitudinal import formation_trend_series


def _weighted_mean_distance(shares):
    return sum(d * share for d, share in shares.items())


def test_fig11_ipv6_formation(benchmark, ipv6_trend, longitudinal_results):
    series = benchmark.pedantic(
        formation_trend_series, args=(ipv6_trend,), rounds=1, iterations=1
    )
    emit(
        "fig11_ipv6_formation",
        "Figure 11: IPv6 formation-distance trend\n"
        + "\n".join(line.render(x_label="year", y_format="{:.0f}") for line in series),
    )

    by_name = {line.name: line for line in series}
    d1 = [y for _, y in by_name["distance 1"].points if y is not None]
    assert d1, "expected distance-1 points"
    # Distance-1 share falls (or at worst stays flat) as IPv6 matures.
    assert d1[-1] <= d1[0] + 8.0

    # IPv6 forms closer to the origin than IPv4 in the same era.
    v6_last = ipv6_trend[-1].formation_shares
    v4_last = longitudinal_results[-1].formation_shares
    assert _weighted_mean_distance(v6_last) <= _weighted_mean_distance(v4_last) + 0.35
