"""Table 6 — reproduced 2002 stability vs Afek et al.'s numbers (§3.5).

Original paper: CAM/MPM 95.3/97.7 (8 h), 91.6/97.0 (1 day), 77.5/86.0
(1 week); the IMC'25 replication reproduced 94.2/97.5, 91.8/96.2,
77.6/87.0.  Our simulated replication must land in the same bands.
"""

from benchmarks.conftest import emit
from repro.analysis.replication2002 import ORIGINAL_STABILITY
from repro.core.stability import stability_pair
from repro.reporting.tables import render_table


def test_table6_replication_stability(benchmark, replication_result):
    benchmark.pedantic(
        stability_pair,
        args=(replication_result.atoms, replication_result.atoms),
        rounds=3,
        iterations=1,
    )
    rows = []
    for span, orig_cam, orig_mpm, our_cam, our_mpm in (
        replication_result.stability_comparison()
    ):
        rows.append(
            (
                {"8h": "8 Hours", "1d": "1 Day", "1w": "1 Week"}[span],
                f"{orig_cam:.1%}",
                f"{orig_mpm:.1%}",
                f"{our_cam:.1%}",
                f"{our_mpm:.1%}",
            )
        )
    emit(
        "table6_replication_stability",
        render_table(
            ["Time span", "Orig CAM", "Orig MPM", "Ours CAM", "Ours MPM"],
            rows,
            title="Table 6: reproduced 2002 stability vs the original paper",
        ),
    )

    for span, (orig_cam, orig_mpm) in ORIGINAL_STABILITY.items():
        cam, mpm = replication_result.stability[span]
        assert abs(cam - orig_cam) < 0.12, span
        assert abs(mpm - orig_mpm) < 0.12, span
    cam_values = [replication_result.stability[s][0] for s in ("8h", "1d", "1w")]
    assert cam_values == sorted(cam_values, reverse=True)
