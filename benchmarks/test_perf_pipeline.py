"""Performance benchmarks for the core pipeline primitives.

Not paper experiments — these measure the library's own hot paths so
regressions show up in benchmark runs: route propagation per origin,
atom computation over a snapshot, stability matching, and sanitization.
"""

import pytest

from benchmarks.conftest import SNAPSHOT_WORLD
from repro.core.atoms import compute_atoms
from repro.core.intern import PathInternPool
from repro.core.kernel import columnar_atoms, compute_atoms_reference
from repro.core.sanitize import sanitize
from repro.core.stability import maximized_prefix_match
from repro.simulation.routing import propagate
from repro.simulation.scenario import SimulatedInternet


@pytest.fixture(scope="module")
def perf_world():
    simulator = SimulatedInternet(SNAPSHOT_WORLD, start="2016-01-15 08:00")
    records = list(simulator.rib_records("2016-01-15 08:00"))
    dataset = sanitize(records)
    atoms = compute_atoms(
        dataset.snapshot,
        vantage_points=dataset.vantage_points,
        prefixes=dataset.prefixes,
    )
    return simulator, records, dataset, atoms


def test_perf_propagation_per_origin(benchmark, perf_world):
    simulator, _, _, _ = perf_world
    world = simulator.world
    targets = set(world.layout.vantage_asns())
    policies = sorted(world.origins(4).items())
    big = max(policies, key=lambda item: len(item[1].units))[1]

    result = benchmark(
        propagate, world.graph, big, world.transit_policies, targets
    )
    assert result, "propagation must reach the vantage points"


def test_perf_sanitize(benchmark, perf_world):
    _, records, _, _ = perf_world
    dataset = benchmark.pedantic(sanitize, args=(records,), rounds=3, iterations=1)
    assert dataset.prefixes


def test_perf_atom_computation(benchmark, perf_world):
    _, _, dataset, _ = perf_world
    atoms = benchmark.pedantic(
        compute_atoms,
        args=(dataset.snapshot,),
        kwargs={
            "vantage_points": dataset.vantage_points,
            "prefixes": dataset.prefixes,
        },
        rounds=3,
        iterations=1,
    )
    assert len(atoms) > 0


def test_perf_atom_reference_legacy(benchmark, perf_world):
    """The pre-kernel tuple-of-objects implementation, as the baseline."""
    _, _, dataset, _ = perf_world
    atoms = benchmark.pedantic(
        compute_atoms_reference,
        args=(dataset.snapshot,),
        kwargs={
            "vantage_points": dataset.vantage_points,
            "prefixes": dataset.prefixes,
        },
        rounds=3,
        iterations=1,
    )
    assert len(atoms) > 0


def test_perf_atom_kernel_warm_pool(benchmark, perf_world):
    """The kernel with a shared intern pool — how sweeps actually run:
    :class:`LongitudinalStudy` feeds every snapshot through one pool."""
    _, _, dataset, _ = perf_world
    pool = PathInternPool()
    columnar_atoms(  # prime the pool, as a sweep's first snapshot would
        dataset.snapshot,
        vantage_points=dataset.vantage_points,
        prefixes=dataset.prefixes,
        pool=pool,
    )
    atoms = benchmark.pedantic(
        columnar_atoms,
        args=(dataset.snapshot,),
        kwargs={
            "vantage_points": dataset.vantage_points,
            "prefixes": dataset.prefixes,
            "pool": pool,
        },
        rounds=3,
        iterations=1,
    )
    assert len(atoms) > 0


def test_kernel_parity_with_reference(perf_world):
    """Not a timing — the gate: kernel output identical to legacy."""
    _, _, dataset, _ = perf_world
    kwargs = {
        "vantage_points": dataset.vantage_points,
        "prefixes": dataset.prefixes,
    }
    reference = compute_atoms_reference(dataset.snapshot, **kwargs)
    kernel = columnar_atoms(dataset.snapshot, **kwargs)
    assert len(kernel) == len(reference)
    for ours, theirs in zip(kernel, reference):
        assert ours.atom_id == theirs.atom_id
        assert ours.prefixes == theirs.prefixes
        assert ours.paths == theirs.paths


def test_perf_stability_matching(benchmark, perf_world):
    _, _, _, atoms = perf_world
    score = benchmark.pedantic(
        maximized_prefix_match, args=(atoms, atoms), rounds=3, iterations=1
    )
    assert score == pytest.approx(1.0)


def test_perf_snapshot_rendering(benchmark, perf_world):
    simulator, _, _, _ = perf_world

    def render():
        return sum(1 for _ in simulator.rib_records(simulator.current_time))

    count = benchmark.pedantic(render, rounds=3, iterations=1)
    assert count > 0
