"""Table 4 — IPv4 vs IPv6 general statistics (§5.1).

Paper: v6 prefixes grow 4,178 (2011) -> 227,363 (2024); single-atom-AS
share falls 87.1 % -> 65.3 %; mean atom size grows 1.20 -> 2.41 and
overtakes IPv4's 2.13.
"""

from benchmarks.conftest import emit
from repro.core.statistics import general_stats
from repro.reporting.tables import render_table


def test_table4_ipv6_stats(benchmark, ipv6_comparison, ipv6_recent_stats):
    v4_suite, v6_suite = ipv6_recent_stats
    v4_2024 = benchmark.pedantic(
        general_stats, args=(v4_suite.atoms,), rounds=3, iterations=1
    )
    v6_2024 = general_stats(v6_suite.atoms)
    v6_2011 = ipv6_comparison.v6_early

    labels = [row[0] for row in v4_2024.rows()]
    rows = [
        (label, a, b, c)
        for label, a, b, c in zip(
            labels,
            [v for _, v in v4_2024.rows()],
            [v for _, v in v6_2024.rows()],
            [v for _, v in v6_2011.rows()],
        )
    ]
    emit(
        "table4_ipv6_stats",
        render_table(
            ["", "v4 (2024)", "v6 (2024)", "v6 (2011)"],
            rows,
            title="Table 4: IPv4 vs IPv6 atoms (simulated, scaled 1/200)",
        ),
    )

    # §5.1 trends.
    assert v6_2024.n_prefixes > 10 * v6_2011.n_prefixes
    assert v6_2011.ases_one_atom_share > v6_2024.ases_one_atom_share
    assert v6_2024.mean_atom_size > v6_2011.mean_atom_size
    # IPv6 remains a fraction of IPv4.
    assert v6_2024.n_prefixes < v4_2024.n_prefixes
    # Coarser v6 TE: mean atom size comparable to v4 (the paper reports
    # v6 2.41 vs v4 2.13; evolved-world growth noise widens the band).
    assert v6_2024.mean_atom_size > 0.55 * v4_2024.mean_atom_size
