"""Serve benchmark: query latency + sustained QPS over a live store.

Not a paper experiment — this records what ``repro serve`` delivers on
the current machine: a store is built by a sweep, served on a loopback
socket, and hammered by a multi-threaded load generator mixing the
three endpoint families.  The emitted ``BENCH_serve.json`` holds the
p50/p99 latency and the sustained queries-per-second.

Only *parity* is asserted (the bytes on the wire must equal
``encode_body`` of the transport-free service answer, and the served
atom ids must equal direct :meth:`AtomStore.query` results); all
timings are recorded, never gated.
"""

import http.client
import json
import os
import statistics
import threading
import time

from benchmarks.conftest import OUTPUT_DIR, emit
from repro.analysis.longitudinal import LongitudinalStudy
from repro.engine.jobs import clear_worker_state
from repro.engine.scheduler import ExecutionEngine
from repro.serve import encode_body, serve_in_thread
from repro.simulation.scenario import SimulatedInternet
from repro.store import AtomStore
from repro.topology.evolution import WorldParams

#: ``REPRO_BENCH_SMOKE=1`` shrinks the sweep and the load window.
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

SERVE_WORLD = WorldParams(
    seed=20250808,
    as_scale=1 / 400.0,
    prefix_scale=1 / 400.0,
    peer_scale=0.03,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)

SWEEP_YEARS = list(range(2004, 2006 if SMOKE else 2008))

#: Load-generator shape: concurrent keep-alive clients x seconds.
CLIENTS = 4
DURATION_S = 2.0 if SMOKE else 5.0

#: How many distinct prefix/atom targets the canned mix cycles over.
TARGET_PREFIXES = 64
TARGET_ATOMS = 16


def _build_store(store_dir):
    clear_worker_state()
    study = LongitudinalStudy(
        SimulatedInternet(SERVE_WORLD, start=f"{SWEEP_YEARS[0]}-01-01"),
        engine=ExecutionEngine(),
        store_dir=str(store_dir),
    )
    study.run_years(SWEEP_YEARS)


def _canned_targets(store_dir):
    """A deterministic request mix: prefixes, atoms, stats, healthz."""
    with AtomStore(str(store_dir)) as store:
        entry = store.snapshots()[0]
        prefixes = sorted(
            store.atoms(entry.key).by_prefix, key=lambda p: p.key()
        )
        step = max(1, len(prefixes) // TARGET_PREFIXES)
        chosen = prefixes[::step][:TARGET_PREFIXES]
        atom_ids = list(
            range(0, entry.atom_count, max(1, entry.atom_count // TARGET_ATOMS))
        )[:TARGET_ATOMS]
    targets = [f"/v1/prefix/{prefix}" for prefix in chosen]
    targets += [f"/v1/atom/{atom_id}" for atom_id in atom_ids]
    targets += ["/v1/stats", "/healthz"]
    return targets, chosen


def _load_worker(host, port, targets, offset, deadline, latencies, errors):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    index = offset
    try:
        while time.perf_counter() < deadline:
            target = targets[index % len(targets)]
            index += 1
            started = time.perf_counter()
            conn.request("GET", target)
            response = conn.getresponse()
            response.read()
            elapsed = time.perf_counter() - started
            if response.status != 200:
                errors.append((target, response.status))
            latencies.append(elapsed)
    finally:
        conn.close()


def _percentile(latencies, fraction):
    ranked = sorted(latencies)
    return ranked[min(len(ranked) - 1, int(len(ranked) * fraction))]


def test_serve_latency_and_qps(tmp_path):
    store_dir = tmp_path / "store"
    _build_store(store_dir)
    targets, parity_prefixes = _canned_targets(store_dir)

    with serve_in_thread(str(store_dir)) as handle:
        # ------------------------------------------------------------
        # Parity first (the only thing asserted): wire bytes vs the
        # transport-free service, atom ids vs direct store queries.
        # ------------------------------------------------------------
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
        with AtomStore(str(store_dir)) as store:
            entry = store.snapshots()[0]
            for prefix in parity_prefixes[:16]:
                conn.request("GET", f"/v1/prefix/{prefix}")
                response = conn.getresponse()
                body = response.read()
                assert response.status == 200
                assert body == encode_body(
                    handle.service.prefix_query(str(prefix))
                )
                direct = store.query(prefix, key=entry.key)
                assert json.loads(body)["atom"]["id"] == direct.atom_id
            conn.request("GET", "/v1/stats")
            response = conn.getresponse()
            assert response.read() == encode_body(handle.service.stats())
        conn.close()

        # ------------------------------------------------------------
        # Load: CLIENTS keep-alive connections for DURATION_S seconds.
        # ------------------------------------------------------------
        latencies: list = []
        errors: list = []
        deadline = time.perf_counter() + DURATION_S
        started = time.perf_counter()
        threads = [
            threading.Thread(
                target=_load_worker,
                args=(handle.host, handle.port, targets,
                      n * 7, deadline, latencies, errors),
            )
            for n in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        cache_stats = handle.service.cache.stats()

    assert not errors, errors[:5]
    assert latencies, "load generator made no requests"

    qps = len(latencies) / elapsed
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    report = {
        "smoke": SMOKE,
        "world": {"seed": SERVE_WORLD.seed, "as_scale": SERVE_WORLD.as_scale},
        "years": len(SWEEP_YEARS),
        "load": {
            "clients": CLIENTS,
            "duration_s": elapsed,
            "targets": len(targets),
        },
        "requests": len(latencies),
        "errors": len(errors),
        "qps": qps,
        "latency_ms": {
            "p50": p50 * 1e3,
            "p99": p99 * 1e3,
            "mean": statistics.fmean(latencies) * 1e3,
            "max": max(latencies) * 1e3,
        },
        "cache": cache_stats,
        "parity": {"prefixes_checked": 16, "identical": True},
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_serve.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"repro serve: {CLIENTS} clients x {elapsed:.1f} s over "
        f"{len(targets)} canned targets{' (smoke)' if SMOKE else ''}",
        "=" * 72,
        f"{'requests served':<44}{len(latencies):>10,}",
        f"{'sustained QPS':<44}{qps:>10,.0f}",
        f"{'latency p50':<44}{p50 * 1e3:>10.2f} ms",
        f"{'latency p99':<44}{p99 * 1e3:>10.2f} ms",
        f"{'response cache hit rate':<44}"
        f"{cache_stats['hits'] / max(1, cache_stats['hits'] + cache_stats['misses']):>10.1%}",
        "",
        "parity: wire bytes identical to service + store answers",
    ]
    emit("serve", "\n".join(lines))
