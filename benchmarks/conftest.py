"""Shared fixtures for the benchmark harness.

Every paper table and figure has a bench module; the expensive inputs
(simulated worlds walked through the paper's snapshot cadence) are
session-scoped so the whole harness builds each world once.

Scales
------
* ``SNAPSHOT_WORLD`` (1/100) for single-date experiments — the scale the
  generator is calibrated at;
* ``TREND_WORLD`` (1/200) for 20-year sweeps;
* ``DAILY_WORLD`` (1/300) for the daily-snapshot split study.

Rendered tables/figures are printed and also written to
``benchmarks/output/`` so EXPERIMENTS.md can be assembled from a run.
"""

import os
from pathlib import Path

import pytest

from repro.analysis.ipv6 import IPv6Study
from repro.engine.scheduler import ExecutionEngine
from repro.analysis.longitudinal import LongitudinalStudy
from repro.analysis.replication2002 import Replication2002
from repro.analysis.vantage import VantageStudy
from repro.simulation.scenario import SimulatedInternet
from repro.topology.evolution import WorldParams

OUTPUT_DIR = Path(__file__).parent / "output"

SNAPSHOT_WORLD = WorldParams(
    seed=42,
    as_scale=1 / 100.0,
    prefix_scale=1 / 100.0,
    peer_scale=0.05,
    collector_scale=0.3,
    min_fullfeed_peers=10,
)

TREND_WORLD = WorldParams(
    seed=20250416,
    as_scale=1 / 200.0,
    prefix_scale=1 / 200.0,
    peer_scale=0.04,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)

DAILY_WORLD = WorldParams(
    seed=20250417,
    as_scale=1 / 300.0,
    prefix_scale=1 / 300.0,
    peer_scale=0.04,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)


def emit(name: str, text: str) -> None:
    """Print a rendered artifact and persist it under benchmarks/output."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    with open(OUTPUT_DIR / f"{name}.txt", "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


# ----------------------------------------------------------------------
# Single-date suites (Tables 1-3, Figures 1-3, Table 7, ablations)
# ----------------------------------------------------------------------

@pytest.fixture(scope="session")
def suite_2004():
    simulator = SimulatedInternet(SNAPSHOT_WORLD, start="2004-01-15 08:00")
    study = LongitudinalStudy(simulator)
    return study.snapshot_suite(2004, 1, with_stability=True, with_updates=True)


@pytest.fixture(scope="session")
def internet_2024_bench():
    return SimulatedInternet(SNAPSHOT_WORLD, start="2024-10-15 08:00")


@pytest.fixture(scope="session")
def suite_2024(internet_2024_bench):
    study = LongitudinalStudy(internet_2024_bench)
    return study.snapshot_suite(2024, 10, with_stability=True, with_updates=True)


# ----------------------------------------------------------------------
# Longitudinal trends (Figures 4, 5, 12, 13)
# ----------------------------------------------------------------------

TREND_YEARS = list(range(2004, 2025, 2))


@pytest.fixture(scope="session")
def longitudinal_results():
    # The sweep goes through the execution engine; REPRO_BENCH_JOBS
    # controls the worker count (default 1 = the old serial walk, which
    # produces value-identical results by construction).
    engine = ExecutionEngine(jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    simulator = SimulatedInternet(TREND_WORLD, start="2004-01-01")
    study = LongitudinalStudy(simulator, engine=engine)
    return study.run_years(TREND_YEARS, with_stability=True)


# ----------------------------------------------------------------------
# IPv6 (Table 4, Figures 8-11)
# ----------------------------------------------------------------------

V6_YEARS = list(range(2012, 2025, 2))


@pytest.fixture(scope="session")
def ipv6_world():
    return SimulatedInternet(TREND_WORLD, start="2011-01-01")


@pytest.fixture(scope="session")
def ipv6_study(ipv6_world):
    return IPv6Study(ipv6_world)


@pytest.fixture(scope="session")
def ipv6_comparison(ipv6_study):
    # Must run before the trend (time moves forward only in one world)…
    return ipv6_study.comparison(early_year=2011, recent_year=2012, month=1)


@pytest.fixture(scope="session")
def ipv6_trend(ipv6_study, ipv6_comparison):
    return ipv6_study.v6_trend(V6_YEARS, with_stability=True)


@pytest.fixture(scope="session")
def ipv6_recent_stats(ipv6_study, ipv6_trend):
    """Table 4's recent column, computed after the trend has advanced
    the world to 2024."""
    v4 = ipv6_study._v4.snapshot_suite(2024, 10, with_stability=False)
    v6 = ipv6_study._v6.snapshot_suite(2024, 10, with_stability=False)
    return v4, v6


# ----------------------------------------------------------------------
# 2002 replication (§3: Table 6, Figures 1, 14, 15)
# ----------------------------------------------------------------------

@pytest.fixture(scope="session")
def replication():
    return Replication2002(scale=1 / 100.0)


@pytest.fixture(scope="session")
def replication_result(replication):
    return replication.run(with_updates=True)


# ----------------------------------------------------------------------
# Daily split study (Figures 6, 7, 16)
# ----------------------------------------------------------------------

@pytest.fixture(scope="session")
def vantage_result():
    simulator = SimulatedInternet(DAILY_WORLD, start="2018-01-01 08:00")
    study = VantageStudy(simulator)
    return study.run(simulator.current_time, days=60)
