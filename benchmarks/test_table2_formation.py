"""Table 2 — formation distance distribution, 2004 vs 2024 (§4.3).

Paper: distance 1: 45 % -> 20 %; distance 2: 30 % -> 30 %; distance 3:
17 % -> 33 %; distance 4: 6 % -> 12 %.  The reproduction must show the
distance-1 collapse and the shift toward distances >= 3.
"""

from benchmarks.conftest import emit
from repro.core.formation import formation_distances
from repro.reporting.tables import render_table

PAPER = {
    1: (0.45, 0.20),
    2: (0.30, 0.30),
    3: (0.17, 0.33),
    4: (0.06, 0.12),
}


def test_table2_formation_distance(benchmark, suite_2004, suite_2024):
    result_2024 = benchmark.pedantic(
        formation_distances, args=(suite_2024.atoms,), rounds=1, iterations=1
    )
    result_2004 = formation_distances(suite_2004.atoms)
    shares_2004 = result_2004.distance_shares(max_distance=5)
    shares_2024 = result_2024.distance_shares(max_distance=5)

    rows = [
        (
            f"Atom formed at dist {d}",
            f"{shares_2004[d]:.0%} (paper {PAPER.get(d, ('-','-'))[0]:.0%})"
            if d in PAPER else f"{shares_2004[d]:.0%}",
            f"{shares_2024[d]:.0%} (paper {PAPER.get(d, ('-','-'))[1]:.0%})"
            if d in PAPER else f"{shares_2024[d]:.0%}",
        )
        for d in range(1, 6)
    ]
    emit(
        "table2_formation",
        render_table(["", "2004", "2024"],
                     rows, title="Table 2: formation distance distribution"),
    )

    # Key trends.
    assert shares_2004[1] > shares_2024[1] + 0.10, "distance-1 share must collapse"
    assert shares_2024[3] + shares_2024[4] > shares_2004[3] + shares_2004[4], (
        "splits must move past the origin's provider"
    )
    # Rough band agreement with the paper.
    for distance, (paper_2004, paper_2024) in PAPER.items():
        assert abs(shares_2004[distance] - paper_2004) < 0.17, (distance, "2004")
        assert abs(shares_2024[distance] - paper_2024) < 0.17, (distance, "2024")
