"""Table 5 — abnormal BGP peers removed from the analysis (A8.3).

The paper removes five peer ASNs: four with ADD-PATH parsing damage
and one leaking AS65000 into its paths; plus duplicate-flooding peers
(§2.4.4).  The simulator injects each artifact class in configured
windows; the sanitizer must catch exactly the active ones.
"""

import pytest

from benchmarks.conftest import SNAPSHOT_WORLD, emit
from repro.core.pipeline import compute_policy_atoms
from repro.reporting.tables import render_table
from repro.simulation.scenario import SimulatedInternet


def test_table5_abnormal_peers(benchmark):
    simulator = SimulatedInternet(SNAPSHOT_WORLD, start="2021-01-15 08:00")
    records = list(simulator.rib_records("2021-01-15 08:00"))
    computation = benchmark.pedantic(
        compute_policy_atoms, args=(records,), rounds=1, iterations=1
    )
    report = computation.report

    active = {
        peer.asn: peer.artifact
        for peer in simulator.world.layout.peers
        if peer.artifact_active(simulator.current_time)
    }
    rows = [
        (f"AS{asn}", reason, "yes" if asn in active else "NO (false positive)")
        for asn, reason in sorted(report.removed_peers.items())
    ]
    emit(
        "table5_abnormal_peers",
        render_table(
            ["Peer", "Removal reason", "Artifact injected"],
            rows,
            title="Table 5: abnormal BGP peers removed by sanitization",
        ),
    )

    if not active:
        pytest.skip("no artifact active at this date")
    # Every active artifact peer is caught, with the right diagnosis...
    for asn, artifact in active.items():
        assert report.removed_peers.get(asn) == artifact, (asn, artifact)
    # ...and no healthy peer is removed.
    assert set(report.removed_peers) <= set(active)
