"""Figure 5 — stability trend, 2004-2024 (§4.4).

Paper: short-term (8 h) stability stays ~95 %+ across two decades;
week-long stability stays around 80 %, with occasional dips; MPM sits
above CAM throughout.
"""

from benchmarks.conftest import emit
from repro.analysis.longitudinal import stability_trend_series


def test_fig05_stability_trend(benchmark, longitudinal_results):
    series = benchmark.pedantic(
        stability_trend_series, args=(longitudinal_results,), rounds=1, iterations=1
    )
    emit(
        "fig05_stability_trend",
        "Figure 5: atom stability over the years (CAM/MPM, %)\n"
        + "\n".join(line.render(x_label="year") for line in series),
    )

    by_name = {line.name: line for line in series}
    cam_short = [y for _, y in by_name["Complete atom match (after 8 hours)"].points]
    mpm_short = [y for _, y in by_name["Maximized prefix match (after 8 hours)"].points]
    cam_long = [y for _, y in by_name["Complete atom match (after 1 week)"].points]

    # Short-term stability is consistently high.
    assert min(cam_short) > 75.0
    assert sum(cam_short) / len(cam_short) > 85.0
    # Long-term below short-term, still substantial.
    for short, long_ in zip(cam_short, cam_long):
        assert long_ <= short + 1.0
    assert sum(cam_long) / len(cam_long) > 55.0
    # MPM above CAM at every point.
    for cam, mpm in zip(cam_short, mpm_short):
        assert mpm >= cam - 1.0
