"""Ablation — probing by atoms: savings vs staleness (paper §5.5 / §6).

iPlane probed one target per atom and refreshed the list every two
weeks.  Measure the probe-count reduction and how a fixed plan's
accuracy decays over the paper's stability horizons (8 h / 24 h / 1
week) — the quantitative basis for a refresh cadence.
"""

from benchmarks.conftest import emit
from repro.analysis.probing import build_probing_plan, staleness_curve
from repro.reporting.tables import render_table


def test_ablation_probing_staleness(benchmark, suite_2024):
    plan = benchmark.pedantic(
        build_probing_plan, args=(suite_2024.atoms,), rounds=3, iterations=1
    )
    horizons = [
        (8.0, suite_2024.after_8h.atoms),
        (24.0, suite_2024.after_24h.atoms),
        (168.0, suite_2024.after_week.atoms),
    ]
    curve = staleness_curve(plan, horizons)

    rows = [("probe targets", plan.target_count, ""),
            ("prefixes covered", plan.total_prefixes, ""),
            ("reduction factor", f"{plan.reduction_factor:.2f}x", "")]
    for age, accuracy in curve:
        rows.append((f"accuracy after {age:g} h", f"{accuracy:.1%}", ""))
    emit(
        "ablation_probing_staleness",
        render_table(["metric", "value", ""], rows,
                     title="Ablation: probing per atom instead of per prefix"),
    )

    assert plan.reduction_factor > 1.5
    accuracies = [accuracy for _, accuracy in curve]
    # Accuracy decays with staleness but stays useful within a week —
    # the iPlane design point (bi-weekly refresh).
    assert accuracies[0] > accuracies[-1] - 0.01
    assert accuracies[0] > 0.85
    assert accuracies[-1] > 0.6
