"""Figures 7 and 16 — per-day split breakdown by observer (§4.4.1, A8.6).

Paper: on most days the single-observer split events are concentrated
on one vantage point (often a VP whose own provider changed), rather
than spread evenly.
"""

from benchmarks.conftest import emit
from repro.reporting.tables import render_table


def test_fig07_split_breakdown(benchmark, vantage_result):
    def breakdowns():
        return [day.breakdown() for day in vantage_result.days]

    rows_data = benchmark.pedantic(breakdowns, rounds=1, iterations=1)
    rows = []
    for day, breakdown in zip(vantage_result.days, rows_data):
        total = breakdown["single"] + breakdown["multi"]
        if total == 0:
            continue
        rows.append(
            (
                str(day.timestamp),
                total,
                breakdown["multi"],
                breakdown["single_top"],
                breakdown["single_second"],
                breakdown["single_rest"],
            )
        )
    emit(
        "fig07_split_breakdown",
        render_table(
            ["day (ts)", "events", "multi-VP", "top single VP",
             "2nd single VP", "other single VPs"],
            rows,
            title="Figure 7/16: daily atom-split events by observer",
        ),
    )

    days_with_events = [b for b in rows_data if b["single"] + b["multi"] > 0]
    assert days_with_events, "expected split events"
    # On a majority of active days the top single VP dominates the
    # single-observer events.
    dominated = sum(
        1
        for b in days_with_events
        if b["single"] and b["single_top"] >= 0.5 * b["single"]
    )
    assert dominated >= 0.4 * len([b for b in days_with_events if b["single"]])
