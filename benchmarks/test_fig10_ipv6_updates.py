"""Figure 10 — IPv6 update correlation (§5.3).

Paper: for IPv6 too, atoms are far likelier than ASes to be seen in
full within a single BGP update.
"""

from benchmarks.conftest import emit
from repro.core.update_correlation import GROUP_AS, GROUP_AS_SINGLE_ATOMS, GROUP_ATOM
from repro.reporting.series import Series


def test_fig10_ipv6_updates(benchmark, ipv6_study, ipv6_trend):
    suite = benchmark.pedantic(
        ipv6_study.v6_update_suite,
        kwargs={"year": 2024, "month": 10},
        rounds=1,
        iterations=1,
    )
    correlation = suite.updates
    assert correlation is not None

    lines = []
    for kind, label in (
        (GROUP_ATOM, "Atom"),
        (GROUP_AS, "AS"),
        (GROUP_AS_SINGLE_ATOMS, "AS all single-prefix atoms"),
    ):
        series = Series(label)
        for size, value in correlation.curve(kind, max_size=7):
            series.add(size, None if value is None else value * 100)
        lines.append(series)
    emit(
        "fig10_ipv6_updates",
        f"Figure 10: IPv6 update correlation ({suite.update_record_count} records)\n"
        + "\n".join(series.render(x_label="k", y_format="{:.0f}") for series in lines),
    )

    def mean(kind):
        values = [v for _, v in correlation.curve(kind, max_size=7) if v is not None]
        return sum(values) / len(values) if values else None

    atom_mean = mean(GROUP_ATOM)
    as_mean = mean(GROUP_AS)
    assert atom_mean is not None and as_mean is not None
    assert atom_mean > as_mean + 0.05
