"""Live-pipeline soak: replay, kill, resume, and gate the counters.

Builds a deterministic, hand-crafted churny update archive (the
simulator's update streams never move a prefix between atoms, so the
fixture is authored here: path flaps, withdrawals, re-announcements,
prefix births, a foreign peer and a withdraw-before-announce), then
drives the ``repro live`` CLI through three phases:

1. **reference** — an uninterrupted traced run; its ``live.*`` counters
   are compared against the ``live-soak`` key of
   ``trace_expectations.json`` (counters only, never timings — the
   same policy as ``check_trace_counters.py``);
2. **kill** — the same stream stopped after ``--max-windows 2`` with a
   checkpoint directory and a store sink, simulating a crash at a
   window boundary;
3. **resume** — the same invocation without the window cap; it must
   pick up from the checkpoint and finish the stream.

The gate then requires the killed+resumed window sequence to equal the
reference run's windows field-for-field, the final atom partition to
match, and the store to hold one queryable snapshot per window.  Every
window boundary of every phase additionally self-verifies streamed ==
cold-recompute parity (``--parity window`` is the default; divergence
exits non-zero on its own).

Usage::

    python benchmarks/run_live_soak.py            # gate, exit 1 on drift
    python benchmarks/run_live_soak.py --update   # rewrite the live-soak key

CI runs the gate in the bench-smoke job and uploads ``BENCH_live.json``
plus the reference trace as artifacts.
"""

from __future__ import annotations

import argparse
import io
import json
import shutil
import sys
from contextlib import redirect_stdout
from pathlib import Path
from typing import Dict, List, Optional

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.cli import main as repro_main
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs import load_trace
from repro.store import AtomStore
from repro.stream.archive import RecordArchive

HERE = Path(__file__).parent
EXPECTATIONS = HERE / "trace_expectations.json"

#: Expectations key owned by this harness.
SCENARIO = "live-soak"

#: Window width of the soak stream (seconds).
WINDOW = 100

#: Shard workers of every phase; counters are shard-invariant for the
#: ``live.*`` family, but the fixture pins it anyway.
SHARDS = 2

#: Windows the kill phase is allowed to close before "crashing".
KILL_AFTER = 2

PEERS = [
    ("rrc00", 1, "10.9.1.1"),
    ("rrc00", 2, "10.9.2.1"),
    ("rrc01", 3, "10.9.3.1"),
    ("rrc01", 4, "10.9.4.1"),
]

#: In the update feed but not in the leading dump: every record from it
#: must be skipped and counted as ``live.foreign_records``.
FOREIGN_PEER = ("rrc01", 99, "10.9.99.1")


def _rib(peer, entries, timestamp):
    collector, peer_asn, peer_address = peer
    elements = [
        RouteElement(
            ElementType.RIB, Prefix.parse(text),
            PathAttributes(ASPath.parse(path)),
        )
        for text, path in entries
    ]
    return RouteRecord(
        "rib", "ris", collector, peer_asn, peer_address, timestamp, elements
    )


def _update(peer, timestamp, announced=(), withdrawn=()):
    collector, peer_asn, peer_address = peer
    elements = [
        RouteElement(
            ElementType.ANNOUNCEMENT, Prefix.parse(text),
            PathAttributes(ASPath.parse(path)),
        )
        for text, path in announced
    ]
    elements += [
        RouteElement(ElementType.WITHDRAWAL, Prefix.parse(text))
        for text in withdrawn
    ]
    return RouteRecord(
        "update", "ris", collector, peer_asn, peer_address, timestamp, elements
    )


def fixture_records():
    """The soak stream: a RIB dump plus six windows of genuine churn."""
    prefixes = [f"10.0.{i}.0/24" for i in range(1, 25)]
    ribs = []
    for peer in PEERS:
        asn = peer[1]
        entries = [
            (text, f"{asn} 5 9" if i % 2 == 0 else f"{asn} 6 8")
            for i, text in enumerate(prefixes)
        ]
        ribs.append(_rib(peer, entries, timestamp=50))

    updates: List[RouteRecord] = []
    for w in range(1, 7):
        base = w * WINDOW
        flap = prefixes[(3 * w) % len(prefixes)]
        # a path flap at two peers: moves the prefix between atoms
        updates.append(_update(
            PEERS[0], base + 10, announced=[(flap, f"1 {70 + w} 9")]
        ))
        updates.append(_update(
            PEERS[2], base + 35, announced=[(flap, f"3 {70 + w} 9")]
        ))
        # a no-op re-announcement: dirties without moving the key
        updates.append(_update(
            PEERS[1], base + 50,
            announced=[(prefixes[w], f"2 {'5 9' if w % 2 == 0 else '6 8'}")]
        ))
        if w in (2, 4):
            updates.append(_update(
                PEERS[1], base + 60, withdrawn=[prefixes[w + 6]]
            ))
        if w in (3, 5):
            updates.append(_update(
                PEERS[1], base + 20,
                announced=[(prefixes[w + 5], f"2 {70 + w} 8")]
            ))
        if w == 3:
            for offset, peer in enumerate(PEERS):
                updates.append(_update(
                    peer, base + 70 + offset,
                    announced=[("10.1.3.0/24", f"{peer[1]} 44 7")]
                ))
        if w in (1, 4):
            updates.append(_update(
                FOREIGN_PEER, base + 80,
                announced=[(prefixes[0], "99 5 9")]
            ))
    # withdraw-before-announce: the collector never saw this prefix
    updates.insert(1, _update(PEERS[3], 115, withdrawn=["192.0.2.0/24"]))
    return ribs, updates


def build_fixture(archive_dir: Path) -> None:
    """Write the soak archive (idempotent: wiped and rebuilt)."""
    shutil.rmtree(archive_dir, ignore_errors=True)
    archive = RecordArchive(archive_dir)
    ribs, updates = fixture_records()
    archive.write_dump(ribs)
    # One update dump per (collector): replay order is dump-file order,
    # so the second collector's records arrive after the first's later
    # windows — out-of-order across dump boundaries, like real feeds.
    archive.write_dump(updates)


def run_live(archive_dir: Path, extra: List[str],
             trace: Optional[Path] = None) -> Dict:
    """One ``repro live --json`` invocation; returns the parsed summary."""
    argv = [
        "live",
        "--archive", str(archive_dir),
        "--window", str(WINDOW),
        "--shards", str(SHARDS),
        "--json",
    ] + extra
    if trace is not None:
        argv += ["--trace", str(trace)]
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = repro_main(argv)
    if code != 0:
        raise SystemExit(
            f"repro live exited with {code} (argv: {' '.join(argv)})"
        )
    return json.loads(buffer.getvalue())


def soak(output_dir: Path) -> Dict:
    """Run all three phases; returns the BENCH_live payload."""
    archive_dir = output_dir / "live_fixture"
    build_fixture(archive_dir)

    trace_path = output_dir / "trace_live_soak.jsonl"
    reference = run_live(archive_dir, [], trace=trace_path)
    counters = {
        name: value
        for name, value in sorted(load_trace(trace_path).counters.items())
        if name.startswith("live.")
    }

    ckpt = output_dir / "live_ckpt"
    store = output_dir / "live_store"
    shutil.rmtree(ckpt, ignore_errors=True)
    shutil.rmtree(store, ignore_errors=True)
    durable = ["--checkpoint-dir", str(ckpt), "--store-dir", str(store)]
    killed = run_live(archive_dir, durable + ["--max-windows", str(KILL_AFTER)])
    resumed = run_live(archive_dir, durable)

    problems: List[str] = []
    if not killed["stopped_early"]:
        problems.append("kill phase ran the stream out instead of stopping")
    if not resumed["resumed"]:
        problems.append("resume phase did not load the checkpoint")
    combined = killed["windows"] + resumed["windows"]
    if combined != reference["windows"]:
        problems.append(
            "killed+resumed windows diverge from the uninterrupted run: "
            f"{json.dumps(combined)} != {json.dumps(reference['windows'])}"
        )
    for field in ("atoms", "prefixes", "vantage_points"):
        if resumed[field] != reference[field]:
            problems.append(
                f"final {field} diverge: resumed {resumed[field]!r} "
                f"!= reference {reference[field]!r}"
            )
    expected_keys = [f"w{w['index']:08d}" for w in reference["windows"]]
    if resumed["store_keys"] != expected_keys:
        problems.append(
            f"store keys {resumed['store_keys']} != {expected_keys}"
        )
    with AtomStore(store) as reader:
        snapshot_keys = [entry.key for entry in reader.snapshots()]
        if snapshot_keys != expected_keys:
            problems.append(
                f"merged store snapshots {snapshot_keys} != {expected_keys}"
            )
        last = reader.atoms(expected_keys[-1])
        if len(last) != reference["atoms"]:
            problems.append(
                f"stored final partition has {len(last)} atoms, "
                f"reference {reference['atoms']}"
            )
    if not counters.get("live.windows"):
        problems.append("reference trace carries no live.windows counter")
    if not counters.get("live.foreign_records"):
        problems.append("fixture exercised no foreign records")
    if not counters.get("live.late_records"):
        problems.append("fixture exercised no out-of-order records")
    if not counters.get("live.withdrawals"):
        problems.append("fixture exercised no withdrawals")
    if not counters.get("live.key_changes"):
        problems.append("fixture moved no prefix between atoms")

    return {
        "scenario": SCENARIO,
        "counters": counters,
        "reference": {
            "windows": reference["windows"],
            "atoms": reference["atoms"],
            "prefixes": reference["prefixes"],
            "parity_checks": reference["parity_checks"],
        },
        "kill_resume": {
            "killed_windows": len(killed["windows"]),
            "resumed_windows": len(resumed["windows"]),
            "resumed_from": resumed["resumed_from"],
            "skipped": resumed["skipped"],
            "checkpoints": killed["checkpoints"] + resumed["checkpoints"],
            "store_snapshots": snapshot_keys,
        },
        "problems": problems,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the live-soak expectations key")
    parser.add_argument("--output-dir", type=Path, default=HERE / "output",
                        help="where the fixture, trace and BENCH_live.json land")
    args = parser.parse_args(argv)

    args.output_dir.mkdir(parents=True, exist_ok=True)
    payload = soak(args.output_dir)
    summary_path = args.output_dir / "BENCH_live.json"
    summary_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {summary_path}")

    if payload["problems"]:
        print("live soak failed:", file=sys.stderr)
        for problem in payload["problems"]:
            print(f"  {problem}", file=sys.stderr)
        return 1

    expectations = (
        json.loads(EXPECTATIONS.read_text()) if EXPECTATIONS.exists() else {}
    )
    if args.update:
        expectations[SCENARIO] = payload["counters"]
        EXPECTATIONS.write_text(json.dumps(expectations, indent=2) + "\n")
        print(f"wrote {EXPECTATIONS} ({SCENARIO})")
        return 0

    want = expectations.get(SCENARIO)
    if want is None:
        print(f"no {SCENARIO!r} key in {EXPECTATIONS}; run with --update",
              file=sys.stderr)
        return 2
    drift = [
        f"{name}: expected {want.get(name)}, got "
        f"{payload['counters'].get(name)}"
        for name in sorted(set(want) | set(payload["counters"]))
        if want.get(name) != payload["counters"].get(name)
    ]
    if drift:
        print("live counter drift detected:", file=sys.stderr)
        for line in drift:
            print(f"  {line}", file=sys.stderr)
        print("(if intentional, regenerate with --update)", file=sys.stderr)
        return 1
    windows = payload["reference"]["windows"]
    print(
        f"{len(payload['counters'])} live counters match expectations; "
        f"{len(windows)} windows, parity verified at "
        f"{payload['reference']['parity_checks']} boundaries, "
        "kill/resume equivalent to the uninterrupted run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
