"""Setuptools shim.

Kept alongside ``pyproject.toml`` so editable installs work in offline
environments whose setuptools predates PEP 660 (no ``wheel`` package):
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
