"""Store round-trip parity and corruption property tests.

Reuses the kernel suite's snapshot generator, which exercises every
normalisation branch — MOAS prefixes, singleton and multi-element
AS_SETs, prepending, partial visibility — and asserts that an
:class:`AtomSet` written to a store and reconstructed from it is
value-identical to the ``compute_atoms`` output: atom ids, ordering,
member sets, path vectors, vantage points and timestamp.
"""

import json
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.bgp.rib import RIBSnapshot
from repro.core.atoms import compute_atoms
from repro.store import AtomStore, StoreError, StoreWriter
from repro.store.writer import MANIFEST_NAME
from tests.core.test_kernel import assert_identical, snapshots


def _assert_atoms_equal(expected, rebuilt):
    assert_identical(expected, rebuilt)
    assert rebuilt.timestamp == expected.timestamp
    assert rebuilt.by_prefix.keys() == expected.by_prefix.keys()


def _write_store(root, atoms, shard_rows=3):
    writer = StoreWriter(root, shard_rows=shard_rows)
    writer.add_snapshot("snap:base", atoms, label="snap", role="base")
    writer.close()


@given(snapshots())
@settings(max_examples=40, deadline=None)
def test_roundtrip_matches_compute_atoms(records):
    snapshot = RIBSnapshot.from_records(records)
    expected = compute_atoms(snapshot)
    # tempfile (not tmp_path) so hypothesis examples don't share state
    with tempfile.TemporaryDirectory() as tmp:
        _write_store(tmp, expected)
        with AtomStore(tmp) as store:
            _assert_atoms_equal(expected, store.atoms("snap:base"))


@given(snapshots())
@settings(max_examples=20, deadline=None)
def test_roundtrip_single_shard(records):
    """Sharded and unsharded layouts reconstruct identically."""
    snapshot = RIBSnapshot.from_records(records)
    expected = compute_atoms(snapshot)
    with tempfile.TemporaryDirectory() as tmp:
        _write_store(Path(tmp) / "many", expected, shard_rows=2)
        _write_store(Path(tmp) / "one", expected, shard_rows=1 << 20)
        with AtomStore(Path(tmp) / "many") as many, \
                AtomStore(Path(tmp) / "one") as one:
            _assert_atoms_equal(expected, many.atoms("snap:base"))
            _assert_atoms_equal(expected, one.atoms("snap:base"))


@given(snapshots())
@settings(max_examples=20, deadline=None)
def test_query_agrees_with_by_prefix(records):
    snapshot = RIBSnapshot.from_records(records)
    expected = compute_atoms(snapshot)
    with tempfile.TemporaryDirectory() as tmp:
        _write_store(tmp, expected, shard_rows=3)
        with AtomStore(tmp) as store:
            for prefix, atom in expected.by_prefix.items():
                found = store.query(prefix)
                assert found is not None
                assert found.atom_id == atom.atom_id
                assert found.paths == atom.paths


@given(snapshots())
@settings(max_examples=15, deadline=None)
def test_intern_pool_reload_preserves_ids(records):
    """A pool rebuilt from the persisted table assigns the same ids."""
    snapshot = RIBSnapshot.from_records(records)
    expected = compute_atoms(snapshot)
    with tempfile.TemporaryDirectory() as tmp:
        writer = StoreWriter(tmp)
        writer.add_snapshot("s:base", expected)
        original = writer.pool
        writer.close()
        with AtomStore(tmp) as store:
            reloaded = store.intern_pool()
        assert reloaded.id_count == original.id_count
        for pid in range(original.id_count):
            assert reloaded.path_for_id(pid) == original.path_for_id(pid)
            if pid:
                assert reloaded.id_for_path(original.path_for_id(pid)) == pid


# ----------------------------------------------------------------------
# Corruption: every failure mode is a clear StoreError, never garbage
# ----------------------------------------------------------------------


@pytest.fixture()
def built_store(tmp_path, records_2004):
    """A sharded store built from the session world's 2004 snapshot."""
    snapshot = RIBSnapshot.from_records(records_2004)
    atoms = compute_atoms(snapshot)
    root = tmp_path / "store"
    writer = StoreWriter(root, shard_rows=64)
    writer.add_snapshot("2004-01:base", atoms, label="2004-01", role="base")
    writer.close()
    return root, atoms


class TestCorruption:
    def _shard(self, root):
        return next((root / "snapshots").rglob("shard-*.seg"))

    def test_truncated_shard(self, built_store):
        root, _ = built_store
        shard = self._shard(root)
        shard.write_bytes(shard.read_bytes()[:-7])
        with AtomStore(root) as store, pytest.raises(StoreError):
            store.atoms("2004-01:base")

    def test_flipped_byte_fails_digest(self, built_store):
        root, _ = built_store
        shard = self._shard(root)
        blob = bytearray(shard.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        shard.write_bytes(bytes(blob))
        with AtomStore(root) as store, pytest.raises(StoreError, match="sha256"):
            store.atoms("2004-01:base")

    def test_version_mismatch(self, built_store):
        root, _ = built_store
        manifest = root / MANIFEST_NAME
        raw = json.loads(manifest.read_text())
        raw["version"] = 99
        manifest.write_text(json.dumps(raw))
        with pytest.raises(StoreError, match="version"):
            AtomStore(root)

    def test_foreign_manifest_rejected(self, built_store):
        root, _ = built_store
        (root / MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(StoreError, match="format"):
            AtomStore(root)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="missing"):
            AtomStore(tmp_path / "nowhere")

    def test_missing_segment_file(self, built_store):
        root, _ = built_store
        self._shard(root).unlink()
        with AtomStore(root) as store, pytest.raises(StoreError, match="open"):
            store.atoms("2004-01:base")

    def test_byte_order_mismatch(self, built_store):
        root, _ = built_store
        manifest = root / MANIFEST_NAME
        raw = json.loads(manifest.read_text())
        raw["byte_order"] = "little" if raw["byte_order"] == "big" else "big"
        manifest.write_text(json.dumps(raw))
        with pytest.raises(StoreError, match="endian"):
            AtomStore(root)

    def test_verify_false_skips_digest_but_verify_segments_catches(
        self, built_store
    ):
        root, _ = built_store
        shard = self._shard(root)
        blob = bytearray(shard.read_bytes())
        # Corrupt a byte the geometry checks cannot see (mid-column).
        blob[len(blob) - 3] ^= 0x01
        shard.write_bytes(bytes(blob))
        with AtomStore(root, verify=False) as store:
            with pytest.raises(StoreError, match="sha256"):
                store.verify_segments()

    def test_unknown_snapshot_key(self, built_store):
        root, _ = built_store
        with AtomStore(root) as store:
            with pytest.raises(StoreError, match="not in store"):
                store.atoms("2099-01:base")

    def test_interrupted_build_does_not_open(self, built_store, tmp_path):
        """Segments without a manifest — a killed build — never open."""
        root, _ = built_store
        partial = tmp_path / "partial"
        shutil.copytree(root, partial)
        (partial / MANIFEST_NAME).unlink()
        with pytest.raises(StoreError, match="missing"):
            AtomStore(partial)


class TestWriterGuards:
    def test_duplicate_key_rejected(self, built_store, tmp_path):
        _, atoms = built_store
        writer = StoreWriter(tmp_path / "w")
        writer.add_snapshot("k", atoms)
        with pytest.raises(StoreError, match="duplicate"):
            writer.add_snapshot("k", atoms)

    def test_path_separators_in_key_rejected(self, built_store, tmp_path):
        _, atoms = built_store
        writer = StoreWriter(tmp_path / "w")
        with pytest.raises(StoreError, match="invalid"):
            writer.add_snapshot("../escape", atoms)

    def test_closed_writer_rejects_use(self, built_store, tmp_path):
        _, atoms = built_store
        writer = StoreWriter(tmp_path / "w")
        writer.close()
        with pytest.raises(StoreError, match="closed"):
            writer.add_snapshot("k", atoms)
