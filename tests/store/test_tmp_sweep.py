"""Orphaned temp-file sweeping under the store's ``parts/`` tree.

A sweep worker killed mid-write leaves ``*.tmp<pid>`` litter next to
its part segments — harmless to correctness (renames are atomic, the
manifest lands last) but accumulating across re-runs.  The sweep must
remove exactly the dead writers' files: live pids and non-temp names
stay untouched.
"""

import os

from repro.store.writer import (
    PARTS_DIR,
    merge_parts,
    part_dir,
    sweep_stale_tmp,
    write_part,
)


def seed_part(root, job_key, computation):
    """Write one complete part for ``job_key``."""
    return write_part(
        root,
        job_key,
        [{"key": f"{job_key}:base", "atoms": computation.atoms,
          "label": job_key}],
    )


def test_dead_writer_litter_is_removed(tmp_path):
    target = tmp_path / "parts" / "job-a"
    target.mkdir(parents=True)
    # pid 2**22 - 1 is the ceiling of the default pid space — certainly
    # not a live writer of ours.
    dead = target / f"shard-0000.seg.tmp{2**22 - 1}"
    dead.write_bytes(b"partial")
    survivor = target / "shard-0000.seg"
    survivor.write_bytes(b"complete")
    assert sweep_stale_tmp(tmp_path / "parts") == 1
    assert not dead.exists()
    assert survivor.exists()


def test_live_writer_tmp_is_kept(tmp_path):
    target = tmp_path / "parts" / "job-b"
    target.mkdir(parents=True)
    live = target / f"manifest.json.tmp{os.getpid()}"
    live.write_bytes(b"in flight")
    assert sweep_stale_tmp(tmp_path / "parts") == 0
    assert live.exists()


def test_non_pid_suffixes_are_ignored(tmp_path):
    target = tmp_path / "parts"
    target.mkdir()
    odd = target / "notes.tmpl"  # matches *.tmp* but has no pid
    odd.write_bytes(b"keep me")
    named = target / "file.tmpabc"
    named.write_bytes(b"keep me too")
    assert sweep_stale_tmp(target) == 0
    assert odd.exists() and named.exists()


def test_cache_style_uuid_suffix_of_dead_pid_is_removed(tmp_path):
    # ResultCache/WorldCheckpoint temp names append "-<uuid>" after the
    # pid; the sweep parses only the leading digit run.
    target = tmp_path / "parts"
    target.mkdir()
    dead = target / f"entry.json.tmp{2**22 - 1}-deadbeef"
    dead.write_bytes(b"partial")
    assert sweep_stale_tmp(target) == 1
    assert not dead.exists()


def test_missing_directory_is_a_noop(tmp_path):
    assert sweep_stale_tmp(tmp_path / "nowhere") == 0


def test_merge_parts_sweeps_before_merging(tmp_path, atoms_2024):
    seed_part(tmp_path, "job-a", atoms_2024)
    litter = part_dir(tmp_path, "job-a") / f"x.seg.tmp{2**22 - 1}"
    litter.write_bytes(b"orphan")
    merge_parts(tmp_path, ["job-a"])
    assert not litter.exists()
    assert (tmp_path / "manifest.json").is_file()


def test_write_part_sweeps_its_own_directory(tmp_path, atoms_2024):
    target = part_dir(tmp_path, "job-c")
    target.mkdir(parents=True)
    litter = target / f"manifest.json.tmp{2**22 - 1}"
    litter.write_bytes(b"orphan")
    seed_part(tmp_path, "job-c", atoms_2024)
    assert not litter.exists()
    assert (target / "manifest.json").is_file()


def test_parts_dir_constant_matches_layout(tmp_path, atoms_2024):
    seed_part(tmp_path, "job-d", atoms_2024)
    assert (tmp_path / PARTS_DIR / "job-d").is_dir()
