"""End-to-end store pipeline tests: sweep → persist → reopen → parity.

The acceptance bar for the subsystem: a ``repro trend`` sweep with a
store sink persists a sharded store, and recomputing every atom and
stability series from the reopened store equals the in-memory
pipeline's results exactly.
"""

import dataclasses

import pytest

from repro.analysis.longitudinal import (
    LongitudinalStudy,
    trend_results_from_store,
)
from repro.cli import main
from repro.engine.cache import ResultCache, job_digest
from repro.engine.jobs import build_jobs
from repro.engine.scheduler import ExecutionEngine
from repro.obs import Tracer, use_tracer
from repro.simulation.scenario import SimulatedInternet
from repro.store import AtomStore, StoreError, merge_parts, part_complete
from repro.topology.evolution import WorldParams

WORLD = WorldParams(
    seed=5,
    as_scale=1 / 400.0,
    prefix_scale=1 / 400.0,
    peer_scale=0.03,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)

YEARS = [2006, 2007]

COMMON = ["--scale", "400", "--peer-scale", "0.03", "--seed", "5"]


def _sweep(store_dir=None, engine=None):
    engine = engine or ExecutionEngine()
    study = LongitudinalStudy(
        SimulatedInternet(WORLD, start=f"{YEARS[0]}-01-01"),
        engine=engine,
        store_dir=None if store_dir is None else str(store_dir),
    )
    return study.run_years(YEARS)


def _assert_rows_equal(expected, actual):
    assert len(expected) == len(actual)
    for left, right in zip(expected, actual):
        assert left.year == right.year
        assert left.stats == right.stats
        assert left.formation_shares == right.formation_shares
        assert left.formation_shares_no_single == right.formation_shares_no_single
        assert left.stability == right.stability
        assert left.feed == right.feed


class TestStoreParity:
    def test_store_results_equal_in_memory_results(self, tmp_path):
        in_memory = _sweep()
        persisted = _sweep(store_dir=tmp_path / "store")
        _assert_rows_equal(in_memory, persisted)
        with AtomStore(tmp_path / "store") as store:
            assert len(store.snapshots()) == len(YEARS) * 4
            _assert_rows_equal(in_memory, trend_results_from_store(store))

    def test_cached_rerun_still_completes_the_store(self, tmp_path):
        """Run 1 fills the cache without a store; run 2 adds the store.

        Every job is a cache hit in run 2, but a hit may not skip the
        part write — the scheduler must recompute jobs whose part is
        missing so the merge has all columns.
        """
        cache = ResultCache(tmp_path / "cache")
        first = _sweep(engine=ExecutionEngine(cache=cache))
        store_dir = tmp_path / "store"
        second = _sweep(
            store_dir=store_dir, engine=ExecutionEngine(cache=cache)
        )
        _assert_rows_equal(first, second)
        with AtomStore(store_dir) as store:
            _assert_rows_equal(first, trend_results_from_store(store))

    def test_rerun_with_complete_parts_reuses_cache(self, tmp_path):
        """Once parts exist, a cached rerun does zero recomputation."""
        cache = ResultCache(tmp_path / "cache")
        store_dir = tmp_path / "store"
        _sweep(store_dir=store_dir, engine=ExecutionEngine(cache=cache))
        engine = ExecutionEngine(cache=cache)
        again = _sweep(store_dir=store_dir, engine=engine)
        assert engine.metrics.cache_hits == len(YEARS)
        assert engine.metrics.count("computed") == 0
        with AtomStore(store_dir) as store:
            _assert_rows_equal(again, trend_results_from_store(store))

    def test_parallel_sweep_builds_identical_store(self, tmp_path):
        serial = _sweep(store_dir=tmp_path / "serial")
        parallel = _sweep(
            store_dir=tmp_path / "parallel", engine=ExecutionEngine(jobs=2)
        )
        _assert_rows_equal(serial, parallel)
        with AtomStore(tmp_path / "serial") as left, \
                AtomStore(tmp_path / "parallel") as right:
            assert [e.key for e in left.snapshots()] == [
                e.key for e in right.snapshots()
            ]
            for entry in left.snapshots():
                ours, theirs = left.atoms(entry.key), right.atoms(entry.key)
                assert len(ours) == len(theirs)
                for a, b in zip(ours, theirs):
                    assert a.atom_id == b.atom_id
                    assert a.prefixes == b.prefixes
                    assert a.paths == b.paths


class TestMergeGuards:
    def test_merge_refuses_missing_parts(self, tmp_path):
        jobs = build_jobs(WORLD, 0, [(2006, 1, 2006.0)],
                          store_dir=str(tmp_path))
        key = job_digest(jobs[0])
        assert not part_complete(tmp_path, key)
        with pytest.raises(StoreError, match="missing"):
            merge_parts(tmp_path, [key])

    def test_store_dir_not_in_cache_key(self):
        job = build_jobs(WORLD, 0, [(2006, 1, 2006.0)])[0]
        stored = dataclasses.replace(job, store_dir="/elsewhere")
        assert job_digest(job) == job_digest(stored)

    def test_store_dir_without_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            LongitudinalStudy(
                SimulatedInternet(WORLD, start="2006-01-01"),
                store_dir="/tmp/nowhere",
            )


class TestStoreCli:
    def test_trend_store_dir_then_info_trend_matches(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = ["trend", "--first-year", "2006", "--last-year", "2007",
                "--step", "1", "--store-dir", str(store)] + COMMON
        assert main(argv) == 0
        swept = capsys.readouterr().out
        table = swept.split("store:")[0].rstrip("\n")

        assert main(["store", "info", str(store), "--check", "--trend"]) == 0
        info = capsys.readouterr().out
        assert "segment(s) verified" in info
        # The trend table recomputed from the store is byte-identical.
        assert table in info

    def test_store_build_and_query(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = ["store", "build", str(store), "--first-year", "2006",
                "--last-year", "2006", "--no-stability"] + COMMON
        assert main(argv) == 0
        assert "built atom store" in capsys.readouterr().out

        with AtomStore(store) as opened:
            entry = opened.snapshots()[0]
            prefix = next(iter(opened.atoms(entry.key).by_prefix))
        assert main(["store", "query", str(store), str(prefix)]) == 0
        out = capsys.readouterr().out
        assert "atom id:" in out

        assert main(["store", "query", str(store), "203.0.113.0/24"]) == 1
        assert "not in snapshot universe" in capsys.readouterr().out

    def test_store_info_on_missing_store(self, tmp_path, capsys):
        assert main(["store", "info", str(tmp_path / "nope")]) == 2
        assert "store error" in capsys.readouterr().err


class TestStoreTracing:
    def test_counters_cover_build_and_open(self, tmp_path):
        tracer = Tracer()
        with use_tracer(tracer):
            _sweep(store_dir=tmp_path / "store")
            with AtomStore(tmp_path / "store") as store:
                for entry in store.snapshots():
                    store.atoms(entry.key)
                store.atoms(store.snapshots()[0].key)  # cache hit
        counters = tracer.counters
        assert counters["store.snapshots_written"] >= len(YEARS) * 8
        assert counters["store.segments_written"] > 0
        assert counters["store.bytes_written"] > 0
        assert counters["store.parts_merged"] == len(YEARS)
        assert counters["store.segments_opened"] > 0
        assert counters["store.bytes_mapped"] > 0
        # 4 per quarter loaded from parts during the merge, 4 more on
        # our reopen of the final store
        assert counters["store.snapshots_loaded"] == len(YEARS) * 8
        assert counters["store.query_cache_hits"] == 1
