"""Unit tests for the store's binary primitives."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.aspath import ASPath, PathSegment, SegmentType
from repro.net.prefix import Prefix
from repro.store.format import (
    FORMAT_VERSION,
    HEADER,
    KIND_COLUMNS,
    KIND_PATHS,
    MAGIC,
    PREFIX_RECORD,
    StoreError,
    check_segment,
    column_padding,
    decode_path,
    decode_path_table,
    decode_prefix,
    encode_path,
    encode_path_table,
    encode_prefix,
    frame_segment,
    read_uvarint,
    write_uvarint,
)


class TestUvarint:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, offset = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    def test_small_values_are_one_byte(self):
        out = bytearray()
        write_uvarint(out, 127)
        assert len(out) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)

    def test_truncated_raises(self):
        with pytest.raises(StoreError):
            read_uvarint(b"\x80", 0)

    def test_overlong_raises(self):
        with pytest.raises(StoreError):
            read_uvarint(b"\x80" * 12, 0)


def _sample_paths():
    return [
        ASPath.from_asns([1, 2, 3]),
        ASPath([
            PathSegment(SegmentType.AS_SEQUENCE, [7, 7, 9]),
            PathSegment(SegmentType.AS_SET, [3, 5]),
        ]),
        ASPath.from_asns([4_200_000_001]),  # 32-bit ASN
    ]


class TestPathCodec:
    def test_roundtrip(self):
        for path in _sample_paths():
            out = bytearray()
            encode_path(out, path)
            decoded, offset = decode_path(bytes(out), 0)
            assert decoded == path
            assert offset == len(out)

    def test_table_roundtrip_preserves_order(self):
        paths = _sample_paths()
        payload = encode_path_table(paths)
        assert decode_path_table(payload) == paths

    def test_table_trailing_bytes_rejected(self):
        payload = encode_path_table(_sample_paths()) + b"\x00"
        with pytest.raises(StoreError):
            decode_path_table(payload)

    def test_empty_segment_rejected(self):
        out = bytearray()
        write_uvarint(out, 1)  # one segment
        write_uvarint(out, int(SegmentType.AS_SEQUENCE))
        write_uvarint(out, 0)  # zero ASNs: invalid
        with pytest.raises(StoreError):
            decode_path(bytes(out), 0)

    def test_bad_segment_kind_rejected(self):
        out = bytearray()
        write_uvarint(out, 1)
        write_uvarint(out, 9)  # not a SegmentType
        write_uvarint(out, 1)
        write_uvarint(out, 42)
        with pytest.raises(StoreError):
            decode_path(bytes(out), 0)


class TestPrefixRecord:
    def test_roundtrip_v4_and_v6(self):
        for text in ("0.0.0.0/0", "10.1.2.0/24", "255.255.255.255/32",
                     "2001:db8::/32", "::1/128"):
            prefix = Prefix.parse(text)
            record = encode_prefix(prefix)
            assert len(record) == PREFIX_RECORD.size == 18
            assert decode_prefix(record) == prefix

    def test_encoded_order_matches_key_order(self):
        prefixes = sorted(
            [Prefix.parse(t) for t in (
                "10.0.0.0/8", "10.0.0.0/9", "10.128.0.0/9", "9.9.9.0/24",
                "2001:db8::/32", "::/0", "192.0.2.0/24",
            )],
            key=Prefix.key,
        )
        encoded = [encode_prefix(p) for p in prefixes]
        assert encoded == sorted(encoded)

    def test_garbage_rejected(self):
        with pytest.raises(StoreError):
            decode_prefix(b"\x00" * 5)
        # family byte 9 is no address family
        with pytest.raises(StoreError):
            decode_prefix(struct.pack(">B16sB", 9, b"\x00" * 16, 0))


class TestSegmentFraming:
    def test_roundtrip(self):
        payload = b"hello columns"
        image = frame_segment(KIND_COLUMNS, payload)
        assert image.startswith(MAGIC)
        assert bytes(check_segment(image, KIND_COLUMNS, "t")) == payload

    def test_bad_magic(self):
        image = b"XXXX" + frame_segment(KIND_PATHS, b"x")[4:]
        with pytest.raises(StoreError, match="magic"):
            check_segment(image, KIND_PATHS, "t")

    def test_version_mismatch(self):
        image = bytearray(frame_segment(KIND_PATHS, b"x"))
        struct.pack_into(">H", image, 4, FORMAT_VERSION + 1)
        with pytest.raises(StoreError, match="version"):
            check_segment(bytes(image), KIND_PATHS, "t")

    def test_kind_mismatch(self):
        image = frame_segment(KIND_PATHS, b"x")
        with pytest.raises(StoreError, match="kind"):
            check_segment(image, KIND_COLUMNS, "t")

    def test_truncated_payload(self):
        image = frame_segment(KIND_PATHS, b"abcdef")[:-2]
        with pytest.raises(StoreError, match="length"):
            check_segment(image, KIND_PATHS, "t")

    def test_shorter_than_header(self):
        with pytest.raises(StoreError, match="header"):
            check_segment(b"RPST", KIND_PATHS, "t")


def test_column_padding_aligns_u32():
    for rows in range(0, 9):
        start = HEADER.size  # any base; alignment is payload-relative
        offset = 8 + rows * 18 + column_padding(rows)
        assert offset % 4 == 0, (rows, start)
