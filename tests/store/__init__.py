"""Tests for the on-disk columnar atom store (:mod:`repro.store`)."""
