"""Unit tests for the repro.obs tracing core."""

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    load_trace,
    set_tracer,
    stage_rollups,
    traced_records,
    use_tracer,
    validate_spans,
)


class TestSpans:
    def test_nested_spans_record_parentage(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_span_intervals_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {span.name: span for span in tracer.spans}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert inner.seconds >= 0

    def test_span_attrs_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("stage", source="x") as span:
            span.set(records=7)
        (span,) = tracer.spans
        assert span.attrs == {"source": "x", "records": 7}

    def test_record_span_parents_to_open_span(self):
        tracer = Tracer()
        with tracer.span("sweep"):
            tracer.record_span("job", 1.5, label="a")
        job = next(s for s in tracer.spans if s.name == "job")
        sweep = next(s for s in tracer.spans if s.name == "sweep")
        assert job.parent_id == sweep.span_id
        assert job.seconds == pytest.approx(1.5)

    def test_abandoned_generator_span_tolerated(self):
        tracer = Tracer()

        def stage():
            with tracer.span("gen"):
                yield 1
                yield 2

        iterator = stage()
        next(iterator)
        with tracer.span("other"):
            iterator.close()  # closes "gen" while "other" is innermost
        names = [span.name for span in tracer.spans]
        assert set(names) == {"gen", "other"}
        assert all(span.end is not None for span in tracer.spans)


class TestCounters:
    def test_counts_aggregate_globally_and_per_span(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.count("records", 3)
        with tracer.span("b"):
            tracer.count("records", 2)
        tracer.count("records")  # outside any span
        assert tracer.counters == {"records": 6}
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["a"].counters == {"records": 3}
        assert by_name["b"].counters == {"records": 2}

    def test_counter_attributed_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.count("hits")
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["inner"].counters == {"hits": 1}
        assert by_name["outer"].counters == {}


class TestExport:
    def test_export_round_trips_through_load_trace(self):
        tracer = Tracer()
        with tracer.span("stage", source="test"):
            tracer.count("records", 5)
        buffer = io.StringIO()
        tracer.export(buffer)
        buffer.seek(0)
        trace = load_trace(buffer)
        assert trace.meta["version"] == 1
        assert trace.counters == {"records": 5}
        (span,) = trace.spans
        assert span["name"] == "stage"
        assert span["attrs"] == {"source": "test"}
        assert validate_spans(trace.spans) == []

    def test_export_is_valid_jsonl_on_disk(self, tmp_path):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.export(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # meta + one span
        for line in lines:
            json.loads(line)

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_validate_flags_unclosed_and_escaping_spans(self):
        spans = [
            {"id": 1, "parent": None, "name": "open", "start": 0.0,
             "end": None, "seconds": 0.0},
            {"id": 2, "parent": None, "name": "parent", "start": 1.0,
             "end": 2.0, "seconds": 1.0},
            {"id": 3, "parent": 2, "name": "escapee", "start": 1.5,
             "end": 2.5, "seconds": 1.0},
        ]
        problems = validate_spans(spans)
        assert any("never closed" in p for p in problems)
        assert any("escapes parent" in p for p in problems)


class TestRollups:
    def test_self_time_excludes_children(self):
        spans = [
            {"id": 1, "parent": None, "name": "outer", "start": 0.0,
             "end": 10.0, "seconds": 10.0, "counters": {}},
            {"id": 2, "parent": 1, "name": "inner", "start": 2.0,
             "end": 6.0, "seconds": 4.0, "counters": {"n": 3}},
        ]
        rollups = {r.name: r for r in stage_rollups(spans)}
        assert rollups["outer"].self_seconds == pytest.approx(6.0)
        assert rollups["outer"].total_seconds == pytest.approx(10.0)
        assert rollups["inner"].counters == {"n": 3}

    def test_rollup_sorted_by_total_descending(self):
        spans = [
            {"id": 1, "parent": None, "name": "small", "start": 0.0,
             "end": 1.0, "seconds": 1.0, "counters": {}},
            {"id": 2, "parent": None, "name": "big", "start": 0.0,
             "end": 5.0, "seconds": 5.0, "counters": {}},
        ]
        assert [r.name for r in stage_rollups(spans)] == ["big", "small"]


class TestCurrentTracer:
    def test_default_is_null_tracer(self):
        assert isinstance(get_tracer(), NullTracer)

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        before = get_tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)

    def test_null_tracer_operations_are_noops(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set(more=2)
        NULL_TRACER.count("whatever", 3)
        NULL_TRACER.record_span("x", 1.0)
        assert NULL_TRACER.enabled is False


class TestTracedRecords:
    class _Record:
        def __init__(self, corrupt=False):
            self.is_corrupt = corrupt

    def test_counts_records_and_corruption(self):
        tracer = Tracer()
        records = [self._Record(), self._Record(True), self._Record()]
        produced = list(traced_records(iter(records), "test", tracer=tracer))
        assert produced == records
        assert tracer.counters["decode.records"] == 3
        assert tracer.counters["decode.corrupt_records"] == 1
        (span,) = tracer.spans
        assert span.name == "mrt-decode"
        assert span.attrs["source"] == "test"

    def test_null_tracer_passthrough(self):
        records = [self._Record()]
        assert list(traced_records(iter(records), "test")) == records
