"""Pipeline-level tracing properties.

Two guarantees the observability layer makes:

* tracing is *passive* — a run under a recording :class:`Tracer`
  produces output identical (byte-identical on the CLI) to the same
  run under the default :class:`NullTracer`;
* a traced run's spans form a well-nested tree covering every pipeline
  stage (``mrt-decode``, ``sanitize``, ``atoms``, ``engine-job``).
"""

import json

import pytest

from repro.cli import main
from repro.core.pipeline import compute_policy_atoms
from repro.obs import Tracer, load_trace, use_tracer, validate_spans
from repro.simulation.scenario import SimulatedInternet
from repro.util.dates import parse_utc

from tests.engine.conftest import ENGINE_WORLD

STAMP = parse_utc("2006-04-01 00:00")

TREND_ARGS = [
    "trend",
    "--scale", "400",
    "--peer-scale", "0.03",
    "--first-year", "2004",
    "--last-year", "2005",
    "--step", "1",
    "--no-stability",
]


def atoms_fingerprint():
    """One full pipeline pass reduced to comparable plain data."""
    from repro.stream.bgpstream import BGPStream

    internet = SimulatedInternet(ENGINE_WORLD, start=STAMP)
    stream = BGPStream(internet, record_type="rib", from_time=STAMP)
    result = compute_policy_atoms(stream.records())
    atom_sets = sorted(
        tuple(sorted(str(p) for p in atom.prefixes)) for atom in result.atoms
    )
    report = result.report
    return (
        atom_sets,
        report.fullfeed_peers,
        report.partial_peers,
        report.prefixes_kept,
        report.prefixes_total,
        dict(report.removed_peers),
    )


class TestTracingIsPassive:
    def test_traced_pipeline_output_identical(self):
        """Property: NullTracer and recording Tracer agree exactly."""
        untraced = atoms_fingerprint()
        tracer = Tracer()
        with use_tracer(tracer):
            traced = atoms_fingerprint()
        assert traced == untraced
        # ... and the tracer actually observed the run.
        assert {s.name for s in tracer.spans} >= {
            "mrt-decode", "sanitize", "atoms"
        }

    def test_cli_stdout_byte_identical_with_trace(self, tmp_path, capsys):
        assert main(TREND_ARGS) == 0
        plain = capsys.readouterr().out
        trace_path = tmp_path / "trend.jsonl"
        assert main(TREND_ARGS + ["--trace", str(trace_path)]) == 0
        traced = capsys.readouterr().out
        assert traced == plain
        assert trace_path.exists()


class TestTracedTrendRun:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "trend.jsonl"
        assert main(TREND_ARGS + ["--trace", str(path)]) == 0
        return load_trace(path)

    def test_trace_is_valid_jsonl_with_meta(self, trace):
        assert trace.meta["version"] == 1
        assert trace.meta["spans"] == len(trace.spans)

    def test_all_pipeline_stages_present(self, trace):
        names = {span["name"] for span in trace.spans}
        assert {"mrt-decode", "sanitize", "atoms",
                "engine-sweep", "engine-job"} <= names

    def test_spans_nest_correctly(self, trace):
        """Every span closed, end >= start, children inside parents."""
        assert validate_spans(trace.spans) == []

    def test_parents_close_after_children(self, trace):
        by_id = {span["id"]: span for span in trace.spans}
        for span in trace.spans:
            parent = by_id.get(span["parent"])
            if parent is None:
                continue
            assert parent["end"] >= span["end"]
            assert parent["start"] <= span["start"]

    def test_stage_counters_recorded(self, trace):
        for counter in (
            "decode.records",
            "sanitize.records",
            "sanitize.prefixes_kept",
            "atoms.prefixes",
            "atoms.atoms",
            "engine.jobs.computed",
            "engine.records",
        ):
            assert trace.counters.get(counter, 0) > 0, counter

    def test_decode_span_nests_inside_sanitize(self, trace):
        """The lazily-consumed record stream belongs to its consumer."""
        by_id = {span["id"]: span for span in trace.spans}
        decodes = [s for s in trace.spans if s["name"] == "mrt-decode"]
        assert decodes
        for span in decodes:
            assert span["attrs"]["source"] == "simulated"
            parent = by_id.get(span["parent"])
            assert parent is not None and parent["name"] == "sanitize"


class TestProfileCommand:
    def test_profile_renders_rollup(self, tmp_path, capsys):
        trace_path = tmp_path / "trend.jsonl"
        main(TREND_ARGS + ["--trace", str(trace_path)])
        capsys.readouterr()
        assert main(["profile", str(trace_path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "Per-stage wall time" in out
        assert "sanitize" in out
        assert "decode.records" in out

    def test_profile_rejects_unreadable_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["profile", str(missing)]) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestIngestTracing:
    def test_archive_read_traced_as_archive_source(self, tmp_path):
        from repro.stream.archive import RecordArchive
        from repro.stream.bgpstream import BGPStream

        internet = SimulatedInternet(ENGINE_WORLD, start=STAMP)
        archive = RecordArchive(tmp_path / "archive")
        archive.write_dump(internet.rib_records(STAMP), dump_timestamp=STAMP)

        stream = BGPStream(RecordArchive(tmp_path / "archive"),
                           record_type="rib")
        tracer = Tracer()
        with use_tracer(tracer):
            records = list(stream.records())
        assert records
        assert tracer.counters["decode.records"] == len(records)
        (span,) = [s for s in tracer.spans if s.name == "mrt-decode"]
        assert span.attrs["source"] == "archive"
        assert span.attrs["records"] == len(records)

    def test_mrt_binary_read_traces_records_and_bytes(self):
        """The real MRT decoder counts records, corruption and bytes."""
        import io

        from repro.bgp.attributes import PathAttributes
        from repro.net.aspath import ASPath
        from repro.net.prefix import Prefix
        from repro.stream.mrt import MRTWriter, read_mrt

        buffer = io.BytesIO()
        writer = MRTWriter(buffer)
        writer.write_peer_index([(65001, "10.0.0.1")], timestamp=100)
        attributes = PathAttributes(ASPath.from_asns([65001, 3257, 65010]))
        writer.write_rib_entry(
            Prefix.parse("192.0.2.0/24"),
            [(65001, "10.0.0.1", attributes)],
            timestamp=100,
        )
        payload = buffer.getvalue()

        tracer = Tracer()
        with use_tracer(tracer):
            records = list(read_mrt(io.BytesIO(payload)))
        assert records
        assert tracer.counters["decode.records"] == len(records)
        assert tracer.counters["decode.bytes"] == len(payload)
        (span,) = [s for s in tracer.spans if s.name == "mrt-decode"]
        assert span.attrs["source"] == "mrt"
        assert span.attrs["records"] == len(records)


def test_trace_file_lines_all_parse(tmp_path):
    path = tmp_path / "trend.jsonl"
    main(TREND_ARGS + ["--trace", str(path)])
    types = set()
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            types.add(json.loads(line)["type"])
    assert types == {"meta", "span", "counter"}
