"""Integration: simulate -> archive -> BGPStream -> atoms.

The port-to-real-data story depends on the archive path producing the
exact same analysis results as the in-memory path.
"""

import pytest

from repro.core.pipeline import compute_policy_atoms
from repro.core.update_correlation import update_correlation
from repro.stream.archive import RecordArchive
from repro.stream.bgpstream import BGPStream
from repro.stream.filters import apply, by_type, healthy
from repro.util.dates import parse_utc


@pytest.fixture(scope="module")
def populated_archive(tmp_path_factory, internet_2004, records_2004):
    root = tmp_path_factory.mktemp("archive")
    archive = RecordArchive(root)
    stamp = parse_utc("2004-01-15 08:00")
    archive.write_dump(records_2004, dump_timestamp=stamp)
    updates = internet_2004.update_records(stamp, hours=2.0)
    archive.write_dump(updates, dump_timestamp=stamp)
    return archive, stamp, len(updates)


class TestArchivePath:
    def test_atoms_identical_to_in_memory(self, populated_archive, records_2004):
        archive, stamp, _ = populated_archive
        direct = compute_policy_atoms(records_2004)
        via_archive = compute_policy_atoms(
            BGPStream(archive, record_type="rib").records()
        )
        assert direct.atoms.prefix_sets() == via_archive.atoms.prefix_sets()
        assert direct.report.removed_peers == via_archive.report.removed_peers

    def test_update_stream_preserved(self, populated_archive):
        archive, stamp, update_count = populated_archive
        restored = list(BGPStream(archive, record_type="update").records())
        assert len(restored) == update_count

    def test_correlation_through_archive(self, populated_archive):
        archive, _, _ = populated_archive
        atoms = compute_policy_atoms(
            BGPStream(archive, record_type="rib").records()
        ).atoms
        updates = BGPStream(archive, record_type="update").records()
        correlation = update_correlation(atoms, updates, max_size=7)
        assert correlation.records_seen > 0

    def test_filters_compose_with_archive(self, populated_archive):
        archive, _, _ = populated_archive
        stream = archive.records()
        rib_only = list(apply(stream, by_type("rib") & healthy()))
        assert rib_only
        assert all(r.record_type == "rib" and not r.is_corrupt for r in rib_only)


class TestQuarterlyCadence:
    def test_run_quarters(self):
        from repro.analysis.longitudinal import LongitudinalStudy
        from repro.simulation.scenario import SimulatedInternet
        from repro.topology.evolution import WorldParams

        params = WorldParams(
            seed=13, as_scale=1 / 400.0, prefix_scale=1 / 400.0,
            peer_scale=0.03, collector_scale=0.3, min_fullfeed_peers=6,
        )
        study = LongitudinalStudy(SimulatedInternet(params, start="2006-01-01"))
        results = study.run_quarters(2006, 2006, with_stability=False)
        assert [r.year for r in results] == [2006.0, 2006.25, 2006.5, 2006.75]
        for result in results:
            assert result.stats.n_atoms > 0
