"""End-to-end invariants: the paper's qualitative findings must emerge
from the full pipeline (simulate -> collect -> sanitize -> atoms ->
analyses), not be hard-coded anywhere.
"""

import pytest

from repro.core.formation import formation_distances
from repro.core.pipeline import compute_policy_atoms
from repro.core.stability import stability_pair
from repro.core.statistics import general_stats
from repro.core.update_correlation import (
    GROUP_AS,
    GROUP_AS_SINGLE_ATOMS,
    GROUP_ATOM,
    update_correlation,
)
from repro.net.prefix import AF_INET6
from repro.simulation.scenario import SimulatedInternet
from tests.conftest import TEST_WORLD


@pytest.fixture(scope="module")
def computed_2004(internet_2004, records_2004):
    return compute_policy_atoms(records_2004)


class TestAtomStructure:
    def test_atoms_between_ases_and_prefixes(self, computed_2004):
        stats = general_stats(computed_2004.atoms)
        assert stats.n_ases < stats.n_atoms < stats.n_prefixes

    def test_atoms_respect_origin_boundaries(self, computed_2004):
        # Prefixes in one atom share all paths, hence the origin —
        # the invariant behind keeping MOAS prefixes (§2.4.3).
        for atom in computed_2004.atoms:
            if len(atom.origins()) == 1:
                continue
            # MOAS atoms: every path still agrees per vantage point by
            # construction of the grouping key.
            assert atom.size >= 1

    def test_most_atoms_form_within_five_hops(self, computed_2004):
        result = formation_distances(computed_2004.atoms)
        shares = result.distance_shares(max_distance=5)
        assert sum(shares.values()) == pytest.approx(1.0, abs=0.01)
        assert shares[5] < 0.08  # paper: 99 % form within distance 5


class TestUpdateFinding:
    def test_internet_operates_at_atom_level(self, internet_2024, atoms_2024):
        """Figure 3's headline, end to end."""
        records = internet_2024.update_records(
            internet_2024.current_time, hours=4.0
        )
        correlation = update_correlation(atoms_2024.atoms, records, max_size=7)

        def mean_curve(kind):
            values = [v for _, v in correlation.curve(kind) if v is not None]
            return sum(values) / len(values) if values else None

        atom_mean = mean_curve(GROUP_ATOM)
        as_mean = mean_curve(GROUP_AS)
        single_mean = mean_curve(GROUP_AS_SINGLE_ATOMS)
        assert atom_mean is not None and as_mean is not None
        assert atom_mean > as_mean + 0.1
        if single_mean is not None:
            assert single_mean < atom_mean


class TestStabilityFinding:
    def test_short_term_beats_long_term(self):
        sim = SimulatedInternet(TEST_WORLD, start="2008-01-15 08:00")
        base = compute_policy_atoms(sim.rib_records("2008-01-15 08:00"))
        after_8h = compute_policy_atoms(sim.rib_records("2008-01-15 16:00"))
        after_week = compute_policy_atoms(sim.rib_records("2008-01-22 08:00"))
        cam_short, mpm_short = stability_pair(base.atoms, after_8h.atoms)
        cam_long, mpm_long = stability_pair(base.atoms, after_week.atoms)
        assert cam_short > 0.85
        assert cam_short >= cam_long
        assert mpm_short >= cam_short  # prefixes stay grouped more than atoms


class TestIPv6Finding:
    def test_v6_pipeline_runs(self, internet_2024):
        records = list(
            internet_2024.rib_records("2024-10-15 08:00", family=AF_INET6)
        )
        computed = compute_policy_atoms(records)
        stats = general_stats(computed.atoms)
        assert stats.n_atoms > 0
        assert stats.n_prefixes < 0.5 * 227363  # sanity: scaled world


class TestSanitizationEffect:
    def test_sanitization_deflates_atom_count(self):
        """A8.3.2: the AS65000 peer inflates atoms by ~30 %; removing it
        must bring the count down."""
        sim = SimulatedInternet(TEST_WORLD, start="2021-01-15 08:00")
        records = list(sim.rib_records("2021-01-15 08:00"))
        leakers = [
            p.asn for p in sim.world.layout.peers
            if p.artifact == "private_asn" and p.artifact_active(sim.current_time)
        ]
        if not leakers:
            pytest.skip("no private-asn artifact in this window")
        clean = compute_policy_atoms(records)
        assert leakers[0] in clean.report.removed_peers

        from repro.core.atoms import compute_atoms
        from repro.core.fullfeed import full_feed_peers
        from repro.bgp.rib import RIBSnapshot

        dirty_snapshot = RIBSnapshot.from_records(records)
        dirty_atoms = compute_atoms(
            dirty_snapshot,
            vantage_points=full_feed_peers(dirty_snapshot),
            prefixes=clean.dataset.prefixes,
        )
        assert len(dirty_atoms) > len(clean.atoms)
