"""Tests for UTC date helpers."""

import pytest

from repro.util.dates import (
    DAY,
    HOUR,
    WEEK,
    iter_quarters,
    parse_utc,
    quarter_start,
    quarterly_snapshot_times,
    utc_timestamp,
    year_fraction,
)


class TestTimestamps:
    def test_epoch(self):
        assert utc_timestamp(1970, 1, 1) == 0

    def test_known_instant(self):
        # 2004-01-15 08:00 UTC
        assert utc_timestamp(2004, 1, 15, 8) == 1074153600

    def test_parse_variants(self):
        assert parse_utc("2004-01-15") == utc_timestamp(2004, 1, 15)
        assert parse_utc("2004-01-15 08:00") == utc_timestamp(2004, 1, 15, 8)
        assert parse_utc("2004-01-15 08:00:30") == utc_timestamp(2004, 1, 15, 8, 0, 30)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_utc("yesterday")

    def test_constants(self):
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY


class TestYearFraction:
    def test_start_of_year(self):
        assert year_fraction(utc_timestamp(2010, 1, 1)) == pytest.approx(2010.0)

    def test_midyear(self):
        assert year_fraction(utc_timestamp(2010, 7, 2)) == pytest.approx(2010.5, abs=0.01)


class TestQuarters:
    def test_snapshot_cadence(self):
        quarters = quarterly_snapshot_times(2004)
        assert len(quarters) == 4
        january = quarters[0]
        assert january[0] == utc_timestamp(2004, 1, 15, 8)
        assert january[1] == utc_timestamp(2004, 1, 15, 16)
        assert january[2] == utc_timestamp(2004, 1, 16, 8)
        assert january[3] == utc_timestamp(2004, 1, 22, 8)

    def test_quarter_start(self):
        assert quarter_start(utc_timestamp(2010, 2, 20)) == utc_timestamp(2010, 1, 1)
        assert quarter_start(utc_timestamp(2010, 12, 31)) == utc_timestamp(2010, 10, 1)

    def test_iter_quarters(self):
        quarters = list(iter_quarters(2004, 2005))
        assert len(quarters) == 8
        assert quarters[0][:2] == (2004, 1)
        assert quarters[-1][:2] == (2005, 10)
