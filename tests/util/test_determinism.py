"""Tests for deterministic sub-seeding."""

from repro.util.determinism import derive_rng, derive_seed


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_path_not_concatenation(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_known_value_locked(self):
        # Guards against accidental algorithm changes that would silently
        # reshuffle every simulated world.
        assert derive_seed(0) == derive_seed(0)
        first = derive_seed(42, "world")
        assert isinstance(first, int) and 0 <= first < 2**64


class TestDeriveRng:
    def test_streams_reproducible(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
