"""Tests for address allocation."""

import random

import pytest

from repro.net.prefix import AF_INET, AF_INET6, Prefix
from repro.topology.addressing import (
    AddressAllocator,
    AddressSpaceExhausted,
    carve_prefixes,
)


class TestAllocator:
    def test_sequential_disjoint(self):
        allocator = AddressAllocator(AF_INET)
        blocks = [allocator.allocate_block(16) for _ in range(10)]
        for i, left in enumerate(blocks):
            for right in blocks[i + 1 :]:
                assert not left.overlaps(right)

    def test_alignment_after_mixed_sizes(self):
        allocator = AddressAllocator(AF_INET)
        small = allocator.allocate_block(24)
        big = allocator.allocate_block(8)
        assert big.network % (1 << 24) == 0
        assert not small.overlaps(big)

    def test_v6_space(self):
        allocator = AddressAllocator(AF_INET6)
        block = allocator.allocate_block(32)
        assert block.family == AF_INET6
        assert Prefix.parse("2000::/3").contains(block)

    def test_exhaustion(self):
        allocator = AddressAllocator(AF_INET)
        with pytest.raises(AddressSpaceExhausted):
            for _ in range(300):
                allocator.allocate_block(8)

    def test_remaining_blocks(self):
        allocator = AddressAllocator(AF_INET)
        before = allocator.remaining_blocks(8)
        allocator.allocate_block(8)
        assert allocator.remaining_blocks(8) == before - 1

    def test_unknown_family(self):
        with pytest.raises(Exception):
            AddressAllocator(9)


class TestCarve:
    def test_single(self):
        block = Prefix.parse("10.0.0.0/16")
        assert carve_prefixes(block, 1, random.Random(1)) == [block]

    def test_includes_aggregate_and_specifics(self):
        block = Prefix.parse("10.0.0.0/16")
        carved = carve_prefixes(block, 8, random.Random(1))
        assert carved[0] == block
        assert len(carved) == 8
        assert len(set(carved)) == 8
        for prefix in carved[1:]:
            assert block.contains(prefix)
            assert prefix.length <= 24

    def test_without_aggregate(self):
        block = Prefix.parse("10.0.0.0/16")
        carved = carve_prefixes(block, 4, random.Random(1), include_aggregate=False)
        assert block not in carved
        assert len(carved) == 4

    def test_respects_max_length(self):
        block = Prefix.parse("10.0.0.0/23")
        carved = carve_prefixes(block, 50, random.Random(1))
        assert all(prefix.length <= 24 for prefix in carved)
        # /23 can yield at most the aggregate plus two /24s.
        assert len(carved) <= 3

    def test_v6_max_length(self):
        block = Prefix.parse("2001:db8::/40")
        carved = carve_prefixes(block, 20, random.Random(1))
        assert all(prefix.length <= 48 for prefix in carved)

    def test_block_longer_than_announceable_rejected(self):
        with pytest.raises(ValueError):
            carve_prefixes(Prefix.parse("10.0.0.0/30"), 2, random.Random(1))

    def test_deterministic(self):
        block = Prefix.parse("10.0.0.0/16")
        assert carve_prefixes(block, 8, random.Random(7)) == carve_prefixes(
            block, 8, random.Random(7)
        )
