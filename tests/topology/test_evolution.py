"""Tests for year profiles and world scaling."""

import pytest

from repro.topology.evolution import (
    MEDIUM_WORLD,
    SMALL_WORLD,
    TINY_WORLD,
    WorldParams,
    profile_for,
)
from repro.util.dates import utc_timestamp


class TestProfiles:
    def test_anchor_2004_matches_paper(self):
        profile = profile_for(utc_timestamp(2004, 1, 15))
        assert profile.v4_ases == pytest.approx(16490, rel=0.01)
        assert profile.v4_prefixes == pytest.approx(131526, rel=0.01)

    def test_anchor_2024_matches_paper(self):
        profile = profile_for(utc_timestamp(2024, 10, 15))
        assert profile.v4_prefixes == pytest.approx(1028444, rel=0.01)
        assert profile.v6_prefixes == pytest.approx(227363, rel=0.02)
        assert profile.v6_ases == pytest.approx(34164, rel=0.02)

    def test_interpolation_monotone_population(self):
        previous = None
        for year in range(2004, 2025):
            profile = profile_for(utc_timestamp(year, 6, 1))
            if previous is not None:
                assert profile.v4_prefixes >= previous.v4_prefixes
                assert profile.v4_ases >= previous.v4_ases
            previous = profile

    def test_granularity_trend(self):
        early = profile_for(utc_timestamp(2004, 1, 1))
        late = profile_for(utc_timestamp(2024, 1, 1))
        assert late.mean_unit_size_v4 < early.mean_unit_size_v4
        assert late.single_unit_share_v4 < early.single_unit_share_v4
        assert late.mix_tag_shallow > early.mix_tag_shallow
        assert late.mix_selective < early.mix_selective

    def test_clamped_outside_range(self):
        before = profile_for(utc_timestamp(1999, 1, 1))
        assert before.v4_ases == profile_for(utc_timestamp(2002, 1, 1)).v4_ases
        after = profile_for(utc_timestamp(2030, 1, 1))
        assert after.v4_prefixes == pytest.approx(1028444, rel=0.01)

    def test_mix_sums_to_one_ish(self):
        for year in (2004, 2014, 2024):
            profile = profile_for(utc_timestamp(year, 1, 1))
            total = (
                profile.mix_prepend
                + profile.mix_selective
                + profile.mix_tag_shallow
                + profile.mix_tag_deep
            )
            assert total == pytest.approx(1.0, abs=0.25)


class TestScaling:
    def test_scaled_counts(self):
        params = WorldParams(as_scale=0.01, prefix_scale=0.01, peer_scale=0.1)
        profile = profile_for(utc_timestamp(2024, 10, 15))
        counts = params.scaled_counts(profile)
        assert counts.v4_ases == pytest.approx(767, abs=2)
        assert counts.v4_prefixes == pytest.approx(10284, abs=10)
        assert counts.fullfeed_peers == pytest.approx(60, abs=1)

    def test_minimums_apply(self):
        params = WorldParams(
            as_scale=0.0001, prefix_scale=0.0001, peer_scale=0.0,
            collector_scale=0.0, min_fullfeed_peers=9, min_collectors=3,
        )
        counts = params.scaled_counts(profile_for(utc_timestamp(2004, 1, 1)))
        assert counts.fullfeed_peers == 9
        assert counts.collectors == 3
        assert counts.v4_ases >= 40

    def test_presets_ordering(self):
        profile = profile_for(utc_timestamp(2024, 1, 1))
        tiny = TINY_WORLD.scaled_counts(profile)
        small = SMALL_WORLD.scaled_counts(profile)
        medium = MEDIUM_WORLD.scaled_counts(profile)
        assert tiny.v4_prefixes < small.v4_prefixes < medium.v4_prefixes
