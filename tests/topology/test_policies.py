"""Tests for policy units and transit policies."""

import pytest

from repro.bgp.attributes import Community
from repro.net.prefix import Prefix
from repro.topology.policies import OriginPolicy, PolicyUnit, TransitPolicy


def prefixes(*texts):
    return [Prefix.parse(t) for t in texts]


class TestPolicyUnit:
    def test_requires_prefixes(self):
        with pytest.raises(ValueError):
            PolicyUnit(0, [])

    def test_rejects_mixed_families(self):
        with pytest.raises(ValueError):
            PolicyUnit(0, prefixes("10.0.0.0/24", "2001:db8::/32"))

    def test_announces_to_default_all(self):
        unit = PolicyUnit(0, prefixes("10.0.0.0/24"))
        assert unit.announces_to(42)

    def test_announces_to_subset(self):
        unit = PolicyUnit(0, prefixes("10.0.0.0/24"), announce_to=frozenset([1]))
        assert unit.announces_to(1)
        assert not unit.announces_to(2)

    def test_prepend_for(self):
        unit = PolicyUnit(0, prefixes("10.0.0.0/24"), prepend={5: 2})
        assert unit.prepend_for(5) == 2
        assert unit.prepend_for(6) == 0

    def test_config_key_ignores_prefixes(self):
        a = PolicyUnit(0, prefixes("10.0.0.0/24"), tag=Community(1, 2))
        b = PolicyUnit(1, prefixes("10.0.1.0/24"), tag=Community(1, 2))
        assert a.config_key() == b.config_key()

    def test_config_key_differs_on_tag(self):
        a = PolicyUnit(0, prefixes("10.0.0.0/24"), tag=Community(1, 2))
        b = PolicyUnit(1, prefixes("10.0.0.0/24"), tag=Community(1, 3))
        assert a.config_key() != b.config_key()


class TestOriginPolicy:
    def test_new_unit_assigns_ids(self):
        policy = OriginPolicy(100, 4)
        first = policy.new_unit(prefixes("10.0.0.0/24"))
        second = policy.new_unit(prefixes("10.0.1.0/24"))
        assert first.unit_id != second.unit_id
        assert len(policy) == 2

    def test_version_tracks_changes(self):
        policy = OriginPolicy(100, 4)
        v0 = policy.version
        unit = policy.new_unit(prefixes("10.0.0.0/24"))
        assert policy.version > v0
        v1 = policy.version
        policy.touch()
        assert policy.version > v1
        policy.remove_unit(unit)
        assert policy.version > v1 + 1

    def test_family_mismatch_rejected(self):
        policy = OriginPolicy(100, 4)
        with pytest.raises(ValueError):
            policy.new_unit(prefixes("2001:db8::/32"))

    def test_prefix_accounting(self):
        policy = OriginPolicy(100, 4)
        policy.new_unit(prefixes("10.0.0.0/24", "10.0.1.0/24"))
        policy.new_unit(prefixes("10.0.2.0/24"))
        assert policy.prefix_count() == 3
        assert len(policy.all_prefixes()) == 3

    def test_find_unit_of(self):
        policy = OriginPolicy(100, 4)
        unit = policy.new_unit(prefixes("10.0.0.0/24"))
        assert policy.find_unit_of(Prefix.parse("10.0.0.0/24")) is unit
        assert policy.find_unit_of(Prefix.parse("10.9.0.0/24")) is None


class TestTransitPolicy:
    def test_blocks(self):
        policy = TransitPolicy(20)
        tag = Community(20, 1)
        policy.block(tag, frozenset([1, 2]))
        assert policy.blocks(tag, 1)
        assert not policy.blocks(tag, 3)
        assert not policy.blocks(Community(20, 2), 1)
        assert not policy.blocks(None, 1)

    def test_unblock(self):
        policy = TransitPolicy(20)
        tag = Community(20, 1)
        policy.block(tag, frozenset([1]))
        policy.unblock(tag)
        assert not policy.blocks(tag, 1)

    def test_version_tracks_rules(self):
        policy = TransitPolicy(20)
        v0 = policy.version
        policy.block(Community(20, 1), frozenset([1]))
        assert policy.version > v0

    def test_truthiness(self):
        policy = TransitPolicy(20)
        assert not policy
        policy.block(Community(20, 1), frozenset([1]))
        assert policy
