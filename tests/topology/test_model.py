"""Tests for the AS graph model."""

import pytest

from repro.topology.model import ASGraph, ASNode, Relationship, Tier


def simple_graph():
    graph = ASGraph()
    for asn, tier in ((1, Tier.TIER1), (10, Tier.TRANSIT), (100, Tier.STUB)):
        graph.add_as(ASNode(asn, tier))
    graph.add_provider_link(10, 1)
    graph.add_provider_link(100, 10)
    return graph


class TestConstruction:
    def test_duplicate_as_rejected(self):
        graph = ASGraph()
        graph.add_as(ASNode(1, Tier.TIER1))
        with pytest.raises(ValueError):
            graph.add_as(ASNode(1, Tier.STUB))

    def test_provider_link_directions(self):
        graph = simple_graph()
        assert graph.relationship(100, 10) == Relationship.PROVIDER
        assert graph.relationship(10, 100) == Relationship.CUSTOMER
        assert graph.providers(100) == [10]
        assert graph.customers(10) == [100]

    def test_peer_link_symmetry(self):
        graph = simple_graph()
        graph.add_as(ASNode(11, Tier.TRANSIT))
        graph.add_peer_link(10, 11)
        assert graph.relationship(10, 11) == Relationship.PEER
        assert graph.relationship(11, 10) == Relationship.PEER
        assert graph.peers(10) == [11]

    def test_self_links_rejected(self):
        graph = simple_graph()
        with pytest.raises(ValueError):
            graph.add_provider_link(10, 10)
        with pytest.raises(ValueError):
            graph.add_peer_link(10, 10)

    def test_conflicting_relationship_rejected(self):
        graph = simple_graph()
        with pytest.raises(ValueError):
            graph.add_peer_link(100, 10)

    def test_unknown_as_rejected(self):
        graph = simple_graph()
        with pytest.raises(KeyError):
            graph.add_provider_link(100, 999)

    def test_version_bumps_on_link_changes(self):
        graph = simple_graph()
        before = graph.version
        graph.add_as(ASNode(11, Tier.TRANSIT))
        graph.add_peer_link(10, 11)
        assert graph.version > before


class TestMutation:
    def test_remove_link(self):
        graph = simple_graph()
        graph.remove_link(100, 10)
        assert graph.relationship(100, 10) is None
        with pytest.raises(KeyError):
            graph.remove_link(100, 10)

    def test_replace_provider(self):
        graph = simple_graph()
        graph.add_as(ASNode(11, Tier.TRANSIT))
        graph.add_provider_link(11, 1)
        graph.replace_provider(100, 10, 11)
        assert graph.providers(100) == [11]


class TestQueries:
    def test_edges_report_each_link_once(self):
        graph = simple_graph()
        graph.add_as(ASNode(11, Tier.TRANSIT))
        graph.add_peer_link(10, 11)
        edges = list(graph.edges())
        assert len(edges) == graph.link_count() == 3

    def test_cycle_detection(self):
        graph = simple_graph()
        assert not graph.has_provider_cycle()
        graph.add_as(ASNode(11, Tier.TRANSIT))
        graph.add_provider_link(11, 10)
        graph.add_provider_link(1, 11)  # 1 -> 11 -> 10 -> 1
        assert graph.has_provider_cycle()

    def test_tier_listings(self):
        graph = simple_graph()
        assert graph.tier1() == [1]
        assert graph.stubs() == [100]

    def test_siblings(self):
        graph = ASGraph()
        graph.add_as(ASNode(100, Tier.STUB, org_id=7))
        graph.add_as(ASNode(101, Tier.STUB, org_id=7))
        graph.add_as(ASNode(102, Tier.STUB, org_id=8))
        assert graph.siblings_of(100) == {101}

    def test_degree(self):
        graph = simple_graph()
        assert graph.degree(10) == 2
        assert graph.degree(100) == 1
