"""Property-based invariants of generated worlds.

Random seeds and start years must always yield structurally sound
worlds: acyclic provider hierarchy, consistent policy units, transit
rules that reference real neighbors, and collector layouts that match
the configured artifacts.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net.prefix import AF_INET, AF_INET6
from repro.topology.evolution import WorldParams
from repro.topology.world import World
from repro.util.dates import utc_timestamp


def build_world(seed, year):
    params = WorldParams(
        seed=seed,
        as_scale=1 / 500.0,
        prefix_scale=1 / 500.0,
        peer_scale=0.03,
        collector_scale=0.25,
        min_fullfeed_peers=5,
        min_collectors=2,
    )
    return World(params, utc_timestamp(year, 1, 15, 8))


world_inputs = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2003, max_value=2024),
)


@given(world_inputs)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_world_structural_invariants(inputs):
    seed, year = inputs
    world = build_world(seed, year)

    # Provider hierarchy stays acyclic (propagation termination).
    assert not world.graph.has_provider_cycle()

    # Policies are internally consistent.
    for (family, asn), policy in world.origin_policies.items():
        assert policy.asn == asn and policy.family == family
        assert asn in world.graph
        seen = set()
        for unit in policy.units:
            assert unit.prefixes, "no empty units"
            for prefix in unit.prefixes:
                assert prefix.family == family
                assert prefix not in seen, "no duplicate prefix within origin"
                seen.add(prefix)

    # Transit rules are anchored at real ASes and block real ASes (links
    # may churn after rule creation, so blocked ASes need not remain
    # neighbors — stale entries are inert).
    for asn, transit in world.transit_policies.items():
        assert asn in world.graph
        for blocked in transit.rules.values():
            assert blocked
            assert all(target in world.graph for target in blocked)

    # Collector layout: distinct peer ASes, enough full feeders.
    peer_asns = [peer.asn for peer in world.layout.peers]
    assert len(peer_asns) == len(set(peer_asns))
    assert len(world.layout.fullfeed_peers()) >= 5


@given(world_inputs)
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_world_advance_preserves_invariants(inputs):
    seed, year = inputs
    world = build_world(seed, min(year, 2022))
    world.advance_to(world.current_time + 400 * 24 * 3600)  # ~13 months

    assert not world.graph.has_provider_cycle()
    for (family, asn), policy in world.origin_policies.items():
        for unit in policy.units:
            assert unit.prefixes
            assert all(prefix.family == family for prefix in unit.prefixes)
    # Population never shrinks.
    assert world.total_prefixes(AF_INET) > 0


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_same_seed_same_world(seed):
    first = build_world(seed, 2012)
    second = build_world(seed, 2012)
    assert sorted(first.graph.edges()) == sorted(second.graph.edges())
    assert first.total_units(AF_INET) == second.total_units(AF_INET)
    assert first.total_units(AF_INET6) == second.total_units(AF_INET6)
    assert [p.peer_id for p in first.layout.peers] == [
        p.peer_id for p in second.layout.peers
    ]
