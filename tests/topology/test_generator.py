"""Tests for the synthetic topology generator."""

from repro.topology.generator import GeneratorParams, generate_topology
from repro.topology.model import Relationship, Tier


def small_params(**overrides):
    base = dict(n_tier1=5, n_transit=20, n_stub=80, seed=99)
    base.update(overrides)
    return GeneratorParams(**base)


class TestStructure:
    def test_population_counts(self):
        graph = generate_topology(small_params())
        tiers = [node.tier for node in graph.nodes.values()]
        assert tiers.count(Tier.TIER1) == 5
        assert tiers.count(Tier.TRANSIT) == 20
        assert tiers.count(Tier.STUB) == 80

    def test_tier1_full_clique(self):
        graph = generate_topology(small_params())
        tier1 = graph.tier1()
        for left in tier1:
            for right in tier1:
                if left != right:
                    assert graph.relationship(left, right) == Relationship.PEER

    def test_tier1_transit_free(self):
        graph = generate_topology(small_params())
        for asn in graph.tier1():
            assert graph.providers(asn) == []

    def test_every_nontier1_has_a_provider(self):
        graph = generate_topology(small_params())
        for asn, node in graph.nodes.items():
            if node.tier != Tier.TIER1:
                assert graph.providers(asn), f"AS{asn} has no provider"

    def test_no_provider_cycles(self):
        graph = generate_topology(small_params())
        assert not graph.has_provider_cycle()

    def test_second_tier_exists(self):
        graph = generate_topology(small_params(second_tier_share=0.5))
        second_tier = [
            asn
            for asn, node in graph.nodes.items()
            if node.tier == Tier.TRANSIT
            and any(
                graph.nodes[p].tier == Tier.TRANSIT for p in graph.providers(asn)
            )
        ]
        assert second_tier, "expected some transits homed under transits"

    def test_no_second_tier_when_disabled(self):
        graph = generate_topology(small_params(second_tier_share=0.0))
        for asn, node in graph.nodes.items():
            if node.tier == Tier.TRANSIT:
                assert all(
                    graph.nodes[p].tier == Tier.TIER1 for p in graph.providers(asn)
                )


class TestKnobs:
    def test_determinism(self):
        first = generate_topology(small_params())
        second = generate_topology(small_params())
        assert sorted(first.edges()) == sorted(second.edges())
        assert first.asns() == second.asns()

    def test_seed_changes_topology(self):
        first = generate_topology(small_params())
        second = generate_topology(small_params(seed=100))
        assert sorted(first.edges()) != sorted(second.edges())

    def test_multihoming_mean_raises_provider_counts(self):
        low = generate_topology(small_params(multihoming_mean=1.0))
        high = generate_topology(small_params(multihoming_mean=2.5))

        def mean_providers(graph):
            stubs = graph.stubs()
            return sum(len(graph.providers(s)) for s in stubs) / len(stubs)

        assert mean_providers(high) > mean_providers(low)

    def test_sibling_organisations_chain(self):
        graph = generate_topology(
            small_params(sibling_org_fraction=0.5, sibling_org_size=3)
        )
        orgs = {}
        for asn, node in graph.nodes.items():
            if node.tier == Tier.STUB:
                orgs.setdefault(node.org_id, []).append(asn)
        chains = [members for members in orgs.values() if len(members) >= 3]
        assert chains, "expected sibling organisations"
        # Within a chain, later siblings buy transit from earlier ones.
        members = sorted(chains[0])
        assert any(
            graph.relationship(members[i + 1], members[i]) == Relationship.PROVIDER
            for i in range(len(members) - 1)
        )

    def test_ipv6_fraction(self):
        graph = generate_topology(small_params(ipv6_fraction=1.0))
        stubs = graph.stubs()
        assert all(graph.nodes[s].ipv6_capable for s in stubs)
