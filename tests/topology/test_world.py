"""Tests for the evolving world model."""

import pytest

from repro.net.prefix import AF_INET, AF_INET6
from repro.topology.evolution import WorldParams, profile_for
from repro.topology.world import World
from repro.util.dates import HOUR, WEEK, utc_timestamp

SMALL = WorldParams(
    seed=77,
    as_scale=1 / 400.0,
    prefix_scale=1 / 400.0,
    peer_scale=0.03,
    collector_scale=0.3,
    min_fullfeed_peers=6,
    min_collectors=2,
)


@pytest.fixture(scope="module")
def world_2010():
    return World(SMALL, utc_timestamp(2010, 1, 15, 8))


class TestConstruction:
    def test_population_near_targets(self, world_2010):
        counts = world_2010.counts
        ases, prefixes = world_2010._family_stats(AF_INET)
        assert abs(ases - counts.v4_ases) <= max(5, counts.v4_ases * 0.1)
        assert abs(prefixes - counts.v4_prefixes) <= max(10, counts.v4_prefixes * 0.1)

    def test_v6_population_when_profile_has_v6(self):
        world = World(SMALL, utc_timestamp(2012, 1, 15, 8))
        ases, prefixes = world._family_stats(AF_INET6)
        assert ases >= 1 and prefixes >= ases

    def test_peers_and_collectors(self, world_2010):
        layout = world_2010.layout
        assert len(layout.collectors) >= SMALL.min_collectors
        full = layout.fullfeed_peers()
        assert len(full) >= SMALL.min_fullfeed_peers
        # Peer ASes are distinct (one session per AS in this model).
        asns = [peer.asn for peer in layout.peers]
        assert len(asns) == len(set(asns))

    def test_units_partition_prefixes(self, world_2010):
        for policy in world_2010.origins(AF_INET).values():
            seen = set()
            for unit in policy.units:
                assert unit.prefixes, "no empty units"
                for prefix in unit.prefixes:
                    # MOAS prefixes may repeat across origins but not
                    # within one origin.
                    assert prefix not in seen
                    seen.add(prefix)

    def test_moas_share_below_five_percent(self, world_2010):
        total = world_2010.total_prefixes(AF_INET)
        assert 0 < len(world_2010.moas_prefixes) < 0.05 * total

    def test_determinism(self):
        first = World(SMALL, utc_timestamp(2010, 1, 15, 8))
        second = World(SMALL, utc_timestamp(2010, 1, 15, 8))
        assert sorted(first.graph.edges()) == sorted(second.graph.edges())
        assert first.total_units(AF_INET) == second.total_units(AF_INET)
        assert [p.peer_id for p in first.layout.peers] == [
            p.peer_id for p in second.layout.peers
        ]

    def test_artifact_peers_configured(self):
        world = World(SMALL, utc_timestamp(2021, 1, 15, 8))
        flagged = [p for p in world.layout.peers if p.artifact]
        assert flagged, "expected artifact peers in a post-2018 world"
        kinds = {p.artifact for p in flagged}
        assert "private_asn" in kinds or "addpath" in kinds

    def test_artifacts_can_be_disabled(self):
        params = WorldParams(**{**SMALL.__dict__, "inject_artifacts": False})
        world = World(params, utc_timestamp(2021, 1, 15, 8))
        assert not [p for p in world.layout.peers if p.artifact]


class TestAdvance:
    def test_time_only_moves_forward(self, world_2010):
        with pytest.raises(ValueError):
            world_2010.advance_to(world_2010.current_time - 1)

    def test_advance_applies_churn(self):
        world = World(SMALL, utc_timestamp(2010, 1, 15, 8))
        versions = {
            key: policy.version for key, policy in world.origin_policies.items()
        }
        world.advance_to(world.current_time + WEEK)
        changed = sum(
            1
            for key, policy in world.origin_policies.items()
            if versions.get(key) != policy.version
        )
        assert changed > 0

    def test_intra_quarter_advance_keeps_population(self):
        world = World(SMALL, utc_timestamp(2010, 1, 15, 8))
        before = world._family_stats(AF_INET)
        before_graph = world.graph.version
        world.advance_to(world.current_time + 8 * HOUR)
        assert world._family_stats(AF_INET)[0] == before[0]
        # Policy churn must not rewire the graph within a quarter
        # (except rare vantage-point provider changes).
        assert world.graph.version - before_graph <= 4

    def test_growth_across_years(self):
        world = World(SMALL, utc_timestamp(2010, 1, 15, 8))
        before_ases, before_prefixes = world._family_stats(AF_INET)
        world.advance_to(utc_timestamp(2014, 1, 15, 8))
        after_ases, after_prefixes = world._family_stats(AF_INET)
        assert after_ases > before_ases
        assert after_prefixes > before_prefixes

    def test_fiti_event(self):
        world = World(SMALL, utc_timestamp(2020, 10, 15, 8))
        v6_before = world._family_stats(AF_INET6)[0]
        world.advance_to(utc_timestamp(2021, 4, 15, 8))
        v6_after = world._family_stats(AF_INET6)[0]
        expected_burst = int(4096 * SMALL.as_scale)
        assert v6_after - v6_before >= expected_burst // 2
        assert world._fiti_done

    def test_churn_can_be_frozen(self):
        params = WorldParams(**{**SMALL.__dict__, "churn_multiplier": 0.0})
        world = World(params, utc_timestamp(2010, 1, 15, 8))
        versions = {
            key: policy.version for key, policy in world.origin_policies.items()
        }
        world.advance_to(world.current_time + WEEK)
        assert all(
            versions.get(key) == policy.version
            for key, policy in world.origin_policies.items()
        )


class TestMechanisms:
    def test_mechanism_mix_tracks_targets(self):
        world = World(SMALL, utc_timestamp(2020, 1, 15, 8))
        counts = world._mech_counts.get(AF_INET, {})
        total = sum(counts.values())
        assert total > 0
        targets = world._mechanism_targets()
        for mech in ("selective", "tag3"):
            share = counts.get(mech, 0) / total
            assert abs(share - targets[mech]) < 0.25

    def test_unit_size_cap_scales(self):
        import math

        world = World(SMALL, utc_timestamp(2010, 1, 15, 8))
        cap = world._unit_size_cap(AF_INET)
        profile = profile_for(world.current_time)
        floor = math.ceil(3 * profile.mean_unit_size_v4)
        assert cap == max(3, floor, round(profile.max_atom_v4 * SMALL.prefix_scale))
        for policy in world.origins(AF_INET).values():
            for unit in policy.units:
                assert len(unit) <= max(cap, 3) * 4  # merge-free bound, lax
