"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


COMMON = ["--scale", "400", "--peer-scale", "0.03", "--seed", "5"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_requires_archive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])

    def test_family_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["atoms", "--family", "5"])


class TestCommands:
    def test_atoms_from_simulation(self, capsys):
        code = main(["atoms", "--start", "2010-01-15 08:00"] + COMMON)
        out = capsys.readouterr().out
        assert code == 0
        assert "Policy atom statistics" in out
        assert "Number of atoms" in out

    def test_atoms_with_formation(self, capsys):
        code = main(
            ["atoms", "--start", "2010-01-15 08:00", "--formation"] + COMMON
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Formation distance" in out

    def test_simulate_then_atoms_roundtrip(self, tmp_path, capsys):
        archive = tmp_path / "arch"
        code = main(
            ["simulate", "--start", "2010-01-15 08:00", "--archive", str(archive),
             "--update-hours", "1"] + COMMON
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RIB dump files" in out and "update dump files" in out

        code = main(["atoms", "--archive", str(archive)] + COMMON)
        out = capsys.readouterr().out
        assert code == 0
        assert str(archive) in out

    def test_trend(self, capsys):
        code = main(
            ["trend", "--first-year", "2006", "--last-year", "2008",
             "--step", "2", "--no-stability"] + COMMON
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Longitudinal atom trend" in out
        assert "2006" in out and "2008" in out

    def test_v6_atoms(self, capsys):
        code = main(
            ["atoms", "--start", "2020-01-15 08:00", "--family", "6"] + COMMON
        )
        assert code == 0
        assert "Policy atom statistics" in capsys.readouterr().out
