"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


COMMON = ["--scale", "400", "--peer-scale", "0.03", "--seed", "5"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_requires_archive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])

    def test_family_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["atoms", "--family", "5"])


class TestCommands:
    def test_atoms_from_simulation(self, capsys):
        code = main(["atoms", "--start", "2010-01-15 08:00"] + COMMON)
        out = capsys.readouterr().out
        assert code == 0
        assert "Policy atom statistics" in out
        assert "Number of atoms" in out

    def test_atoms_with_formation(self, capsys):
        code = main(
            ["atoms", "--start", "2010-01-15 08:00", "--formation"] + COMMON
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Formation distance" in out

    def test_simulate_then_atoms_roundtrip(self, tmp_path, capsys):
        archive = tmp_path / "arch"
        code = main(
            ["simulate", "--start", "2010-01-15 08:00", "--archive", str(archive),
             "--update-hours", "1"] + COMMON
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RIB dump files" in out and "update dump files" in out

        code = main(["atoms", "--archive", str(archive)] + COMMON)
        out = capsys.readouterr().out
        assert code == 0
        assert str(archive) in out

    def test_trend(self, capsys):
        code = main(
            ["trend", "--first-year", "2006", "--last-year", "2008",
             "--step", "2", "--no-stability"] + COMMON
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Longitudinal atom trend" in out
        assert "2006" in out and "2008" in out

    def test_v6_atoms(self, capsys):
        code = main(
            ["atoms", "--start", "2020-01-15 08:00", "--family", "6"] + COMMON
        )
        assert code == 0
        assert "Policy atom statistics" in capsys.readouterr().out


class TestEngineFlags:
    TREND = ["trend", "--first-year", "2006", "--last-year", "2007",
             "--step", "1", "--no-stability"] + COMMON

    def test_parser_accepts_engine_flags(self):
        args = build_parser().parse_args(
            self.TREND + ["--jobs", "4", "--progress", "--cache-dir", "/tmp/c",
                          "--checkpoint", "/tmp/ck.jsonl"]
        )
        assert args.jobs == 4 and args.progress
        assert str(args.cache_dir) == "/tmp/c"
        assert str(args.checkpoint) == "/tmp/ck.jsonl"

    def test_jobs_default_is_serial(self):
        args = build_parser().parse_args(self.TREND)
        assert args.jobs == 1 and not args.progress
        assert args.cache_dir is None and args.checkpoint is None

    def test_trend_parallel_matches_serial_output(self, capsys):
        assert main(self.TREND) == 0
        serial = capsys.readouterr().out
        assert main(self.TREND + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_trend_with_cache_and_progress(self, tmp_path, capsys):
        argv = self.TREND + ["--cache-dir", str(tmp_path), "--progress"]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "2 computed" in first.err and "0 cache hits" in first.err

        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out  # cached rerun prints the same table
        assert "2 cache hits" in second.err
        assert "100% reuse" in second.err

    def test_atoms_accepts_jobs_flag(self, capsys):
        code = main(
            ["atoms", "--start", "2010-01-15 08:00", "--jobs", "2"] + COMMON
        )
        assert code == 0
        assert "Policy atom statistics" in capsys.readouterr().out

    def test_trend_checkpoint_written(self, tmp_path, capsys):
        ck = tmp_path / "trend.jsonl"
        assert main(self.TREND + ["--checkpoint", str(ck)]) == 0
        capsys.readouterr()
        assert ck.exists()
        assert len(ck.read_text(encoding="utf-8").splitlines()) == 2


class TestStoreErrorExits:
    """Missing or corrupt stores exit 2 with one line — no traceback.

    ``repro store query`` and ``repro serve`` both open the store up
    front; every StoreError must surface as a single ``store error:``
    stderr line and exit code 2.
    """

    def _corrupt_store(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "manifest.json").write_text("{ not json", encoding="utf-8")
        return root

    def test_store_query_missing_store(self, tmp_path, capsys):
        code = main(
            ["store", "query", str(tmp_path / "nowhere"), "10.0.0.0/8"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("store error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_store_query_corrupt_store(self, tmp_path, capsys):
        code = main(
            ["store", "query", str(self._corrupt_store(tmp_path)),
             "10.0.0.0/8"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("store error:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_serve_missing_store(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "nowhere")])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("store error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_serve_corrupt_store(self, tmp_path, capsys):
        code = main(["serve", str(self._corrupt_store(tmp_path))])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("store error:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_store_info_missing_store(self, tmp_path, capsys):
        code = main(["store", "info", str(tmp_path / "nowhere")])
        assert code == 2
        assert capsys.readouterr().err.startswith("store error:")

    def test_serve_parser_accepts_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "/tmp/store", "--host", "0.0.0.0", "--port", "9000",
             "--cache-entries", "16", "--check"]
        )
        assert args.host == "0.0.0.0"
        assert args.port == 9000
        assert args.cache_entries == 16
        assert args.check is True


class TestConverge:
    """``repro converge`` runs the event engine end to end."""

    ARGS = ["converge", "--start", "2004-01-15"] + COMMON

    def test_parser_defaults(self):
        args = build_parser().parse_args(["converge"])
        assert args.scenario == "quiet"
        assert args.mrai == 30.0
        assert args.parity is True
        assert args.snapshot_at is None

    def test_no_parity_flag(self):
        args = build_parser().parse_args(["converge", "--no-parity"])
        assert args.parity is False

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["converge", "--scenario", "nope"])

    def test_quiet_scenario_reaches_parity(self, capsys):
        code = main(self.ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "quiescence parity ok" in out

    def test_flap_storm_with_snapshots(self, capsys):
        code = main(
            self.ARGS + ["--scenario", "flap-storm", "--snapshot-at", "120"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "flap-storm:" in out
        assert "snapshot at t+120s" in out
        assert "quiescence parity ok" in out

    def test_max_events_budget(self, capsys):
        code = main(
            self.ARGS + ["--scenario", "flap-storm", "--max-events", "3"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("converge error:")

    def test_archive_feeds_live(self, tmp_path, capsys):
        archive = tmp_path / "conv"
        code = main(
            self.ARGS
            + ["--scenario", "flap-storm", "--archive", str(archive)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "archived" in out and "update record(s)" in out

        code = main(
            ["live", "--archive", str(archive), "--window", "60",
             "--parity", "off"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Live window metrics" in out

    def test_trace_has_sim_counters(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        code = main(self.ARGS + ["--trace", str(trace)])
        capsys.readouterr()
        assert code == 0
        counters = {
            record["name"]: record["value"]
            for record in map(json.loads, trace.read_text().splitlines())
            if record.get("type") == "counter"
        }
        assert counters.get("sim.routers", 0) > 0
        assert counters.get("sim.events", 0) > 0
        assert counters.get("sim.messages", 0) > 0
