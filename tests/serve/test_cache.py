"""Tests for the serve response cache and its content-addressed keys."""

import threading

from repro.serve.cache import ResponseCache, response_key


class TestResponseKey:
    def test_deterministic(self):
        a = response_key("prefix", {"prefix": "10.0.0.0/8"}, "v1")
        b = response_key("prefix", {"prefix": "10.0.0.0/8"}, "v1")
        assert a == b

    def test_endpoint_distinguishes(self):
        params = {"x": 1}
        assert response_key("prefix", params, "v1") != response_key(
            "atom", params, "v1"
        )

    def test_params_distinguish(self):
        assert response_key("prefix", {"x": 1}, "v1") != response_key(
            "prefix", {"x": 2}, "v1"
        )

    def test_store_version_distinguishes(self):
        """A rebuilt store can never serve a stale cached response."""
        params = {"prefix": "10.0.0.0/8"}
        assert response_key("prefix", params, "v1") != response_key(
            "prefix", params, "v2"
        )

    def test_typed_params_distinguish(self):
        # The v3 canonical form keeps the engine-cache injectivity
        # guarantees at the serve layer too.
        assert response_key("atom", {1: "x"}, "v") != response_key(
            "atom", {"1": "x"}, "v"
        )


class TestResponseCache:
    def test_miss_then_hit(self):
        cache = ResponseCache(4)
        hit, value = cache.get("k")
        assert not hit and value is None
        cache.put("k", {"a": 1})
        hit, value = cache.get("k")
        assert hit and value == {"a": 1}

    def test_cached_none_is_a_hit(self):
        """A computed-to-None payload must not look like a miss."""
        cache = ResponseCache(4)
        cache.put("k", None)
        hit, value = cache.get("k")
        assert hit and value is None

    def test_lru_evicts_oldest(self):
        cache = ResponseCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") == (False, None)
        assert cache.get("b") == (True, 2)
        assert cache.get("c") == (True, 3)

    def test_get_refreshes_recency(self):
        cache = ResponseCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: "b" is now the eviction candidate
        cache.put("c", 3)
        assert cache.get("a") == (True, 1)
        assert cache.get("b") == (False, None)

    def test_put_refreshes_recency(self):
        cache = ResponseCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("a") == (True, 10)
        assert cache.get("b") == (False, None)

    def test_stats(self):
        cache = ResponseCache(2)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 2
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_clear(self):
        cache = ResponseCache(2)
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") == (False, None)
        assert cache.stats()["entries"] == 0

    def test_thread_safety_under_churn(self):
        cache = ResponseCache(8)
        barrier = threading.Barrier(4)
        errors = []

        def worker(offset):
            try:
                barrier.wait()
                for i in range(500):
                    key = f"k{(offset + i) % 16}"
                    cache.put(key, i)
                    hit, value = cache.get(key)
                    if hit:
                        assert isinstance(value, int)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cache.stats()["entries"] <= 8
